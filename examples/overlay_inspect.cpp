// Inspector: runs a small overlay and dumps (a) per-node link
// accounting and (b) Graphviz DOT files of the trust graph and the
// overlay snapshot (offline nodes dashed), for visual inspection:
//
//   ./overlay_inspect --nodes=60 --alpha=0.6 --dot-prefix=/tmp/ppo
//   dot -Tsvg /tmp/ppo_overlay.dot -o overlay.svg
#include <fstream>
#include <iostream>

#include "churn/churn_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "graph/io.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 60));
  const double alpha = cli.get_double("alpha", 0.6);
  const std::string prefix = cli.get_string("dot-prefix", "");

  Rng rng(23);
  graph::SocialGraphOptions social;
  social.num_nodes = 20'000;
  const graph::Graph base = graph::synthetic_social_graph(social, rng);
  const graph::Graph trust =
      graph::invitation_sample(base, {.target_size = nodes, .f = 0.5}, rng);

  overlay::OverlayServiceOptions options;
  options.params.target_links = 12;
  options.params.cache_size = 80;
  options.params.shuffle_length = 10;

  sim::Simulator sim;
  const auto churn = churn::ExponentialChurn::from_availability(alpha, 30.0);
  overlay::OverlayService service(sim, trust, churn, options, rng.split());
  service.start();
  sim.run_until(150.0);

  graph::Graph snapshot = service.overlay_snapshot();

  TextTable table({"node", "online", "trust-deg", "pseudonym-links",
                   "slots", "cache", "msgs sent", "own pseudonym expires"});
  for (graph::NodeId v = 0; v < nodes; ++v) {
    const auto& node = service.node(v);
    const auto own = node.own_pseudonym();
    table.add_row({std::to_string(v),
                   service.is_online(v) ? "yes" : "no",
                   std::to_string(node.trust_degree()),
                   std::to_string(node.pseudonym_links().size()),
                   std::to_string(node.slot_capacity()),
                   std::to_string(node.cache().size()),
                   std::to_string(node.counters().messages_sent()),
                   own ? TextTable::num(own->expiry, 1) : "-"});
  }
  table.print(std::cout);
  std::cout << "\noverlay: " << snapshot.num_edges() << " edges ("
            << trust.num_edges() << " trusted + "
            << snapshot.num_edges() - trust.num_edges()
            << " pseudonym links), t = " << sim.now() << "\n";

  if (!prefix.empty()) {
    std::ofstream trust_dot(prefix + "_trust.dot");
    graph::write_dot(trust_dot, trust, service.online_mask(), "trust");
    std::ofstream overlay_dot(prefix + "_overlay.dot");
    graph::write_dot(overlay_dot, snapshot, service.online_mask(), "overlay");
    std::cout << "wrote " << prefix << "_trust.dot and " << prefix
              << "_overlay.dot\n";
  }
  return 0;
}
