// Quickstart: build a trust graph, run the overlay-maintenance
// service under churn, and watch the overlay beat the bare trust
// graph on the paper's two robustness metrics.
//
//   ./quickstart [--nodes=400] [--alpha=0.4] [--periods=250]
#include <iostream>

#include "churn/churn_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "graph/components.hpp"
#include "graph/paths.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 400));
  const double alpha = cli.get_double("alpha", 0.4);
  const double periods = cli.get_double("periods", 250.0);

  // 1. A trust graph: here sampled invitation-style from a synthetic
  //    social graph, exactly like the paper's evaluation setup.
  Rng rng(7);
  graph::SocialGraphOptions social;
  social.num_nodes = 20'000;
  const graph::Graph base = graph::synthetic_social_graph(social, rng);
  const graph::Graph trust =
      graph::invitation_sample(base, {.target_size = nodes, .f = 0.5}, rng);
  std::cout << "trust graph: " << trust.num_nodes() << " nodes, "
            << trust.num_edges() << " edges\n";

  // 2. Churn: every node alternates online/offline with availability
  //    alpha (exponential on/off durations, Toff = 30 periods).
  const auto churn = churn::ExponentialChurn::from_availability(alpha, 30.0);

  // 3. The overlay-maintenance service (Table I defaults: 50-link
  //    target, 400-entry cache, l = 40, pseudonym lifetime 3 x Toff).
  sim::Simulator sim;
  overlay::OverlayService service(sim, trust, churn, {}, rng.split());
  service.start();
  sim.run_until(periods);

  // 4. Compare the maintained overlay against the bare trust graph on
  //    the same online population.
  graph::Graph overlay = service.overlay_snapshot();
  const auto& online = service.online_mask();
  Rng metric_rng(1);

  TextTable table({"metric", "trust graph", "overlay"});
  table.add_row({"edges", std::to_string(trust.num_edges()),
                 std::to_string(overlay.num_edges())});
  table.add_row(
      {"fraction of online nodes disconnected",
       TextTable::num(graph::fraction_disconnected(trust, online), 3),
       TextTable::num(graph::fraction_disconnected(overlay, online), 3)});
  table.add_row(
      {"normalized avg path length",
       TextTable::num(graph::normalized_average_path_length(
                          trust, metric_rng, nodes, online), 2),
       TextTable::num(graph::normalized_average_path_length(
                          overlay, metric_rng, nodes, online), 2)});
  table.add_row({"messages sent (total)", "-",
                 std::to_string(service.total_counters().messages_sent())});
  table.print(std::cout);

  std::cout << "\nonline now: " << service.online_count() << "/" << nodes
            << " (alpha = " << alpha << ")\n";
  return 0;
}
