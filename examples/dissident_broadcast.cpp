// Scenario from the paper's introduction: a group of dissidents wants
// to broadcast messages without a central service. Their trust graph
// is sparse (each member knows few others). Under churn, messages
// flooded over trusted links strand a large part of the group; over
// the maintained overlay they reach (nearly) everyone, faster.
//
//   ./dissident_broadcast [--members=600] [--alpha=0.5] [--messages=30]
#include <iostream>

#include "churn/churn_model.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dissemination/broadcast.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  const auto members = static_cast<std::size_t>(cli.get_int("members", 600));
  const double alpha = cli.get_double("alpha", 0.5);
  const auto messages = static_cast<std::size_t>(cli.get_int("messages", 30));

  // Invitation-grown group: f = 0.3 models cautious invitations (each
  // member brings only a few contacts) -> a sparse trust graph.
  Rng rng(13);
  graph::SocialGraphOptions social;
  social.num_nodes = 20'000;
  const graph::Graph base = graph::synthetic_social_graph(social, rng);
  const graph::Graph trust = graph::invitation_sample(
      base, {.target_size = members, .f = 0.3}, rng);
  std::cout << "dissident group: " << members << " members, "
            << trust.num_edges() << " trust edges, availability " << alpha
            << "\n\n";

  const auto churn = churn::ExponentialChurn::from_availability(alpha, 30.0);
  sim::Simulator sim;
  overlay::OverlayService service(sim, trust, churn, {}, rng.split());
  service.start();
  sim.run_until(300.0);  // let the overlay converge

  graph::Graph overlay = service.overlay_snapshot();
  const auto& online = service.online_mask();

  TextTable table({"graph", "coverage", "mean latency", "max hops",
                   "messages per broadcast"});
  Rng brng(29);
  for (const bool use_overlay : {false, true}) {
    const graph::Graph& g = use_overlay ? overlay : trust;
    RunningStats coverage, latency, hops, cost;
    std::size_t sent = 0;
    for (std::size_t m = 0; m < messages; ++m) {
      // A random online member speaks up.
      graph::NodeId source;
      do {
        source = static_cast<graph::NodeId>(brng.uniform_u64(members));
      } while (!online.contains(source));
      const auto result = dissem::broadcast(g, online, source, {}, brng);
      coverage.add(result.coverage);
      latency.add(result.mean_latency);
      hops.add(result.max_hops_used);
      cost.add(static_cast<double>(result.messages_sent));
      ++sent;
    }
    (void)sent;
    table.add_row({use_overlay ? "privacy-preserving overlay" : "trust graph",
                   TextTable::num(coverage.mean(), 3),
                   TextTable::num(latency.mean(), 3),
                   TextTable::num(hops.mean(), 1),
                   TextTable::num(cost.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(coverage = fraction of ONLINE members reached; a member "
               "unreached on the trust graph is cut off from the group)\n";
  return 0;
}
