// Scenario from the paper's introduction: a worldwide community of
// patients with the same chronic illness, many on mobile devices with
// poor availability. Shows (a) how badly the trust graph fragments at
// low availability, (b) how the overlay holds the community together,
// and (c) the adaptive-lifetime extension coping with an unknown
// offline pattern.
//
//   ./patient_community [--patients=500] [--alpha=0.2]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "experiments/scenario.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  const auto patients = static_cast<std::size_t>(cli.get_int("patients", 500));
  const double alpha = cli.get_double("alpha", 0.2);

  Rng rng(17);
  graph::SocialGraphOptions social;
  social.num_nodes = 20'000;
  const graph::Graph base = graph::synthetic_social_graph(social, rng);
  const graph::Graph trust = graph::invitation_sample(
      base, {.target_size = patients, .f = 0.5}, rng);

  std::cout << "patient community: " << patients << " members, "
            << trust.num_edges() << " trust edges, availability " << alpha
            << " (mobile-heavy)\n\n";

  experiments::MeasureWindow window;
  window.warmup = 300.0;
  window.measure = 60.0;
  window.sample_every = 15.0;

  // Heavy-tailed offline durations: most sessions short, some members
  // disappear for a long time (hospital stays, travel).
  experiments::ChurnSpec churn;
  churn.alpha = alpha;
  churn.pareto = true;
  churn.pareto_shape = 2.0;

  TextTable table({"configuration", "disconnected", "norm-APL"});

  const auto baseline = experiments::run_static(trust, churn, window, 3);
  table.add_row({"trust graph only",
                 TextTable::num(baseline.stats.frac_disconnected.mean(), 3),
                 TextTable::num(baseline.stats.norm_apl.mean(), 2)});

  for (const bool adaptive : {false, true}) {
    experiments::OverlayScenario scenario;
    scenario.churn = churn;
    scenario.window = window;
    scenario.seed = 5 + adaptive;
    scenario.params.adaptive_lifetime = adaptive;
    if (adaptive) {
      // Deliberately bad initial guess; nodes learn their own rhythm.
      scenario.params.pseudonym_lifetime = 15.0;
      scenario.params.adaptive_lifetime_factor = 3.0;
      scenario.params.adaptive_max_lifetime = 2000.0;
    }
    const auto run = experiments::run_overlay(trust, scenario);
    table.add_row(
        {adaptive ? "overlay, adaptive lifetime (bad initial guess)"
                  : "overlay, fixed lifetime (3 x Toff)",
         TextTable::num(run.stats.frac_disconnected.mean(), 3),
         TextTable::num(run.stats.norm_apl.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nthe overlay keeps the support community reachable even "
               "though most members are offline most of the time.\n";
  return 0;
}
