// The privacy-preserving link layer with REAL cryptography: builds a
// mix network (relays with X25519 keypairs), onion-wraps a message
// through a 3-hop circuit (per-hop ChaCha20-Poly1305 layers), shows
// what each relay can and cannot see, and demonstrates the tamper and
// replay defences.
//
//   ./mix_tunnel [--hops=3] [--relays=8]
#include <iostream>

#include "common/cli.hpp"
#include "crypto/bytes.hpp"
#include "privacylink/mix_network.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  const auto hops = static_cast<std::size_t>(cli.get_int("hops", 3));
  const auto relays = static_cast<std::size_t>(cli.get_int("relays", 8));

  sim::Simulator sim;
  privacylink::MixNetwork mix(sim, {.num_relays = relays}, Rng(3));
  Rng rng(5);

  const auto route = mix.random_route(hops, rng);
  std::cout << "circuit: sender";
  for (const auto r : route) std::cout << " -> relay" << r;
  std::cout << " -> receiver\n";

  const crypto::Bytes payload =
      crypto::to_bytes("meet at the usual place, 21:00");

  // Show the layer sizes: each relay strips exactly one layer and
  // learns only the next hop.
  std::vector<privacylink::HopSpec> specs;
  for (std::size_t i = 0; i < route.size(); ++i)
    specs.push_back({i + 1 < route.size() ? route[i + 1]
                                          : privacylink::kFinalHop,
                     mix.relay_public_key(route[i])});
  const crypto::Bytes wrapped = privacylink::onion_wrap(
      specs, crypto::BytesView(payload.data(), payload.size()), rng);
  std::cout << "payload " << payload.size() << " bytes -> onion "
            << wrapped.size() << " bytes (" << hops << " layers, "
            << privacylink::kOnionLayerOverhead << " bytes each: eph-X25519 "
            << "pubkey + nonce + AEAD tag + next-hop)\n\n";

  // End-to-end delivery through the simulated network.
  mix.send(route, payload, [&](crypto::Bytes delivered) {
    std::cout << "delivered at t=" << sim.now() << ": \""
              << std::string(delivered.begin(), delivered.end()) << "\"\n";
  }, rng);
  sim.run_all();

  // An external observer tampering with a layer gets the message
  // silently dropped (AEAD authentication).
  crypto::Bytes tampered = privacylink::onion_wrap(
      specs, crypto::BytesView(payload.data(), payload.size()), rng);
  tampered[60] ^= 0x01;
  bool leaked = false;
  mix.inject(route[0], tampered, [&](crypto::Bytes) { leaked = true; });
  sim.run_all();
  std::cout << "tampered copy: " << (leaked ? "DELIVERED (bug!)" : "dropped")
            << "\n";

  // Replaying a captured message is blocked at the first relay
  // (§III-C replay defence: relays remember message fingerprints).
  const crypto::Bytes captured = privacylink::onion_wrap(
      specs, crypto::BytesView(payload.data(), payload.size()), rng);
  int deliveries = 0;
  mix.inject(route[0], captured, [&](crypto::Bytes) { ++deliveries; });
  mix.inject(route[0], captured, [&](crypto::Bytes) { ++deliveries; });
  sim.run_all();
  std::cout << "replayed copy: delivered " << deliveries
            << "x (second copy blocked), replays blocked so far: "
            << mix.replays_blocked() << "\n";
  return 0;
}
