// Interactive-style walkthrough of the group-chat application layer:
// three members post; one of them is offline during a post and
// catches up via anti-entropy after rejoining.
//
//   ./group_chat [--members=120] [--alpha=0.6]
#include <iostream>

#include "apps/groupchat.hpp"
#include "churn/churn_model.hpp"
#include "common/cli.hpp"
#include "graph/sampling.hpp"
#include "graph/socialgen.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace ppo;
  const Cli cli(argc, argv);
  const auto members = static_cast<std::size_t>(cli.get_int("members", 120));
  const double alpha = cli.get_double("alpha", 0.6);

  Rng rng(31);
  graph::SocialGraphOptions social;
  social.num_nodes = 20'000;
  const graph::Graph base = graph::synthetic_social_graph(social, rng);
  const graph::Graph trust = graph::invitation_sample(
      base, {.target_size = members, .f = 0.5}, rng);

  sim::Simulator sim;
  const auto churn = churn::ExponentialChurn::from_availability(alpha, 30.0);
  overlay::OverlayService service(sim, trust, churn, {}, rng.split());
  apps::GroupChat chat(sim, service, {}, rng.split());
  service.start();
  chat.start();

  std::cout << "group of " << members << " members, availability " << alpha
            << "; warming the overlay up...\n";
  sim.run_until(200.0);

  const auto pick_online = [&](graph::NodeId avoid) {
    graph::NodeId v;
    Rng r(rng.next_u64());
    do {
      v = static_cast<graph::NodeId>(r.uniform_u64(members));
    } while (!service.is_online(v) || v == avoid);
    return v;
  };

  const graph::NodeId alice = pick_online(members);
  const graph::NodeId bob = pick_online(alice);

  auto [a1_author, a1_seq] = chat.publish(alice, "anyone tried the new med?");
  sim.run_until(sim.now() + 3.0);
  std::cout << "t=" << sim.now() << "  member#" << alice
            << " posted; replicated to "
            << chat.replication(a1_author, a1_seq) * 100 << "% of the group\n";

  // Bob drops off the network; the conversation continues without him.
  service.churn_driver().fail_permanently(bob);
  auto [b_author, b_seq] =
      chat.publish(pick_online(bob), "yes — works, mild side effects");
  sim.run_until(sim.now() + 5.0);
  std::cout << "t=" << sim.now() << "  member#" << bob
            << " is offline and has the reply: " << std::boolalpha
            << chat.has_post(bob, b_author, b_seq) << "\n";

  // He returns: anti-entropy back-fills everything he missed.
  service.churn_driver().revive(bob);
  sim.run_until(sim.now() + 15.0);
  std::cout << "t=" << sim.now() << "  member#" << bob
            << " rejoined and has the reply: "
            << chat.has_post(bob, b_author, b_seq) << "\n";

  std::cout << "\ndelivery latency: mean "
            << chat.delivery_latency().mean() << " periods over "
            << chat.delivery_latency().count() << " deliveries; "
            << chat.messages_sent() << " link messages total\n";
  return 0;
}
