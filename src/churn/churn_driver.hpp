// Drives per-node online/offline transitions inside the simulator and
// maintains the online mask the metric collectors consume.
#pragma once

#include <functional>
#include <vector>

#include "churn/churn_model.hpp"
#include "ckpt/io.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/backend.hpp"

namespace ppo::churn {

using NodeId = graph::NodeId;

/// Hooks fired on every state transition (after the mask is updated).
struct ChurnCallbacks {
  std::function<void(NodeId)> on_online;
  std::function<void(NodeId)> on_offline;
};

class ChurnDriver {
 public:
  /// Homogeneous population: all nodes share `model` (the paper gives
  /// every node the same availability parameters, §IV-B).
  ChurnDriver(sim::SimulatorBackend& sim, std::size_t num_nodes,
              const ChurnModel& model, Rng rng,
              bool per_node_streams = false);

  /// Heterogeneous population (Yao et al.'s general setting): node v
  /// follows *models[v]. All pointers must outlive the driver.
  ///
  /// With `per_node_streams` each node draws its dwell times from a
  /// private stream split off `rng` in node order, so one node's
  /// trajectory never perturbs another's — required for the sharded
  /// backend, where transition events interleave differently per K.
  /// The default (shared stream) preserves the legacy draw order
  /// bit-exactly.
  ChurnDriver(sim::SimulatorBackend& sim,
              std::vector<const ChurnModel*> models, Rng rng,
              bool per_node_streams = false);

  /// Samples initial states from each node's stationary distribution
  /// (online with probability alpha_v) and schedules the first
  /// transitions. `on_online` fires immediately for initially-online
  /// nodes if `fire_initial` is true.
  void start(ChurnCallbacks callbacks, bool fire_initial = true);

  bool is_online(NodeId v) const { return online_.contains(v); }
  const graph::NodeMask& online_mask() const { return online_; }
  std::size_t online_count() const { return online_.count(num_nodes_); }
  std::size_t num_nodes() const { return num_nodes_; }
  bool per_node_streams() const { return !node_rngs_.empty(); }

  /// Failure injection: the node goes offline now and never returns
  /// (until revive()).
  void fail_permanently(NodeId v);

  /// Brings a permanently-failed node back: it comes online now and
  /// resumes normal churn.
  void revive(NodeId v);

  /// Dynamic membership: registers one more node following `model`
  /// (defaults to node 0's model). The node starts online (its join
  /// moment) and then churns like everyone else. Driver must be
  /// started. Returns the new node id.
  NodeId add_node(const ChurnModel* model = nullptr);

  /// --- checkpoint/restore -------------------------------------------
  /// Serializes RNG streams, the online/failed/epoch state and the
  /// journal of each node's pending transition event.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  /// Restore-time replacement for start(): installs the callbacks and
  /// re-inserts every journaled pending transition at its original
  /// (time, ticket) position — no initial-state sampling, no dwell
  /// draws, no callback firing.
  void restore_start(ChurnCallbacks callbacks);

 private:
  void go_online(NodeId v);
  void go_offline(NodeId v);
  void schedule_transition(NodeId v);
  Rng& rng_for(NodeId v) {
    return node_rngs_.empty() ? rng_ : node_rngs_[v];
  }

  sim::SimulatorBackend& sim_;
  std::size_t num_nodes_;
  std::vector<const ChurnModel*> models_;  // one per node
  Rng rng_;
  std::vector<Rng> node_rngs_;  // non-empty iff per_node_streams
  graph::NodeMask online_;
  std::vector<char> failed_;
  /// Epoch counter per node: cancels stale transitions after
  /// fail_permanently.
  std::vector<std::uint64_t> epoch_;
  /// Journal of the one live pending transition per node: everything
  /// needed to rebuild its closure at restore. Entries whose epoch no
  /// longer matches (node failed since) are dead and skipped.
  struct PendingTransition {
    double fire_time = 0.0;
    sim::EventTicket ticket;
    std::uint64_t epoch = 0;
    bool was_online = false;
  };
  std::vector<PendingTransition> pending_;
  ChurnCallbacks callbacks_;
  bool started_ = false;
};

}  // namespace ppo::churn
