// Churn models after Yao et al. (ICNP 2006), the scheme the paper
// adopts (§IV-B): each node alternates between online and offline
// states with independently drawn durations. The paper's experiments
// use exponential durations; Yao et al. also propose Pareto, which we
// provide for the churn-model ablation.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace ppo::churn {

/// Alternating-renewal churn process parameters. Durations are in
/// shuffling periods (the paper's time unit).
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;

  virtual double next_online_duration(Rng& rng) const = 0;
  virtual double next_offline_duration(Rng& rng) const = 0;

  virtual double mean_online_time() const = 0;
  virtual double mean_offline_time() const = 0;

  /// Stationary availability alpha = Ton / (Ton + Toff)  (paper §IV-B).
  double availability() const;
};

/// Exponential on/off durations (the paper's default). Memoryless, so
/// stationary residual lifetimes equal fresh draws.
class ExponentialChurn final : public ChurnModel {
 public:
  ExponentialChurn(double mean_online, double mean_offline);

  double next_online_duration(Rng& rng) const override;
  double next_offline_duration(Rng& rng) const override;
  double mean_online_time() const override { return mean_online_; }
  double mean_offline_time() const override { return mean_offline_; }

  /// Convenience: builds the model from target availability and mean
  /// offline time, the way the paper parameterizes experiments
  /// (Toff fixed at 30 sp, Ton adjusted to hit alpha).
  static ExponentialChurn from_availability(double alpha,
                                            double mean_offline);

 private:
  double mean_online_;
  double mean_offline_;
};

/// Pareto on/off durations with common shape; heavy-tailed session
/// lengths as observed in deployed P2P systems.
class ParetoChurn final : public ChurnModel {
 public:
  /// `shape` must be > 1 so the means exist.
  ParetoChurn(double shape, double mean_online, double mean_offline);

  double next_online_duration(Rng& rng) const override;
  double next_offline_duration(Rng& rng) const override;
  double mean_online_time() const override { return mean_online_; }
  double mean_offline_time() const override { return mean_offline_; }

  static ParetoChurn from_availability(double shape, double alpha,
                                       double mean_offline);

 private:
  double shape_;
  double scale_online_;
  double scale_offline_;
  double mean_online_;
  double mean_offline_;
};

/// Replays fixed duration sequences (cyclically): deterministic churn
/// for tests and failure-injection scenarios.
class TraceChurn final : public ChurnModel {
 public:
  TraceChurn(std::vector<double> online_durations,
             std::vector<double> offline_durations);

  double next_online_duration(Rng& rng) const override;
  double next_offline_duration(Rng& rng) const override;
  double mean_online_time() const override;
  double mean_offline_time() const override;

 private:
  std::vector<double> online_;
  std::vector<double> offline_;
  mutable std::size_t online_pos_ = 0;
  mutable std::size_t offline_pos_ = 0;
};

}  // namespace ppo::churn
