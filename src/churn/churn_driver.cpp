#include "churn/churn_driver.hpp"

#include "obs/trace.hpp"
#include "sim/restore.hpp"

namespace ppo::churn {

ChurnDriver::ChurnDriver(sim::SimulatorBackend& sim, std::size_t num_nodes,
                         const ChurnModel& model, Rng rng,
                         bool per_node_streams)
    : ChurnDriver(sim, std::vector<const ChurnModel*>(num_nodes, &model),
                  rng, per_node_streams) {}

ChurnDriver::ChurnDriver(sim::SimulatorBackend& sim,
                         std::vector<const ChurnModel*> models, Rng rng,
                         bool per_node_streams)
    : sim_(sim),
      num_nodes_(models.size()),
      models_(std::move(models)),
      rng_(rng),
      online_(num_nodes_, false),
      failed_(num_nodes_, 0),
      epoch_(num_nodes_, 0),
      pending_(num_nodes_) {
  for (const ChurnModel* model : models_)
    PPO_CHECK_MSG(model != nullptr, "null churn model");
  if (per_node_streams) {
    node_rngs_.reserve(num_nodes_);
    for (std::size_t v = 0; v < num_nodes_; ++v)
      node_rngs_.push_back(rng_.split());
  }
}

void ChurnDriver::start(ChurnCallbacks callbacks, bool fire_initial) {
  PPO_CHECK_MSG(!started_, "churn driver already started");
  started_ = true;
  callbacks_ = std::move(callbacks);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const bool starts_online = rng_for(v).bernoulli(models_[v]->availability());
    online_.set(v, starts_online);
    if (starts_online && fire_initial && callbacks_.on_online)
      callbacks_.on_online(v);
    schedule_transition(v);
  }
}

void ChurnDriver::schedule_transition(NodeId v) {
  if (failed_[v]) return;
  const bool currently_online = online_.contains(v);
  // Exponential durations are memoryless, so drawing a fresh duration
  // for the initial residual state is exact; for other models it is a
  // standard approximation that converges after the first transition.
  Rng& rng = rng_for(v);
  const double dwell = currently_online
                           ? models_[v]->next_online_duration(rng)
                           : models_[v]->next_offline_duration(rng);
  const std::uint64_t my_epoch = epoch_[v];
  sim_.schedule_for(v, dwell, [this, v, my_epoch, currently_online] {
    if (epoch_[v] != my_epoch || failed_[v]) return;
    if (currently_online)
      go_offline(v);
    else
      go_online(v);
    schedule_transition(v);
  });
  pending_[v] = PendingTransition{sim_.now() + dwell, sim_.last_ticket(),
                                  my_epoch, currently_online};
}

void ChurnDriver::go_online(NodeId v) {
  online_.set(v, true);
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kChurn, "online", v);
  if (callbacks_.on_online) callbacks_.on_online(v);
}

void ChurnDriver::go_offline(NodeId v) {
  online_.set(v, false);
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kChurn, "offline", v);
  if (callbacks_.on_offline) callbacks_.on_offline(v);
}

NodeId ChurnDriver::add_node(const ChurnModel* model) {
  PPO_CHECK_MSG(started_, "start the driver before adding nodes");
  PPO_CHECK_MSG(!models_.empty(), "no base model to inherit");
  const auto v = static_cast<NodeId>(num_nodes_++);
  models_.push_back(model != nullptr ? model : models_.front());
  if (!node_rngs_.empty()) node_rngs_.push_back(rng_.split());
  online_.resize(num_nodes_, false);
  failed_.push_back(0);
  epoch_.push_back(0);
  pending_.emplace_back();
  go_online(v);
  schedule_transition(v);
  return v;
}

void ChurnDriver::fail_permanently(NodeId v) {
  PPO_CHECK_MSG(v < num_nodes_, "node out of range");
  ++epoch_[v];  // invalidate any pending transition
  failed_[v] = 1;
  if (online_.contains(v)) go_offline(v);
}

void ChurnDriver::save_state(ckpt::Writer& w) const {
  w.tag(0x4348524Eu);  // 'CHRN'
  w.size(num_nodes_);
  w.rng(rng_);
  w.size(node_rngs_.size());
  for (const Rng& r : node_rngs_) w.rng(r);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    w.b(online_.contains(v));
    w.b(failed_[v] != 0);
    w.u64(epoch_[v]);
    const PendingTransition& p = pending_[v];
    w.f64(p.fire_time);
    w.u32(p.ticket.origin);
    w.u64(p.ticket.seq);
    w.u64(p.epoch);
    w.b(p.was_online);
  }
}

void ChurnDriver::load_state(ckpt::Reader& r) {
  r.tag(0x4348524Eu);
  const std::size_t n = r.size();
  if (n != num_nodes_)
    throw ckpt::ParseError("churn node count mismatch");
  rng_ = r.rng();
  const std::size_t streams = r.size();
  if (streams != node_rngs_.size())
    throw ckpt::ParseError("churn stream mode mismatch");
  for (Rng& s : node_rngs_) s = r.rng();
  for (NodeId v = 0; v < num_nodes_; ++v) {
    online_.set(v, r.b());
    failed_[v] = r.b() ? 1 : 0;
    epoch_[v] = r.u64();
    PendingTransition& p = pending_[v];
    p.fire_time = r.f64();
    p.ticket.origin = r.u32();
    p.ticket.seq = r.u64();
    p.epoch = r.u64();
    p.was_online = r.b();
  }
}

void ChurnDriver::restore_start(ChurnCallbacks callbacks) {
  PPO_CHECK_MSG(!started_, "churn driver already started");
  started_ = true;
  callbacks_ = std::move(callbacks);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    // A node whose journaled epoch is stale (failed since) has no live
    // transition; everyone else gets theirs back verbatim.
    if (failed_[v] || pending_[v].epoch != epoch_[v]) continue;
    const std::uint64_t my_epoch = pending_[v].epoch;
    const bool currently_online = pending_[v].was_online;
    sim::restore_event_any(
        sim_, pending_[v].fire_time, pending_[v].ticket, v,
        [this, v, my_epoch, currently_online] {
          if (epoch_[v] != my_epoch || failed_[v]) return;
          if (currently_online)
            go_offline(v);
          else
            go_online(v);
          schedule_transition(v);
        });
  }
}

void ChurnDriver::revive(NodeId v) {
  PPO_CHECK_MSG(v < num_nodes_, "node out of range");
  PPO_CHECK_MSG(failed_[v], "revive() is only for failed nodes");
  failed_[v] = 0;
  ++epoch_[v];
  go_online(v);
  schedule_transition(v);
}

}  // namespace ppo::churn
