#include "churn/churn_model.hpp"

#include "common/check.hpp"

namespace ppo::churn {

double ChurnModel::availability() const {
  const double on = mean_online_time();
  const double off = mean_offline_time();
  PPO_CHECK_MSG(on + off > 0.0, "degenerate churn model");
  return on / (on + off);
}

ExponentialChurn::ExponentialChurn(double mean_online, double mean_offline)
    : mean_online_(mean_online), mean_offline_(mean_offline) {
  PPO_CHECK_MSG(mean_online > 0.0 && mean_offline >= 0.0,
                "churn means must be positive");
}

double ExponentialChurn::next_online_duration(Rng& rng) const {
  return rng.exponential(mean_online_);
}

double ExponentialChurn::next_offline_duration(Rng& rng) const {
  return mean_offline_ == 0.0 ? 0.0 : rng.exponential(mean_offline_);
}

ExponentialChurn ExponentialChurn::from_availability(double alpha,
                                                     double mean_offline) {
  PPO_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
  if (alpha >= 1.0) {
    // Fully available: infinite sessions approximated by a huge mean
    // and zero offline time.
    return ExponentialChurn(1e18, 0.0);
  }
  // alpha = Ton / (Ton + Toff)  =>  Ton = Toff * alpha / (1 - alpha)
  return ExponentialChurn(mean_offline * alpha / (1.0 - alpha), mean_offline);
}

ParetoChurn::ParetoChurn(double shape, double mean_online,
                         double mean_offline)
    : shape_(shape), mean_online_(mean_online), mean_offline_(mean_offline) {
  PPO_CHECK_MSG(shape > 1.0, "Pareto shape must exceed 1 for finite mean");
  PPO_CHECK_MSG(mean_online > 0.0 && mean_offline > 0.0,
                "churn means must be positive");
  // mean = scale * shape / (shape - 1)
  scale_online_ = mean_online * (shape - 1.0) / shape;
  scale_offline_ = mean_offline * (shape - 1.0) / shape;
}

double ParetoChurn::next_online_duration(Rng& rng) const {
  return rng.pareto(shape_, scale_online_);
}

double ParetoChurn::next_offline_duration(Rng& rng) const {
  return rng.pareto(shape_, scale_offline_);
}

ParetoChurn ParetoChurn::from_availability(double shape, double alpha,
                                           double mean_offline) {
  PPO_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  return ParetoChurn(shape, mean_offline * alpha / (1.0 - alpha),
                     mean_offline);
}

TraceChurn::TraceChurn(std::vector<double> online_durations,
                       std::vector<double> offline_durations)
    : online_(std::move(online_durations)),
      offline_(std::move(offline_durations)) {
  PPO_CHECK_MSG(!online_.empty() && !offline_.empty(),
                "trace churn needs at least one duration per state");
  for (double d : online_) PPO_CHECK_MSG(d > 0.0, "durations must be positive");
  for (double d : offline_)
    PPO_CHECK_MSG(d >= 0.0, "durations must be non-negative");
}

double TraceChurn::next_online_duration(Rng&) const {
  const double d = online_[online_pos_];
  online_pos_ = (online_pos_ + 1) % online_.size();
  return d;
}

double TraceChurn::next_offline_duration(Rng&) const {
  const double d = offline_[offline_pos_];
  offline_pos_ = (offline_pos_ + 1) % offline_.size();
  return d;
}

double TraceChurn::mean_online_time() const {
  double s = 0.0;
  for (double d : online_) s += d;
  return s / static_cast<double>(online_.size());
}

double TraceChurn::mean_offline_time() const {
  double s = 0.0;
  for (double d : offline_) s += d;
  return s / static_cast<double>(offline_.size());
}

}  // namespace ppo::churn
