// Scores inference attacks against the ground-truth trust graph.
// This is the only place in the subsystem allowed to read the
// ObservationRecord truth_* fields: entities are mapped back to nodes
// by majority vote over the records, candidate entity pairs become
// node pairs, and the ranked list is scored with precision@K,
// recall@K (K = min(#candidates, |E_trust|)) and rank-based ROC AUC.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "inference/attacks.hpp"

namespace ppo::inference {

struct AttackMetrics {
  double precision = 0.0;  // at K = min(candidates, true edges)
  double recall = 0.0;     // of all true trust edges, at the same K
  double auc = 0.0;        // rank AUC over candidates; 0.5 if degenerate
  std::uint64_t candidates = 0;  // node-pair candidates after mapping
  std::uint64_t true_edges = 0;  // |E_trust|
  std::uint64_t hits = 0;        // true edges within the top-K
};

/// Majority-vote entity -> truth-node mapping (ties to the smaller
/// node id). Index = entity id; value = node id, or
/// graph::kInvalidNode-like sentinel num_nodes when an entity never
/// appeared in any record.
std::vector<graph::NodeId> entity_truth_map(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    std::size_t num_nodes);

/// Candidate node-pair edge after entity -> node mapping.
struct NodeEdge {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  double score = 0.0;

  friend bool operator==(const NodeEdge&, const NodeEdge&) = default;
};

/// Maps entity-pair candidates to node pairs (dropping self-pairs and
/// unmapped entities, deduplicating to the max score) and returns them
/// in (score desc, u, v) order.
std::vector<NodeEdge> map_to_node_edges(
    const std::vector<ScoredEdge>& candidates,
    const std::vector<graph::NodeId>& truth_map, std::size_t num_nodes);

/// Scores a ranked candidate list against the trust graph.
AttackMetrics score_edges(const std::vector<NodeEdge>& ranked,
                          const graph::Graph& trust);

/// FNV-1a fingerprint of a ranked candidate list — the bit-identity
/// handle used by the K-invariance cross-checks.
std::uint64_t edges_fingerprint(const std::vector<NodeEdge>& ranked);

/// FNV-1a fingerprint of a merged observation log.
std::uint64_t log_fingerprint(const std::vector<ObservationRecord>& log);

}  // namespace ppo::inference
