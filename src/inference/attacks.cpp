#include "inference/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/check.hpp"

namespace ppo::inference {
namespace {

/// Union-find over dense pseudonym indices, path-halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

std::size_t profile_index(const std::vector<PseudonymProfile>& profiles,
                          PseudonymValue value) {
  const auto it = std::lower_bound(
      profiles.begin(), profiles.end(), value,
      [](const PseudonymProfile& p, PseudonymValue v) { return p.value < v; });
  PPO_CHECK(it != profiles.end() && it->value == value);
  return static_cast<std::size_t>(it - profiles.begin());
}

double jaccard(const std::vector<PseudonymValue>& a,
               const std::vector<PseudonymValue>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return double(inter) / double(a.size() + b.size() - inter);
}

/// Sorts candidates into the canonical (score desc, u, v) order.
void canonical_sort(std::vector<ScoredEdge>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const ScoredEdge& a, const ScoredEdge& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
}

/// Accumulates pair -> score maps into the canonical edge list.
std::vector<ScoredEdge> to_edges(
    const std::map<std::pair<std::uint32_t, std::uint32_t>, double>& scores) {
  std::vector<ScoredEdge> out;
  out.reserve(scores.size());
  for (const auto& [pair, score] : scores)
    out.push_back({pair.first, pair.second, score});
  canonical_sort(out);
  return out;
}

/// Entity pair key in canonical u < v order; nullopt for self-pairs.
std::optional<std::pair<std::uint32_t, std::uint32_t>> entity_pair(
    std::uint32_t a, std::uint32_t b) {
  if (a == b) return std::nullopt;
  return std::make_pair(std::min(a, b), std::max(a, b));
}

}  // namespace

std::uint32_t EntityMap::entity_of(PseudonymValue value) const {
  const auto it = std::lower_bound(
      profiles.begin(), profiles.end(), value,
      [](const PseudonymProfile& p, PseudonymValue v) { return p.value < v; });
  if (it == profiles.end() || it->value != value) return num_entities;
  return it->entity;
}

EntityMap link_pseudonym_lifetimes(const std::vector<ObservationRecord>& log,
                                   const AttackOptions& options) {
  EntityMap out;

  // Profile every pseudonym that appears on either side of an
  // exchange. flat std::map keeps value order deterministic.
  std::map<PseudonymValue, PseudonymProfile> by_value;
  const auto touch = [&](PseudonymValue value, double time, double expiry,
                         PseudonymValue peer) {
    if (value == 0) return;  // endpoint had no live pseudonym
    auto [it, inserted] = by_value.try_emplace(value);
    PseudonymProfile& p = it->second;
    if (inserted) {
      p.value = value;
      p.first_seen = time;
    }
    p.first_seen = std::min(p.first_seen, time);
    p.last_seen = std::max(p.last_seen, time);
    p.expiry = std::max(p.expiry, expiry);
    ++p.exchanges;
    if (peer != 0) p.peers.push_back(peer);
  };
  for (const ObservationRecord& rec : log) {
    touch(rec.src_pseudo, rec.time, rec.src_expiry, rec.dst_pseudo);
    touch(rec.dst_pseudo, rec.time, rec.dst_expiry, rec.src_pseudo);
  }

  out.profiles.reserve(by_value.size());
  for (auto& [value, profile] : by_value) {
    std::sort(profile.peers.begin(), profile.peers.end());
    profile.peers.erase(
        std::unique(profile.peers.begin(), profile.peers.end()),
        profile.peers.end());
    out.profiles.push_back(std::move(profile));
  }

  // Successor matching: node X's pseudonym expires at t and X mints a
  // replacement immediately, so a successor's first sighting falls in
  // (last_seen, expiry + window]. Score candidates by peer-set overlap
  // plus a bonus for first appearing close to the predecessor's
  // expiry; greedily accept the best per predecessor. Deterministic:
  // profiles are value-sorted and ties break towards the smaller
  // candidate value.
  const std::size_t n = out.profiles.size();
  UnionFind uf(n);
  std::vector<std::size_t> by_first_seen(n);
  for (std::size_t i = 0; i < n; ++i) by_first_seen[i] = i;
  std::sort(by_first_seen.begin(), by_first_seen.end(),
            [&](std::size_t a, std::size_t b) {
              const PseudonymProfile& pa = out.profiles[a];
              const PseudonymProfile& pb = out.profiles[b];
              if (pa.first_seen != pb.first_seen)
                return pa.first_seen < pb.first_seen;
              return pa.value < pb.value;
            });
  for (std::size_t i = 0; i < n; ++i) {
    const PseudonymProfile& pred = out.profiles[i];
    const double lo = pred.last_seen;
    const double hi = pred.expiry + options.link_window;
    if (!(lo < hi)) continue;
    double best_score = 0.0;
    std::size_t best = n;
    for (const std::size_t j : by_first_seen) {
      const PseudonymProfile& cand = out.profiles[j];
      if (cand.first_seen <= lo) continue;
      if (cand.first_seen > hi) break;
      if (j == i) continue;
      const double gap = std::abs(cand.first_seen - pred.expiry);
      const double timing =
          std::max(0.0, 1.0 - gap / std::max(options.link_window, 1e-9));
      const double score = jaccard(pred.peers, cand.peers) + timing;
      if (score > best_score ||
          (score == best_score && best != n &&
           cand.value < out.profiles[best].value)) {
        best_score = score;
        best = j;
      }
    }
    if (best != n && best_score >= options.link_min_score) uf.unite(i, best);
  }

  // Dense entity ids in order of the smallest member pseudonym.
  std::map<std::size_t, std::uint32_t> root_to_entity;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    const auto [it, inserted] =
        root_to_entity.try_emplace(root, out.num_entities);
    if (inserted) ++out.num_entities;
    out.profiles[i].entity = it->second;
  }
  return out;
}

std::vector<ScoredEdge> lifetime_linking_attack(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    const AttackOptions& options) {
  (void)options;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> scores;
  for (const ObservationRecord& rec : log) {
    if (rec.src_pseudo == 0 || rec.dst_pseudo == 0) continue;
    const auto pair = entity_pair(entities.entity_of(rec.src_pseudo),
                                  entities.entity_of(rec.dst_pseudo));
    if (pair) scores[*pair] += 1.0;
  }
  return to_edges(scores);
}

std::vector<ScoredEdge> common_neighbor_attack(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    const AttackOptions& options) {
  (void)options;
  // Entity adjacency from direct exchanges.
  std::map<std::uint32_t, std::set<std::uint32_t>> neighbors;
  for (const ObservationRecord& rec : log) {
    if (rec.src_pseudo == 0 || rec.dst_pseudo == 0) continue;
    const std::uint32_t a = entities.entity_of(rec.src_pseudo);
    const std::uint32_t b = entities.entity_of(rec.dst_pseudo);
    if (a == b) continue;
    neighbors[a].insert(b);
    neighbors[b].insert(a);
  }
  // Score every pair sharing at least one neighbour: enumerate the
  // 2-hop paths through each hub. Cosine normalisation keeps
  // high-degree hubs from dominating.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> common;
  for (const auto& [hub, peers] : neighbors) {
    (void)hub;
    for (auto it = peers.begin(); it != peers.end(); ++it)
      for (auto jt = std::next(it); jt != peers.end(); ++jt)
        common[{*it, *jt}] += 1.0;
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> scores;
  for (const auto& [pair, count] : common) {
    const double du = double(neighbors[pair.first].size());
    const double dv = double(neighbors[pair.second].size());
    scores[pair] = count / std::sqrt(du * dv);
  }
  return to_edges(scores);
}

std::vector<ScoredEdge> timing_correlation_attack(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    const AttackOptions& options) {
  const double bucket = std::max(options.timing_bucket, 1e-9);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::set<std::int64_t>>
      buckets;
  for (const ObservationRecord& rec : log) {
    if (rec.src_pseudo == 0 || rec.dst_pseudo == 0) continue;
    const auto pair = entity_pair(entities.entity_of(rec.src_pseudo),
                                  entities.entity_of(rec.dst_pseudo));
    if (pair)
      buckets[*pair].insert(static_cast<std::int64_t>(rec.time / bucket));
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> scores;
  for (const auto& [pair, hits] : buckets)
    scores[pair] = double(hits.size());
  return to_edges(scores);
}

const std::vector<NamedAttack>& all_attacks() {
  static const std::vector<NamedAttack> kAttacks = {
      {"lifetime_linking", &lifetime_linking_attack},
      {"common_neighbor", &common_neighbor_attack},
      {"timing_correlation", &timing_correlation_attack},
  };
  return kAttacks;
}

}  // namespace ppo::inference
