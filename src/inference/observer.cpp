#include "inference/observer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace ppo::inference {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof x);
  std::memcpy(&bits, &x, sizeof bits);
  return bits;
}

}  // namespace

void ObserverPlan::validate() const {
  PPO_CHECK_MSG(coverage >= 0.0 && coverage <= 1.0,
                "observer coverage must be in [0, 1]");
}

std::vector<bool> materialize_observers(const ObserverPlan& plan,
                                        std::size_t num_nodes) {
  plan.validate();
  std::vector<bool> mask(num_nodes, false);
  if (!plan.enabled() || num_nodes == 0) return mask;
  const auto count = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(num_nodes),
                       std::llround(plan.coverage * double(num_nodes))));
  std::vector<NodeId> order(num_nodes);
  std::iota(order.begin(), order.end(), NodeId{0});
  Rng rng(derive_seed(plan.seed, 0x0B5Eu));
  rng.shuffle(order);
  for (std::size_t i = 0; i < count; ++i) mask[order[i]] = true;
  return mask;
}

std::uint64_t observation_digest(const std::vector<PseudonymRecord>& set) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, set.size());
  for (const PseudonymRecord& rec : set) {
    fnv_mix(h, rec.value);
    fnv_mix(h, double_bits(rec.expiry));
  }
  return h;
}

ObserverAdversary::ObserverAdversary(const ObserverPlan& plan,
                                     std::size_t num_nodes)
    : plan_(plan),
      global_(plan.coverage >= 1.0),
      observers_(materialize_observers(plan, num_nodes)),
      buffers_(num_nodes) {
  observer_count_ = static_cast<std::size_t>(
      std::count(observers_.begin(), observers_.end(), true));
}

std::optional<PendingObservation> ObserverAdversary::capture(
    NodeId from, NodeId to, sim::Time now, bool is_response,
    const std::optional<PseudonymRecord>& src_own,
    const std::vector<PseudonymRecord>& set) const {
  if (!observes(from, to)) return std::nullopt;
  if (!src_own.has_value()) return std::nullopt;
  PendingObservation pending;
  pending.time = now;
  pending.src = from;
  pending.src_pseudo = src_own->value;
  pending.src_expiry = src_own->expiry;
  pending.digest = observation_digest(set);
  pending.is_response = is_response;
  return pending;
}

void ObserverAdversary::deliver(const PendingObservation& pending, NodeId to,
                                const std::optional<PseudonymRecord>& dst_own) {
  Buffer& buffer = buffers_[to];
  ObservationRecord rec;
  rec.time = pending.time;
  rec.src_pseudo = pending.src_pseudo;
  rec.src_expiry = pending.src_expiry;
  if (dst_own.has_value()) {
    rec.dst_pseudo = dst_own->value;
    rec.dst_expiry = dst_own->expiry;
  }
  rec.digest = pending.digest;
  rec.is_response = pending.is_response;
  rec.truth_src = pending.src;
  rec.truth_dst = to;
  rec.seq = buffer.seq++;
  buffer.records.push_back(rec);
  PPO_TRACE_EVENT(obs::TraceCategory::kInference, "observe", to,
                  (obs::TraceArg{"response", pending.is_response ? 1.0 : 0.0}));
}

std::uint64_t ObserverAdversary::records_recorded() const {
  std::uint64_t total = 0;
  for (const Buffer& buffer : buffers_) total += buffer.records.size();
  return total;
}

void ObserverAdversary::save_state(ckpt::Writer& w) const {
  w.tag(0x4F425356u);  // 'OBSV'
  w.size(buffers_.size());
  for (const Buffer& buffer : buffers_) {
    w.u64(buffer.seq);
    w.size(buffer.records.size());
    for (const ObservationRecord& rec : buffer.records) {
      w.f64(rec.time);
      w.u64(rec.src_pseudo);
      w.f64(rec.src_expiry);
      w.u64(rec.dst_pseudo);
      w.f64(rec.dst_expiry);
      w.u64(rec.digest);
      w.b(rec.is_response);
      w.u32(rec.truth_src);
      w.u32(rec.truth_dst);
      w.u64(rec.seq);
    }
  }
}

void ObserverAdversary::load_state(ckpt::Reader& r) {
  r.tag(0x4F425356u);
  if (r.size() != buffers_.size())
    throw ckpt::ParseError("observer buffer count mismatch");
  for (Buffer& buffer : buffers_) {
    buffer.seq = r.u64();
    const std::size_t n = r.size();
    buffer.records.clear();
    buffer.records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ObservationRecord rec;
      rec.time = r.f64();
      rec.src_pseudo = r.u64();
      rec.src_expiry = r.f64();
      rec.dst_pseudo = r.u64();
      rec.dst_expiry = r.f64();
      rec.digest = r.u64();
      rec.is_response = r.b();
      rec.truth_src = r.u32();
      rec.truth_dst = r.u32();
      rec.seq = r.u64();
      buffer.records.push_back(rec);
    }
  }
}

std::vector<ObservationRecord> ObserverAdversary::merged() const {
  std::vector<ObservationRecord> out;
  out.reserve(records_recorded());
  for (const Buffer& buffer : buffers_)
    out.insert(out.end(), buffer.records.begin(), buffer.records.end());
  std::sort(out.begin(), out.end(),
            [](const ObservationRecord& a, const ObservationRecord& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.truth_dst != b.truth_dst) return a.truth_dst < b.truth_dst;
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace ppo::inference
