// Passive link-privacy observer (ROADMAP "link-privacy inference
// benchmark"; ground: Mittal et al., arXiv:1208.6189 and Nguyen et
// al., arXiv:1609.01616). The paper's protocol hides the trust graph
// behind rotating pseudonyms; this adversary measures how much of it
// leaks anyway. It taps the shuffle send seam of BOTH OverlayService
// and ShardedOverlayService (the same seam the Byzantine engine uses)
// and records what a network-level eavesdropper would see: the
// pseudonym-to-pseudonym exchange metadata, never node identities.
//
// Observation model: a global passive observer (coverage = 1) sees
// every delivered shuffle message; a local observer is a seeded
// fraction of colluding nodes that see only traffic they send or
// receive. The colluder set is a pure function of (plan, num_nodes),
// like adversary::materialize_roles.
//
// Determinism contract (mirrors adversary/engine.hpp): the log is
// node-keyed — each record is appended from the RECEIVING node's own
// event context into that node's buffer, so on the sharded backend
// every shard touches disjoint state and the merged log is
// bit-identical for every shard count K. The observer draws from no
// RNG at run time and only reads state owned by the executing node,
// so an enabled observer never perturbs the trajectory, and a
// zero-coverage plan (observer not even constructed) is trivially
// bit-identical to no observer at all.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ckpt/io.hpp"
#include "graph/graph.hpp"
#include "privacylink/pseudonym.hpp"
#include "sim/simulator.hpp"

namespace ppo::inference {

using NodeId = graph::NodeId;
using privacylink::PseudonymRecord;
using privacylink::PseudonymValue;

struct ObserverPlan {
  /// Fraction of nodes colluding with the observer. 1.0 is the global
  /// passive observer; anything below sees only traffic with a
  /// colluder endpoint. 0 disables the observer entirely.
  double coverage = 0.0;
  std::uint64_t seed = 0x0B5E;

  /// True iff the observer sees anything. Services skip observer
  /// construction entirely when false, so a zero-coverage plan is
  /// bit-identical to no plan at all.
  bool enabled() const { return coverage > 0.0; }

  /// Aborts (PPO_CHECK) on out-of-range knobs.
  void validate() const;
};

/// Colluder mask as a pure function of (plan, num_nodes): a seeded
/// shuffle of the id space, first round(coverage * n) ids collude.
std::vector<bool> materialize_observers(const ObserverPlan& plan,
                                        std::size_t num_nodes);

/// One observed shuffle delivery. Pseudonym fields are what the wire
/// leaks; the truth_* node ids are ground-truth annotations recorded
/// for the EVALUATOR only — inference attacks must never read them.
struct ObservationRecord {
  double time = 0.0;
  PseudonymValue src_pseudo = 0;
  double src_expiry = 0.0;
  PseudonymValue dst_pseudo = 0;
  double dst_expiry = 0.0;
  /// FNV digest of the exchanged record set (values + expiries).
  std::uint64_t digest = 0;
  bool is_response = false;
  NodeId truth_src = 0;  // evaluator-only ground truth
  NodeId truth_dst = 0;  // evaluator-only ground truth
  std::uint64_t seq = 0;  // per-destination emission order

  friend bool operator==(const ObservationRecord&,
                         const ObservationRecord&) = default;
};

/// Digest of a shuffle set as the observer sees it on the wire.
std::uint64_t observation_digest(const std::vector<PseudonymRecord>& set);

/// Everything captured in the SENDER's event context at the send
/// seam; completed into a record in the receiver's context on
/// delivery. Plain data so services can move it through the delivery
/// closure.
struct PendingObservation {
  double time = 0.0;
  NodeId src = 0;
  PseudonymValue src_pseudo = 0;
  double src_expiry = 0.0;
  std::uint64_t digest = 0;
  bool is_response = false;
};

class ObserverAdversary {
 public:
  ObserverAdversary(const ObserverPlan& plan, std::size_t num_nodes);

  const ObserverPlan& plan() const { return plan_; }
  std::size_t observer_count() const { return observer_count_; }
  bool is_observer(NodeId v) const { return observers_[v]; }

  /// True when a message from -> to crosses the observer's view:
  /// always under the global model, else when either endpoint
  /// colludes.
  bool observes(NodeId from, NodeId to) const {
    return global_ || observers_[from] || observers_[to];
  }

  /// Sender-context capture at the send seam (post adversary
  /// transform, i.e. what is actually on the wire). Returns nullopt
  /// when the message is outside the observer's view or the sender
  /// has no live pseudonym to be seen under.
  std::optional<PendingObservation> capture(
      NodeId from, NodeId to, sim::Time now, bool is_response,
      const std::optional<PseudonymRecord>& src_own,
      const std::vector<PseudonymRecord>& set) const;

  /// Receiver-context completion on delivery: appends to the
  /// destination node's buffer (touched only from that node's
  /// events — the K-invariance contract).
  void deliver(const PendingObservation& pending, NodeId to,
               const std::optional<PseudonymRecord>& dst_own);

  /// Total records across all buffers (call between windows).
  std::uint64_t records_recorded() const;

  /// Canonical merged log: (time, truth_dst, seq) order — the same
  /// K-invariant merge discipline as obs::Tracer. Call only at
  /// quiescent points (no simulation windows in flight).
  std::vector<ObservationRecord> merged() const;

  /// Checkpoint/restore: every per-destination buffer verbatim.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  struct Buffer {
    std::vector<ObservationRecord> records;
    std::uint64_t seq = 0;
  };

  ObserverPlan plan_;
  bool global_ = false;
  std::vector<bool> observers_;
  std::size_t observer_count_ = 0;
  std::vector<Buffer> buffers_;  // indexed by destination node
};

}  // namespace ppo::inference
