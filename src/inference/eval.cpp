#include "inference/eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "common/check.hpp"

namespace ppo::inference {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof x);
  std::memcpy(&bits, &x, sizeof bits);
  return bits;
}

}  // namespace

std::vector<graph::NodeId> entity_truth_map(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    std::size_t num_nodes) {
  // votes[entity][node] = number of records where a pseudonym of this
  // entity demonstrably belonged to that node.
  std::vector<std::map<graph::NodeId, std::uint64_t>> votes(
      entities.num_entities);
  const auto vote = [&](PseudonymValue value, graph::NodeId node) {
    if (value == 0) return;
    const std::uint32_t entity = entities.entity_of(value);
    if (entity >= entities.num_entities) return;
    ++votes[entity][node];
  };
  for (const ObservationRecord& rec : log) {
    vote(rec.src_pseudo, rec.truth_src);
    vote(rec.dst_pseudo, rec.truth_dst);
  }
  std::vector<graph::NodeId> out(entities.num_entities,
                                 static_cast<graph::NodeId>(num_nodes));
  for (std::uint32_t e = 0; e < entities.num_entities; ++e) {
    std::uint64_t best = 0;
    for (const auto& [node, count] : votes[e]) {
      if (count > best) {  // map order breaks ties to the smaller id
        best = count;
        out[e] = node;
      }
    }
  }
  return out;
}

std::vector<NodeEdge> map_to_node_edges(
    const std::vector<ScoredEdge>& candidates,
    const std::vector<graph::NodeId>& truth_map, std::size_t num_nodes) {
  const auto unmapped = static_cast<graph::NodeId>(num_nodes);
  std::map<std::pair<graph::NodeId, graph::NodeId>, double> best;
  for (const ScoredEdge& edge : candidates) {
    if (edge.u >= truth_map.size() || edge.v >= truth_map.size()) continue;
    graph::NodeId a = truth_map[edge.u];
    graph::NodeId b = truth_map[edge.v];
    if (a == unmapped || b == unmapped || a == b) continue;
    if (b < a) std::swap(a, b);
    auto [it, inserted] = best.try_emplace({a, b}, edge.score);
    if (!inserted) it->second = std::max(it->second, edge.score);
  }
  std::vector<NodeEdge> out;
  out.reserve(best.size());
  for (const auto& [pair, score] : best)
    out.push_back({pair.first, pair.second, score});
  std::sort(out.begin(), out.end(), [](const NodeEdge& a, const NodeEdge& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  return out;
}

AttackMetrics score_edges(const std::vector<NodeEdge>& ranked,
                          const graph::Graph& trust) {
  AttackMetrics m;
  m.candidates = ranked.size();
  m.true_edges = trust.num_edges();
  if (m.true_edges == 0 || ranked.empty()) {
    m.auc = 0.5;
    return m;
  }

  const std::size_t k =
      std::min<std::size_t>(ranked.size(), static_cast<std::size_t>(m.true_edges));
  std::size_t hits_at_k = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (trust.has_edge(ranked[i].u, ranked[i].v)) ++hits_at_k;
  m.hits = hits_at_k;
  m.precision = double(hits_at_k) / double(k);
  m.recall = double(hits_at_k) / double(m.true_edges);

  // Rank AUC over the candidate list: probability a random true
  // candidate outranks a random false one, with average ranks for
  // score ties (ranked is score-descending, so rank from the back).
  std::size_t positives = 0;
  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < ranked.size()) {
    std::size_t j = i;
    while (j < ranked.size() && ranked[j].score == ranked[i].score) ++j;
    // Positions i..j-1 share ascending-rank values (n-j+1)..(n-i),
    // so each gets the average rank of the tie group.
    const double avg_rank =
        (double(ranked.size() - j + 1) + double(ranked.size() - i)) / 2.0;
    for (std::size_t t = i; t < j; ++t) {
      if (trust.has_edge(ranked[t].u, ranked[t].v)) {
        ++positives;
        positive_rank_sum += avg_rank;
      }
    }
    i = j;
  }
  const std::size_t negatives = ranked.size() - positives;
  if (positives == 0 || negatives == 0) {
    m.auc = 0.5;
  } else {
    m.auc = (positive_rank_sum - double(positives) * (positives + 1) / 2.0) /
            (double(positives) * double(negatives));
  }
  return m;
}

std::uint64_t edges_fingerprint(const std::vector<NodeEdge>& ranked) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, ranked.size());
  for (const NodeEdge& edge : ranked) {
    fnv_mix(h, edge.u);
    fnv_mix(h, edge.v);
    fnv_mix(h, double_bits(edge.score));
  }
  return h;
}

std::uint64_t log_fingerprint(const std::vector<ObservationRecord>& log) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, log.size());
  for (const ObservationRecord& rec : log) {
    fnv_mix(h, double_bits(rec.time));
    fnv_mix(h, rec.src_pseudo);
    fnv_mix(h, double_bits(rec.src_expiry));
    fnv_mix(h, rec.dst_pseudo);
    fnv_mix(h, double_bits(rec.dst_expiry));
    fnv_mix(h, rec.digest);
    fnv_mix(h, rec.is_response ? 1 : 0);
    fnv_mix(h, rec.truth_src);
    fnv_mix(h, rec.truth_dst);
  }
  return h;
}

}  // namespace ppo::inference
