// Trust-edge inference attacks run over a merged ObservationLog.
//
// The attacker's problem (PAPER.md §III): shuffle traffic exposes
// pseudonym-to-pseudonym exchanges, but pseudonyms rotate every
// `pseudonym_lifetime` seconds, so raw exchange pairs underestimate
// the persistent trust relationships behind them. The pipeline here
// mirrors the de-anonymisation literature (Mittal et al.,
// arXiv:1208.6189; Nguyen et al., arXiv:1609.01616):
//
//   1. Entity formation ("pseudonym-lifetime linking"): successive
//      pseudonyms of one node are chained by exploiting that a node
//      renews its own pseudonym at expiry — a successor first appears
//      right when its predecessor expires — plus link-set continuity
//      (the node keeps talking to roughly the same peers). Chains are
//      collapsed into entities via union-find.
//   2. Edge attacks score entity pairs as candidate trust edges:
//        - lifetime_linking_attack: direct exchange volume between
//          entities (trust neighbours exchange repeatedly).
//        - common_neighbor_attack: cosine overlap of entity
//          neighbourhoods — recovers edges even between pairs whose
//          own traffic was never observed.
//        - timing_correlation_attack: number of distinct coarse time
//          buckets in which the pair exchanged — persistent trust
//          links recur across the whole trace, while cache gossip
//          pairs are bursty.
//
// Everything is a pure deterministic function of the log and options:
// no RNG, no reads of the truth_* fields (those are for eval.hpp
// only), so attack outputs inherit the log's K-invariance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inference/observer.hpp"

namespace ppo::inference {

struct AttackOptions {
  /// Max gap between a pseudonym's expiry and its successor's first
  /// sighting for lifetime linking (seconds). Also scales the timing
  /// bonus.
  double link_window = 5.0;
  /// Minimum peer-set Jaccard+timing score to accept a successor link.
  double link_min_score = 0.05;
  /// Bucket width for the timing-correlation attack (seconds).
  double timing_bucket = 10.0;
};

/// Candidate trust edge between two entities, canonical u < v.
struct ScoredEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double score = 0.0;

  friend bool operator==(const ScoredEdge&, const ScoredEdge&) = default;
};

/// Activity profile of one observed pseudonym (aggregated over the
/// log), plus the entity it was assigned to by lifetime linking.
struct PseudonymProfile {
  PseudonymValue value = 0;
  double first_seen = 0.0;
  double last_seen = 0.0;
  double expiry = 0.0;  // max expiry advertised for this value
  std::uint64_t exchanges = 0;
  std::vector<PseudonymValue> peers;  // sorted, unique
  std::uint32_t entity = 0;
};

/// Output of entity formation: per-pseudonym profiles and the number
/// of entities (entity ids are dense in [0, num_entities)).
struct EntityMap {
  std::vector<PseudonymProfile> profiles;  // sorted by value
  std::uint32_t num_entities = 0;

  /// Entity id for a pseudonym value; num_entities when unseen.
  std::uint32_t entity_of(PseudonymValue value) const;
};

/// Stage 1: chain successive pseudonyms into entities.
EntityMap link_pseudonym_lifetimes(const std::vector<ObservationRecord>& log,
                                   const AttackOptions& options);

/// Stage 2 attacks. Each returns candidate edges sorted by
/// (score desc, u, v) — ready for precision@K evaluation.
std::vector<ScoredEdge> lifetime_linking_attack(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    const AttackOptions& options);
std::vector<ScoredEdge> common_neighbor_attack(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    const AttackOptions& options);
std::vector<ScoredEdge> timing_correlation_attack(
    const EntityMap& entities, const std::vector<ObservationRecord>& log,
    const AttackOptions& options);

/// Attack registry for sweeps: name -> function, stable order.
struct NamedAttack {
  const char* name;
  std::vector<ScoredEdge> (*run)(const EntityMap&,
                                 const std::vector<ObservationRecord>&,
                                 const AttackOptions&);
};
const std::vector<NamedAttack>& all_attacks();

}  // namespace ppo::inference
