// Group chat / micro-news on top of the overlay — one of the
// "high-level social applications" the paper positions above the
// overlay layer (§II): every post must eventually reach every member.
//
// Dissemination is two-tier:
//  - eager push: on first receipt a node forwards the post over all
//    its current overlay links (controlled flooding with duplicate
//    suppression) — fast paths for the online population;
//  - anti-entropy: each node periodically reconciles with one random
//    overlay peer using per-author version vectors — this is what
//    lets a member who was offline for hours catch up on rejoin.
//
// Payload privacy (end-to-end encryption among members, §II-C) is the
// application's concern and orthogonal to the mechanics simulated
// here; node identities appearing in this sim-level API are
// bookkeeping — on the wire a node only ever addresses its links.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "overlay/service.hpp"
#include "privacylink/transport.hpp"
#include "sim/simulator.hpp"

namespace ppo::apps {

using graph::NodeId;

struct GroupChatOptions {
  /// Periods between a node's anti-entropy exchanges.
  double anti_entropy_period = 2.0;
  /// Link latency model for application traffic.
  privacylink::TransportOptions transport;
};

/// One post: (author, seq) is its globally unique id.
struct Post {
  NodeId author = 0;
  std::uint32_t seq = 0;
  sim::Time published = 0.0;
  std::string text;
};

class GroupChat {
 public:
  GroupChat(sim::Simulator& sim, overlay::OverlayService& overlay,
            GroupChatOptions options, Rng rng);

  /// Starts the per-node anti-entropy timers.
  void start();

  /// Publishes a post authored by `author` (must be online). Returns
  /// the post id (author, seq).
  std::pair<NodeId, std::uint32_t> publish(NodeId author, std::string text);

  // --- inspection ---
  /// Number of posts `node` has stored.
  std::size_t posts_held(NodeId node) const;
  bool has_post(NodeId node, NodeId author, std::uint32_t seq) const;
  /// Fraction of ALL members holding post (author, seq).
  double replication(NodeId author, std::uint32_t seq) const;
  std::uint32_t published_count(NodeId author) const;

  /// Delivery latency samples (publish -> first receipt), gathered
  /// over all (post, member) deliveries so far.
  const RunningStats& delivery_latency() const { return delivery_latency_; }
  std::uint64_t messages_sent() const { return transport_.messages_sent(); }
  std::uint64_t anti_entropy_exchanges() const { return exchanges_; }

 private:
  struct AuthorLog {
    /// Posts by one author, keyed by seq.
    std::map<std::uint32_t, Post> posts;
    /// Highest seq such that all of 1..watermark are present.
    std::uint32_t watermark = 0;
  };
  struct MemberState {
    /// Sparse: only authors this member has posts from.
    std::map<NodeId, AuthorLog> by_author;
    std::size_t total = 0;
  };

  /// Grows the per-member state when the overlay gained members
  /// (dynamic membership): new members get state and an anti-entropy
  /// timer of their own.
  void sync_membership();

  bool store(NodeId node, const Post& post);
  void eager_push(NodeId from, const Post& post);
  void deliver(NodeId node, const Post& post);
  void anti_entropy_tick(NodeId node);
  /// Responds to a version-vector request: ships every post the
  /// requester is missing below our knowledge.
  void serve_missing(NodeId server, NodeId requester,
                     const std::vector<std::uint32_t>& requester_watermarks);

  sim::Simulator& sim_;
  overlay::OverlayService& overlay_;
  GroupChatOptions options_;
  Rng rng_;
  privacylink::Transport transport_;
  std::vector<MemberState> members_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<sim::PeriodicTask> timers_;
  RunningStats delivery_latency_;
  std::uint64_t exchanges_ = 0;
  bool started_ = false;
};

}  // namespace ppo::apps
