#include "apps/groupchat.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ppo::apps {

GroupChat::GroupChat(sim::Simulator& sim, overlay::OverlayService& overlay,
                     GroupChatOptions options, Rng rng)
    : sim_(sim),
      overlay_(overlay),
      options_(options),
      rng_(rng),
      transport_(sim, options.transport, rng_.split(),
                 [this](NodeId v) { return overlay_.is_online(v); }),
      members_(overlay.num_nodes()),
      next_seq_(overlay.num_nodes(), 0) {}

void GroupChat::start() {
  PPO_CHECK_MSG(!started_, "group chat already started");
  started_ = true;
  timers_.reserve(members_.size());
  for (NodeId v = 0; v < members_.size(); ++v) {
    const double phase =
        rng_.uniform_double(0.0, options_.anti_entropy_period);
    timers_.push_back(sim::PeriodicTask::start(
        sim_, phase, options_.anti_entropy_period,
        [this, v] { anti_entropy_tick(v); }));
  }
}

void GroupChat::sync_membership() {
  while (members_.size() < overlay_.num_nodes()) {
    const auto v = static_cast<NodeId>(members_.size());
    members_.emplace_back();
    next_seq_.push_back(0);
    if (started_) {
      const double phase =
          rng_.uniform_double(0.0, options_.anti_entropy_period);
      timers_.push_back(sim::PeriodicTask::start(
          sim_, phase, options_.anti_entropy_period,
          [this, v] { anti_entropy_tick(v); }));
    }
  }
}

std::pair<NodeId, std::uint32_t> GroupChat::publish(NodeId author,
                                                    std::string text) {
  sync_membership();
  PPO_CHECK_MSG(author < members_.size(), "author out of range");
  PPO_CHECK_MSG(overlay_.is_online(author), "author must be online");
  Post post;
  post.author = author;
  post.seq = ++next_seq_[author];
  post.published = sim_.now();
  post.text = std::move(text);
  store(author, post);
  eager_push(author, post);
  return {author, post.seq};
}

bool GroupChat::store(NodeId node, const Post& post) {
  AuthorLog& log = members_[node].by_author[post.author];
  if (!log.posts.emplace(post.seq, post).second) return false;
  ++members_[node].total;
  while (log.posts.count(log.watermark + 1) > 0) ++log.watermark;
  return true;
}

void GroupChat::deliver(NodeId node, const Post& post) {
  sync_membership();
  if (!store(node, post)) return;  // duplicate
  delivery_latency_.add(sim_.now() - post.published);
  eager_push(node, post);
}

void GroupChat::eager_push(NodeId from, const Post& post) {
  for (const NodeId peer : overlay_.current_peers(from)) {
    transport_.send(from, peer,
                    [this, peer, post] { deliver(peer, post); });
  }
}

void GroupChat::anti_entropy_tick(NodeId node) {
  sync_membership();
  if (!overlay_.is_online(node)) return;
  const auto peers = overlay_.current_peers(node);
  if (peers.empty()) return;
  const NodeId partner = peers[rng_.uniform_u64(peers.size())];

  // Ship our per-author watermarks; the partner responds with
  // everything above them that it knows.
  std::vector<std::uint32_t> watermarks(members_.size(), 0);
  for (const auto& [author, log] : members_[node].by_author)
    watermarks[author] = log.watermark;
  ++exchanges_;
  transport_.send(node, partner,
                  [this, partner, node, w = std::move(watermarks)] {
                    serve_missing(partner, node, w);
                  });
}

void GroupChat::serve_missing(
    NodeId server, NodeId requester,
    const std::vector<std::uint32_t>& requester_watermarks) {
  // Collect the missing posts in one response (a single link message
  // in a real deployment; delivered post-by-post here so each post's
  // first-receipt latency is tracked individually).
  std::vector<Post> missing;
  for (const auto& [author, log] : members_[server].by_author) {
    // A requester with an older membership view has no watermark for
    // recently-joined authors: everything by them is missing.
    const std::uint32_t watermark =
        author < requester_watermarks.size() ? requester_watermarks[author]
                                             : 0;
    for (auto it = log.posts.upper_bound(watermark); it != log.posts.end();
         ++it)
      missing.push_back(it->second);
  }
  if (missing.empty()) return;
  transport_.send(server, requester,
                  [this, requester, posts = std::move(missing)] {
                    for (const Post& post : posts) deliver(requester, post);
                  });
}

std::size_t GroupChat::posts_held(NodeId node) const {
  const_cast<GroupChat*>(this)->sync_membership();
  PPO_CHECK_MSG(node < members_.size(), "node out of range");
  return members_[node].total;
}

bool GroupChat::has_post(NodeId node, NodeId author,
                         std::uint32_t seq) const {
  PPO_CHECK_MSG(node < members_.size() && author < members_.size(),
                "node out of range");
  const auto it = members_[node].by_author.find(author);
  return it != members_[node].by_author.end() &&
         it->second.posts.count(seq) > 0;
}

double GroupChat::replication(NodeId author, std::uint32_t seq) const {
  std::size_t holders = 0;
  for (NodeId v = 0; v < members_.size(); ++v)
    holders += has_post(v, author, seq);
  return static_cast<double>(holders) / static_cast<double>(members_.size());
}

std::uint32_t GroupChat::published_count(NodeId author) const {
  PPO_CHECK_MSG(author < members_.size(), "author out of range");
  return next_seq_[author];
}

}  // namespace ppo::apps
