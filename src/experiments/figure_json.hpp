// JSON projections of the figure results, scale knobs and sweep
// telemetry — the payload of every bench's `--json <path>` flag and of
// the committed BENCH_*.json perf-baseline files.
//
// Schema (stable, versioned by kFigureJsonSchemaVersion in the bench
// envelope): series figures become {"alphas": [...], "series":
// [{"name": ..., "values": [...]}, ...]}; histograms become sorted
// {"value": n, "count": n} bins; telemetry always carries jobs, cells,
// wall_seconds and per-cell seconds.
#pragma once

#include "experiments/figures.hpp"
#include "runner/json.hpp"

namespace ppo::experiments {

/// v2: scale carries `shards`, and every figure payload reports
/// ProtocolHealth rollups (`health` arrays keyed by series name).
inline constexpr int kFigureJsonSchemaVersion = 2;

runner::Json to_json(const runner::SweepTelemetry& telemetry);
runner::Json to_json(const metrics::ProtocolHealth& health);
runner::Json to_json(const Series& series);
runner::Json to_json(const Histogram& histogram);
runner::Json to_json(const metrics::TimeSeries& series);
runner::Json to_json(const FigureScale& scale);
runner::Json to_json(const WorkbenchOptions& options);

runner::Json to_json(const SweepFigure& fig);
runner::Json to_json(const DegreeFigure& fig);
runner::Json to_json(const MessageFigure& fig);
runner::Json to_json(const ConvergenceFigure& fig);
runner::Json to_json(const ReplacementFigure& fig);
runner::Json to_json(const FaultFigure& fig);

}  // namespace ppo::experiments
