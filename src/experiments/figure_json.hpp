// JSON projections of the figure results, scale knobs and sweep
// telemetry — the payload of every bench's `--json <path>` flag and of
// the committed BENCH_*.json perf-baseline files.
//
// Schema (stable, versioned by kFigureJsonSchemaVersion in the bench
// envelope): series figures become {"alphas": [...], "series":
// [{"name": ..., "values": [...]}, ...]}; histograms become sorted
// {"value": n, "count": n} bins; telemetry always carries jobs, cells,
// wall_seconds and per-cell seconds.
#pragma once

#include "experiments/adversary_study.hpp"
#include "experiments/figures.hpp"
#include "experiments/link_privacy.hpp"
#include "obs/metrics_registry.hpp"
#include "runner/json.hpp"

namespace ppo::experiments {

/// v2: scale carries `shards`, and every figure payload reports
/// ProtocolHealth rollups (`health` arrays keyed by series name).
/// v3: scale carries `replicas`; the sweep figures report 95%
/// confidence half-widths (`connectivity_ci`/`napl_ci`/
/// `completion_ci`) and their replica count; the bench envelope can
/// carry a `metrics` registry block (counters/gauges/histograms).
/// v4: the `metrics` block gains a `streaming` section (log-bucketed
/// quantile summaries: count/mean/p50/p95/p99/p999/max) and the
/// `histograms` section reports the same summary shape; scale run
/// entries carry `events_per_second`/`events_per_second_per_core`
/// and profiled shard rows carry `busy_ratio`/`stall_ratio`; new
/// `service_mode` artefact (live-telemetry service runs).
inline constexpr int kFigureJsonSchemaVersion = 4;

runner::Json to_json(const runner::SweepTelemetry& telemetry);
runner::Json to_json(const metrics::ProtocolHealth& health);
runner::Json to_json(const Series& series);
runner::Json to_json(const Histogram& histogram);
runner::Json to_json(const metrics::TimeSeries& series);
runner::Json to_json(const FigureScale& scale);
runner::Json to_json(const WorkbenchOptions& options);

runner::Json to_json(const SweepFigure& fig);
runner::Json to_json(const DegreeFigure& fig);
runner::Json to_json(const MessageFigure& fig);
runner::Json to_json(const ConvergenceFigure& fig);
runner::Json to_json(const ReplacementFigure& fig);
runner::Json to_json(const FaultFigure& fig);
runner::Json to_json(const AdversaryFigure& fig);
runner::Json to_json(const LinkPrivacyFigure& fig);

/// Folds a ProtocolHealth rollup into `registry` as
/// `protocol_*`/`transport_*` counters plus rate gauges, all under
/// `dims` (e.g. {{"series", "overlay-f0.5"}}).
void add_health_metrics(obs::MetricsRegistry& registry,
                        const metrics::ProtocolHealth& health,
                        const obs::MetricDims& dims);

/// Registry snapshots scraped from a figure's health rollups, one
/// dimension per series — the `metrics` block of the bench envelope.
obs::MetricsRegistry collect_metrics(const SweepFigure& fig);
obs::MetricsRegistry collect_metrics(const FaultFigure& fig);
obs::MetricsRegistry collect_metrics(const AdversaryFigure& fig);
obs::MetricsRegistry collect_metrics(const LinkPrivacyFigure& fig);

}  // namespace ppo::experiments
