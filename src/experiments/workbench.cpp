#include "experiments/workbench.hpp"

#include "common/logging.hpp"
#include "graph/sampling.hpp"

namespace ppo::experiments {

Workbench::Workbench(WorkbenchOptions options)
    : options_(options), rng_(options.seed) {}

const graph::Graph& Workbench::base_graph() {
  std::lock_guard<std::mutex> lock(mu_);
  return base_graph_locked();
}

const graph::Graph& Workbench::base_graph_locked() {
  if (!base_) {
    PPO_LOG_INFO << "building synthetic social base graph ("
                 << options_.social.num_nodes << " nodes)";
    Rng rng = rng_.split();
    base_ = graph::synthetic_social_graph(options_.social, rng);
  }
  return *base_;
}

const graph::Graph& Workbench::trust_graph(double f) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = trust_.find(f);
  if (it != trust_.end()) return it->second;
  Rng rng(options_.seed ^ 0x5eedf00d ^
          static_cast<std::uint64_t>(f * 4096.0));
  graph::Graph sampled = graph::invitation_sample(
      base_graph_locked(), {.target_size = options_.trust_nodes, .f = f}, rng);
  PPO_LOG_INFO << "sampled trust graph f=" << f << ": "
               << sampled.num_nodes() << " nodes, " << sampled.num_edges()
               << " edges";
  return trust_.emplace(f, std::move(sampled)).first->second;
}

}  // namespace ppo::experiments
