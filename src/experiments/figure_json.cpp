#include "experiments/figure_json.hpp"

#include <cstdio>

namespace ppo::experiments {

using runner::Json;

Json to_json(const runner::SweepTelemetry& telemetry) {
  Json j = Json::object();
  j["cells"] = static_cast<std::uint64_t>(telemetry.cells);
  j["jobs"] = static_cast<std::uint64_t>(telemetry.jobs);
  j["wall_seconds"] = telemetry.wall_seconds;
  j["cell_seconds"] = Json::array_of(telemetry.cell_seconds);
  return j;
}

Json to_json(const metrics::ProtocolHealth& health) {
  Json j = Json::object();
  j["requests_sent"] = health.requests_sent;
  j["responses_sent"] = health.responses_sent;
  j["exchanges_completed"] = health.exchanges_completed;
  j["request_timeouts"] = health.request_timeouts;
  j["request_retries"] = health.request_retries;
  j["exchanges_aborted"] = health.exchanges_aborted;
  j["stale_responses"] = health.stale_responses;
  j["messages_sent"] = health.messages_sent;
  j["messages_delivered"] = health.messages_delivered;
  j["messages_dropped"] = health.messages_dropped;
  j["forged_rejected"] = health.forged_rejected;
  j["requests_rate_limited"] = health.requests_rate_limited;
  j["displacements_damped"] = health.displacements_damped;
  j["forged_injected"] = health.forged_injected;
  j["replays_injected"] = health.replays_injected;
  j["eclipse_records_injected"] = health.eclipse_records_injected;
  j["responses_suppressed"] = health.responses_suppressed;
  j["slots_eclipsed"] = health.slots_eclipsed;
  j["honest_requests_sent"] = health.honest_requests_sent;
  j["honest_request_retries"] = health.honest_request_retries;
  j["honest_exchanges_completed"] = health.honest_exchanges_completed;
  j["honest_completion_rate"] = health.honest_completion_rate();
  j["completion_rate"] = health.completion_rate();
  j["delivery_rate"] = health.delivery_rate();
  return j;
}

Json to_json(const Series& series) {
  Json j = Json::object();
  j["name"] = series.name;
  j["values"] = Json::array_of(series.values);
  return j;
}

Json to_json(const Histogram& histogram) {
  Json bins = Json::array();
  for (const auto& [value, count] : histogram.bins()) {
    Json bin = Json::object();
    bin["value"] = static_cast<std::uint64_t>(value);
    bin["count"] = static_cast<std::uint64_t>(count);
    bins.push_back(std::move(bin));
  }
  Json j = Json::object();
  j["total"] = static_cast<std::uint64_t>(histogram.total());
  j["bins"] = std::move(bins);
  return j;
}

Json to_json(const metrics::TimeSeries& series) {
  Json j = Json::object();
  j["name"] = series.name();
  j["times"] = Json::array_of(series.times());
  j["values"] = Json::array_of(series.values());
  return j;
}

Json to_json(const FigureScale& scale) {
  Json j = Json::object();
  j["warmup"] = scale.window.warmup;
  j["measure"] = scale.window.measure;
  j["sample_every"] = scale.window.sample_every;
  j["apl_sources"] = static_cast<std::uint64_t>(scale.window.apl_sources);
  j["alphas"] = Json::array_of(scale.alphas);
  j["seed"] = scale.seed;
  j["jobs"] = static_cast<std::uint64_t>(scale.jobs);
  j["shards"] = static_cast<std::uint64_t>(scale.shards);
  j["replicas"] = static_cast<std::uint64_t>(scale.replicas);
  j["warm_start"] = !scale.warm_start_dir.empty();
  return j;
}

Json to_json(const WorkbenchOptions& options) {
  Json j = Json::object();
  j["seed"] = options.seed;
  j["base_nodes"] = static_cast<std::uint64_t>(options.social.num_nodes);
  j["trust_nodes"] = static_cast<std::uint64_t>(options.trust_nodes);
  return j;
}

namespace {

Json series_block(const std::vector<Series>& series) {
  Json arr = Json::array();
  for (const Series& s : series) arr.push_back(to_json(s));
  return arr;
}

/// Health rollups keyed by the matching series' name.
Json health_block(const std::vector<metrics::ProtocolHealth>& health,
                  const std::vector<Series>& names) {
  Json arr = Json::array();
  for (std::size_t i = 0; i < health.size(); ++i) {
    Json h = to_json(health[i]);
    h["name"] = names[i].name;
    arr.push_back(std::move(h));
  }
  return arr;
}

Json named_health(const metrics::ProtocolHealth& health, const char* name) {
  Json h = to_json(health);
  h["name"] = name;
  return h;
}

}  // namespace

Json to_json(const SweepFigure& fig) {
  Json j = Json::object();
  j["alphas"] = Json::array_of(fig.alphas);
  j["replicas"] = static_cast<std::uint64_t>(fig.replicas);
  j["connectivity"] = series_block(fig.connectivity);
  j["napl"] = series_block(fig.napl);
  j["connectivity_ci"] = series_block(fig.connectivity_ci);
  j["napl_ci"] = series_block(fig.napl_ci);
  j["health"] = health_block(fig.health, fig.connectivity);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

Json to_json(const DegreeFigure& fig) {
  Json entries = Json::array();
  for (const auto& entry : fig.entries) {
    Json e = Json::object();
    e["f"] = entry.f;
    e["trust"] = to_json(entry.trust);
    e["overlay"] = to_json(entry.overlay);
    e["random"] = to_json(entry.random);
    e["health"] = to_json(entry.health);
    entries.push_back(std::move(e));
  }
  Json j = Json::object();
  j["entries"] = std::move(entries);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

Json to_json(const MessageFigure& fig) {
  Json entries = Json::array();
  for (const auto& entry : fig.entries) {
    Json rows = Json::array();
    for (const auto& row : entry.rows) {
      Json r = Json::object();
      r["rank"] = static_cast<std::uint64_t>(row.rank);
      r["trust_degree"] = static_cast<std::uint64_t>(row.trust_degree);
      r["max_out_degree"] = static_cast<std::uint64_t>(row.max_out_degree);
      r["messages_per_period"] = row.messages_per_period;
      rows.push_back(std::move(r));
    }
    Json e = Json::object();
    e["f"] = entry.f;
    e["mean_messages"] = entry.mean_messages;
    e["health"] = to_json(entry.health);
    e["rows"] = std::move(rows);
    entries.push_back(std::move(e));
  }
  Json j = Json::object();
  j["entries"] = std::move(entries);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

Json to_json(const ConvergenceFigure& fig) {
  Json series = Json::array();
  series.push_back(to_json(fig.trust));
  series.push_back(to_json(fig.overlay_r3));
  series.push_back(to_json(fig.overlay_r9));
  Json health = Json::array();
  health.push_back(named_health(fig.health_r3, "overlay-r3"));
  health.push_back(named_health(fig.health_r9, "overlay-r9"));
  Json j = Json::object();
  j["series"] = std::move(series);
  j["health"] = std::move(health);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

Json to_json(const ReplacementFigure& fig) {
  Json series = Json::array();
  series.push_back(to_json(fig.r3));
  series.push_back(to_json(fig.r9));
  series.push_back(to_json(fig.r_infinite));
  Json health = Json::array();
  health.push_back(named_health(fig.health_r3, "r3"));
  health.push_back(named_health(fig.health_r9, "r9"));
  health.push_back(named_health(fig.health_r_infinite, "r-infinite"));
  Json j = Json::object();
  j["series"] = std::move(series);
  j["health"] = std::move(health);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

Json to_json(const FaultFigure& fig) {
  Json j = Json::object();
  j["alphas"] = Json::array_of(fig.alphas);
  j["replicas"] = static_cast<std::uint64_t>(fig.replicas);
  j["connectivity"] = series_block(fig.connectivity);
  j["napl"] = series_block(fig.napl);
  j["completion"] = series_block(fig.completion);
  j["connectivity_ci"] = series_block(fig.connectivity_ci);
  j["napl_ci"] = series_block(fig.napl_ci);
  j["completion_ci"] = series_block(fig.completion_ci);
  j["health"] = health_block(fig.health, fig.connectivity);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

Json to_json(const AdversaryFigure& fig) {
  Json j = Json::object();
  j["fractions"] = Json::array_of(fig.fractions);
  j["replicas"] = static_cast<std::uint64_t>(fig.replicas);
  j["zero_adversary_identical"] = fig.zero_adversary_identical;
  j["connectivity"] = series_block(fig.connectivity);
  j["completion"] = series_block(fig.completion);
  j["connectivity_ci"] = series_block(fig.connectivity_ci);
  j["completion_ci"] = series_block(fig.completion_ci);
  j["health"] = health_block(fig.health, fig.connectivity);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

void add_health_metrics(obs::MetricsRegistry& registry,
                        const metrics::ProtocolHealth& health,
                        const obs::MetricDims& dims) {
  registry.add_counter("protocol_requests_sent", health.requests_sent, dims);
  registry.add_counter("protocol_responses_sent", health.responses_sent, dims);
  registry.add_counter("protocol_exchanges_completed",
                       health.exchanges_completed, dims);
  registry.add_counter("protocol_request_timeouts", health.request_timeouts,
                       dims);
  registry.add_counter("protocol_request_retries", health.request_retries,
                       dims);
  registry.add_counter("protocol_exchanges_aborted", health.exchanges_aborted,
                       dims);
  registry.add_counter("protocol_stale_responses", health.stale_responses,
                       dims);
  registry.add_counter("transport_messages_sent", health.messages_sent, dims);
  registry.add_counter("transport_messages_delivered",
                       health.messages_delivered, dims);
  registry.add_counter("transport_messages_dropped", health.messages_dropped,
                       dims);
  registry.add_counter("defense_forged_rejected", health.forged_rejected,
                       dims);
  registry.add_counter("defense_requests_rate_limited",
                       health.requests_rate_limited, dims);
  registry.add_counter("defense_displacements_damped",
                       health.displacements_damped, dims);
  registry.add_counter("attack_forged_injected", health.forged_injected, dims);
  registry.add_counter("attack_replays_injected", health.replays_injected,
                       dims);
  registry.add_counter("attack_eclipse_records_injected",
                       health.eclipse_records_injected, dims);
  registry.add_counter("attack_responses_suppressed",
                       health.responses_suppressed, dims);
  registry.add_counter("attack_slots_eclipsed", health.slots_eclipsed, dims);
  registry.add_counter("protocol_honest_requests_sent",
                       health.honest_requests_sent, dims);
  registry.add_counter("protocol_honest_exchanges_completed",
                       health.honest_exchanges_completed, dims);
  registry.set_gauge("protocol_honest_completion_rate",
                     health.honest_completion_rate(), dims);
  registry.set_gauge("protocol_completion_rate", health.completion_rate(),
                     dims);
  registry.set_gauge("transport_delivery_rate", health.delivery_rate(), dims);
}

namespace {

obs::MetricsRegistry health_registry(
    const std::vector<metrics::ProtocolHealth>& health,
    const std::vector<Series>& names) {
  obs::MetricsRegistry registry;
  for (std::size_t i = 0; i < health.size(); ++i)
    add_health_metrics(registry, health[i], {{"series", names[i].name}});
  return registry;
}

}  // namespace

obs::MetricsRegistry collect_metrics(const SweepFigure& fig) {
  return health_registry(fig.health, fig.connectivity);
}

obs::MetricsRegistry collect_metrics(const FaultFigure& fig) {
  return health_registry(fig.health, fig.connectivity);
}

obs::MetricsRegistry collect_metrics(const AdversaryFigure& fig) {
  return health_registry(fig.health, fig.connectivity);
}

Json to_json(const LinkPrivacyFigure& fig) {
  Json j = Json::object();
  j["lifetimes"] = Json::array_of(fig.lifetimes);
  j["coverages"] = Json::array_of(fig.coverages);
  Json attacks = Json::array();
  for (const std::string& name : fig.attacks) attacks.push_back(name);
  j["attacks"] = std::move(attacks);
  j["replicas"] = static_cast<std::uint64_t>(fig.replicas);
  j["true_edges"] = fig.true_edges;
  j["zero_observer_identical"] = fig.zero_observer_identical;
  j["kinvariant"] = fig.kinvariant;
  Json fingerprints = Json::array();
  for (const ShardFingerprint& fp : fig.shard_fingerprints) {
    Json entry = Json::object();
    entry["shards"] = static_cast<std::uint64_t>(fp.shards);
    entry["log_fingerprint"] = fp.log;
    Json attack_fps = Json::array();
    for (const std::uint64_t value : fp.attacks) attack_fps.push_back(value);
    entry["attack_fingerprints"] = std::move(attack_fps);
    fingerprints.push_back(std::move(entry));
  }
  j["shard_fingerprints"] = std::move(fingerprints);
  Json cells = Json::array();
  for (const LinkPrivacyCell& cell : fig.cells) {
    Json entry = Json::object();
    entry["lifetime"] = cell.lifetime;
    entry["coverage"] = cell.coverage;
    entry["attack"] = cell.attack;
    entry["defended"] = cell.defended;
    entry["precision"] = cell.precision;
    entry["recall"] = cell.recall;
    entry["auc"] = cell.auc;
    entry["precision_ci"] = cell.precision_ci;
    entry["recall_ci"] = cell.recall_ci;
    entry["auc_ci"] = cell.auc_ci;
    entry["observations"] = cell.observations;
    entry["entities"] = cell.entities;
    cells.push_back(std::move(entry));
  }
  j["cells"] = std::move(cells);
  j["telemetry"] = to_json(fig.telemetry);
  return j;
}

obs::MetricsRegistry collect_metrics(const LinkPrivacyFigure& fig) {
  obs::MetricsRegistry registry;
  const auto compact = [](double x) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", x);
    return std::string(buf);
  };
  for (const LinkPrivacyCell& cell : fig.cells) {
    const obs::MetricDims dims = {
        {"attack", cell.attack},
        {"cell", "L" + compact(cell.lifetime) + "-c" +
                     compact(cell.coverage) +
                     (cell.defended ? "-defended" : "-open")}};
    registry.set_gauge("inference_precision", cell.precision, dims);
    registry.set_gauge("inference_recall", cell.recall, dims);
    registry.set_gauge("inference_auc", cell.auc, dims);
    registry.set_gauge("inference_observations", cell.observations, dims);
  }
  return registry;
}

}  // namespace ppo::experiments
