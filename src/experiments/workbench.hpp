// Shared experiment fixtures: the synthetic social base graph (the
// Facebook-crawl substitute, see DESIGN.md §2) and invitation-model
// trust graphs sampled from it, cached per f value so a bench sweeping
// many scenarios builds each graph once — mirroring the paper, which
// samples its trust graphs once and reuses them.
//
// Thread-safe: the figure sweeps run their cells on a ppo_runner
// thread pool, and every cell resolves its trust graph through this
// cache. Construction is serialized under a mutex; the returned
// references stay valid for the Workbench's lifetime (std::map nodes
// are stable).
#pragma once

#include <map>
#include <mutex>
#include <optional>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/socialgen.hpp"

namespace ppo::experiments {

struct WorkbenchOptions {
  std::uint64_t seed = 42;
  graph::SocialGraphOptions social;  // base-graph shape
  std::size_t trust_nodes = 1000;    // Table I default
};

class Workbench {
 public:
  explicit Workbench(WorkbenchOptions options = {});

  const WorkbenchOptions& options() const { return options_; }

  /// The synthetic social base graph (built on first use).
  const graph::Graph& base_graph();

  /// The 1000-node (by default) trust graph sampled with parameter f.
  /// Cached: repeated calls with the same f return the same graph.
  const graph::Graph& trust_graph(double f);

 private:
  const graph::Graph& base_graph_locked();

  WorkbenchOptions options_;
  Rng rng_;
  std::mutex mu_;
  std::optional<graph::Graph> base_;
  std::map<double, graph::Graph> trust_;
};

}  // namespace ppo::experiments
