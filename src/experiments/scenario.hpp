// Scenario runners: a full overlay-protocol simulation under churn,
// the static baselines (trust graph alone, Erdős–Rényi reference)
// under the same churn, and time-series variants for the convergence
// and overhead figures.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adversary/plan.hpp"
#include "churn/churn_model.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "graph/graph.hpp"
#include "inference/observer.hpp"
#include "metrics/overlay_metrics.hpp"
#include "metrics/protocol_health.hpp"
#include "metrics/timeseries.hpp"
#include "overlay/params.hpp"

namespace ppo::experiments {

/// Churn configuration shared by all runners. The paper fixes
/// Toff = 30 shuffling periods and varies Ton to hit alpha (§IV-D).
struct ChurnSpec {
  double alpha = 0.5;
  double mean_offline = 30.0;
  bool pareto = false;        // churn-model ablation
  double pareto_shape = 3.0;

  std::unique_ptr<churn::ChurnModel> make() const;
};

/// Common timing for steady-state measurements.
struct MeasureWindow {
  double warmup = 300.0;       // periods before the first sample; the
                               // overlay stabilizes after ~200 (Fig. 8)
  double measure = 50.0;       // length of the measurement window
  double sample_every = 10.0;  // snapshot cadence inside the window
  std::size_t apl_sources = 48;
};

struct OverlayScenario {
  overlay::OverlayParams params;  // Table I defaults
  ChurnSpec churn;
  MeasureWindow window;
  std::uint64_t seed = 1;

  /// Fault-injection extension: per-message/link adversities applied
  /// to the transport (absent or inert = bit-identical to a fault-free
  /// run) and scheduled service-level outages.
  std::optional<fault::FaultPlan> faults;
  fault::ServiceFaults service_faults;

  /// Byzantine-adversary extension (§III-E): seeded attacker roles
  /// driven through the overlay service on either backend. Absent or
  /// zero-fraction = bit-identical to an adversary-free run.
  std::optional<adversary::AdversaryPlan> adversary;

  /// Link-privacy extension (§III): a passive observer recording
  /// shuffle traffic at the send seams. Read-only — never perturbs
  /// the trajectory; absent or zero-coverage = bit-identical to no
  /// observer.
  std::optional<inference::ObserverPlan> observer;

  /// Simulation backend. 0 = the legacy serial Simulator (bit-exact
  /// with every earlier release). K >= 1 = the sharded core with K
  /// shard workers; trajectories are identical for every K but differ
  /// from the serial backend (different tie-break discipline). K > 0
  /// requires an enabled fault plan to set per_link_streams;
  /// node_crashes and pseudonym_blackouts in service_faults are
  /// supported (blackouts become data windows), relay_crashes are not
  /// (the scenario layer has no mix mode).
  std::size_t shards = 0;

  /// Warm-start forking (DESIGN.md §13): when set, run_overlay caches
  /// the post-warmup simulator state in this directory as a checkpoint
  /// keyed by the cell's full identity (graph fingerprint, seed,
  /// backend, churn, params, fault/adversary/observer plans, warmup
  /// length). A rerun of the same cell restores the snapshot instead
  /// of re-simulating the warmup — bit-identical to the cold run, as
  /// the checkpoint tests pin down. Ignored (silent cold run) for
  /// configurations outside the checkpoint scope: scheduled service
  /// faults, node-crash bursts, or a fault plan with multi-stage
  /// deliveries (jitter/reorder).
  std::string warm_start_dir;
};

/// Aggregates of snapshot metrics over the measurement window.
struct SnapshotStats {
  RunningStats frac_disconnected;
  RunningStats norm_apl;
  RunningStats online_fraction;
  RunningStats online_edges;
  RunningStats total_edges;  // snapshot edges including offline nodes
};

struct OverlayRunResult {
  SnapshotStats stats;
  /// Degree distribution over online nodes at the final sample.
  Histogram final_degree;
  std::size_t final_total_edges = 0;

  /// Per-node accounting for Figure 6.
  struct PerNode {
    std::size_t trust_degree = 0;
    std::size_t max_out_degree = 0;
    double messages_per_online_period = 0.0;
  };
  std::vector<PerNode> per_node;

  /// Final protocol-wide replacement counters.
  std::uint64_t replacements = 0;
  std::uint64_t messages_total = 0;

  /// Protocol + transport degradation rollup (see ProtocolHealth).
  metrics::ProtocolHealth health;

  /// Merged observation log (empty unless scenario.observer enabled).
  std::vector<inference::ObservationRecord> observations;

  /// Warm-start accounting: whether the warmup phase was restored
  /// from a cached snapshot, and the wall seconds the warmup phase
  /// cost (simulation when cold, load + restore when warm).
  bool warm_started = false;
  double warmup_wall_seconds = 0.0;
};

/// Runs the overlay-maintenance protocol on `trust` under churn and
/// measures the resulting overlay.
OverlayRunResult run_overlay(const graph::Graph& trust,
                             const OverlayScenario& scenario);

/// Process-wide warm-start accounting, summed over every
/// warm-start-armed run_overlay call since the last reset (sweep
/// cells included — updates are atomic, reads are consistent only at
/// a sweep barrier). The figure benches put this in the --json report
/// envelope so tools/bench_diff's history ledger can track warm-start
/// speedup per commit.
struct WarmStartStats {
  std::uint64_t warm_runs = 0;  // runs forked from a cached snapshot
  std::uint64_t cold_runs = 0;  // armed runs that simulated the warmup
  double warm_seconds = 0.0;    // wall spent loading + restoring
  double cold_seconds = 0.0;    // wall spent simulating warmups cold
};
WarmStartStats warm_start_stats();
void reset_warm_start_stats();

/// Measures a FIXED graph (trust-only baseline or ER reference) under
/// the same churn process — no protocol, just availability masking.
struct StaticRunResult {
  SnapshotStats stats;
  Histogram final_degree;
};
StaticRunResult run_static(const graph::Graph& g, const ChurnSpec& churn,
                           const MeasureWindow& window, std::uint64_t seed);

/// Time-series runners for Figures 8 and 9.
struct OverlayTraceSpec {
  double horizon = 1000.0;
  double sample_every = 10.0;
  std::size_t apl_sources = 32;
  bool track_connectivity = true;
  bool track_replacements = false;
};
struct OverlayTrace {
  metrics::TimeSeries connectivity{"connectivity"};
  /// Links replaced per ONLINE node per shuffling period within each
  /// sampling interval (expiry refills + better-pseudonym swaps).
  metrics::TimeSeries replacements{"replacements"};
  /// Protocol + transport degradation rollup at the horizon.
  metrics::ProtocolHealth health;
};
OverlayTrace run_overlay_trace(const graph::Graph& trust,
                               OverlayScenario scenario,
                               const OverlayTraceSpec& spec);

/// Connectivity-over-time of a static graph under churn (trust-graph
/// line of Figure 8).
metrics::TimeSeries run_static_trace(const graph::Graph& g,
                                     const ChurnSpec& churn, double horizon,
                                     double sample_every, std::uint64_t seed);

/// Erdős–Rényi reference with the same node count and a given edge
/// budget (matched to the overlay's measured size).
graph::Graph er_reference(std::size_t nodes, std::size_t edges,
                          std::uint64_t seed);

}  // namespace ppo::experiments
