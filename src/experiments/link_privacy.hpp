// Link-privacy study (§III): how much of the hidden trust graph a
// passive observer reconstructs from shuffle traffic, swept over
// pseudonym lifetime × observer coverage, with the PR 5 protocol
// defenses off and on. The privacy axis to set against the adversary
// study's robustness axis: precision/recall/AUC of the inference
// attacks in src/inference against the ground-truth trust graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/figures.hpp"
#include "inference/attacks.hpp"
#include "inference/eval.hpp"

namespace ppo::experiments {

struct LinkPrivacySpec {
  /// Pseudonym lifetimes to sweep (shuffle periods == seconds). The
  /// paper's privacy argument predicts shorter lifetimes fragment the
  /// attacker's view and lower reconstruction precision.
  std::vector<double> lifetimes = {10.0, 30.0, 90.0};
  /// Observer coverages to sweep; 1.0 is the global passive observer.
  std::vector<double> coverages = {0.25, 1.0};
  /// Availability during the sweep (high, so the log reflects the
  /// protocol rather than churn gaps).
  double alpha = 0.9;

  /// Defended-arm knobs (the PR 5 defenses; see adversary_study.hpp
  /// for the rate-cap rationale).
  std::size_t peer_rate_limit = 8;
  double peer_rate_window = 10.0;
  bool defended_arm = true;

  inference::AttackOptions attack_options;

  /// Shard counts for the inference K-invariance cross-check (run at
  /// one representative cell; 1 is the reference).
  std::vector<std::size_t> kinvariance_shards = {1, 2, 4};
};

/// One aggregated sweep cell: an attack's quality at a
/// (lifetime, coverage, arm) point, averaged over replicas.
struct LinkPrivacyCell {
  double lifetime = 0.0;
  double coverage = 0.0;
  std::string attack;
  bool defended = false;
  double precision = 0.0;
  double recall = 0.0;
  double auc = 0.0;
  double precision_ci = 0.0;  // 95% half-widths; 0 when replicas == 1
  double recall_ci = 0.0;
  double auc_ci = 0.0;
  double observations = 0.0;  // mean log size per run
  double entities = 0.0;      // mean inferred entity count per run
};

/// Per-shard-count fingerprints of the representative cell's
/// observation log and of each attack's ranked candidate list.
struct ShardFingerprint {
  std::size_t shards = 0;
  std::uint64_t log = 0;
  std::vector<std::uint64_t> attacks;  // all_attacks() order
};

struct LinkPrivacyFigure {
  std::vector<double> lifetimes;
  std::vector<double> coverages;
  std::vector<std::string> attacks;  // names, all_attacks() order
  std::vector<LinkPrivacyCell> cells;
  std::size_t replicas = 1;
  /// Cross-check: a zero-coverage observer plan yielded a run
  /// bit-identical to a plan-free run (and recorded nothing).
  bool zero_observer_identical = false;
  /// Cross-check: observation log and every attack output carry the
  /// same fingerprint for every shard count in the spec.
  bool kinvariant = false;
  std::vector<ShardFingerprint> shard_fingerprints;
  std::uint64_t true_edges = 0;  // |E| of the ground-truth trust graph
  runner::SweepTelemetry telemetry;
};

LinkPrivacyFigure link_privacy_sweep(Workbench& bench,
                                     const FigureScale& scale,
                                     const LinkPrivacySpec& spec = {});

}  // namespace ppo::experiments
