#include "experiments/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>

#include "churn/churn_driver.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/check.hpp"
#include "fault/fault_stream.hpp"
#include "graph/components.hpp"
#include "graph/csr.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "metrics/streaming_connectivity.hpp"
#include "overlay/service.hpp"
#include "overlay/sharded_service.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"

namespace ppo::experiments {

std::unique_ptr<churn::ChurnModel> ChurnSpec::make() const {
  PPO_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
  if (pareto) {
    PPO_CHECK_MSG(alpha < 1.0, "pareto churn needs alpha < 1");
    return std::make_unique<churn::ParetoChurn>(
        churn::ParetoChurn::from_availability(pareto_shape, alpha,
                                              mean_offline));
  }
  return std::make_unique<churn::ExponentialChurn>(
      churn::ExponentialChurn::from_availability(alpha, mean_offline));
}

namespace {

void accumulate(SnapshotStats& stats, const metrics::GraphMetrics& m,
                std::size_t total_nodes, std::size_t total_edges) {
  stats.frac_disconnected.add(m.fraction_disconnected);
  stats.norm_apl.add(m.normalized_avg_path_length);
  stats.online_fraction.add(static_cast<double>(m.online_nodes) /
                            static_cast<double>(total_nodes));
  stats.online_edges.add(static_cast<double>(m.online_edges));
  stats.total_edges.add(static_cast<double>(total_edges));
}

/// Node-crash bursts materialized from the scenario's fault plan (the
/// same victims on every backend — the stream is seed-derived).
std::vector<fault::NodeCrashEvent> crash_events(
    const OverlayScenario& scenario, std::size_t n) {
  if (!scenario.faults || !scenario.faults->has_node_crashes()) return {};
  return fault::materialize_node_crashes(*scenario.faults, n);
}

/// Wires a service's churn driver into the injector's node-crash
/// hooks.
template <typename Service>
void wire_node_crash_hooks(fault::FaultInjector::Hooks& hooks,
                           Service& service) {
  hooks.fail_node = [&service](graph::NodeId v) {
    service.churn_driver().fail_permanently(v);
  };
  hooks.revive_node = [&service](graph::NodeId v) {
    service.churn_driver().revive(v);
  };
}

/// Builds and arms the fault injector for the serial backend:
/// service-level outages plus node-crash bursts from the plan.
/// Returns nullptr when there is nothing to schedule.
std::unique_ptr<fault::FaultInjector> arm_service_faults(
    sim::Simulator& sim, overlay::OverlayService& service,
    const OverlayScenario& scenario) {
  std::vector<fault::NodeCrashEvent> crashes =
      crash_events(scenario, service.num_nodes());
  if (scenario.service_faults.empty() && crashes.empty()) return nullptr;
  fault::FaultInjector::Hooks hooks;
  hooks.set_pseudonym_service_available = [&service](bool available) {
    service.set_pseudonym_service_available(available);
  };
  hooks.mix = service.mutable_mix_network();
  if (!crashes.empty()) wire_node_crash_hooks(hooks, service);
  auto injector = std::make_unique<fault::FaultInjector>(
      sim, scenario.service_faults, std::move(hooks), std::move(crashes));
  injector->arm();
  return injector;
}

/// Sharded counterpart: per-victim node crashes are schedulable
/// events; pseudonym blackouts are installed as data windows the
/// service's resolve() consults (no owning actor needed). Relay
/// crashes stay serial-only here — the scenario layer has no mix
/// mode.
std::unique_ptr<fault::FaultInjector> arm_sharded_faults(
    sim::ShardedSimulator& sim, overlay::ShardedOverlayService& service,
    const OverlayScenario& scenario) {
  PPO_CHECK_MSG(scenario.service_faults.relay_crashes.empty(),
                "relay-crash schedules are serial-backend only");
  service.set_pseudonym_blackout_windows(
      scenario.service_faults.pseudonym_blackouts);
  std::vector<fault::NodeCrashEvent> crashes =
      crash_events(scenario, service.num_nodes());
  if (crashes.empty()) return nullptr;
  fault::FaultInjector::Hooks hooks;
  wire_node_crash_hooks(hooks, service);
  auto injector = std::make_unique<fault::FaultInjector>(
      sim, fault::ServiceFaults{}, std::move(hooks), std::move(crashes));
  injector->arm();
  return injector;
}

sim::ShardedSimulator::Options sharded_options(
    const OverlayScenario& scenario,
    const overlay::OverlayServiceOptions& options, std::size_t n) {
  sim::ShardedSimulator::Options so;
  so.shards = scenario.shards;
  so.num_actors = n;
  so.lookahead = options.use_mix_network ? options.mix.min_hop_latency
                                         : options.transport.min_latency;
  return so;
}

/// The steady-state measurement loop, shared verbatim between the
/// serial and sharded backends. `run_until(t)` advances the backend's
/// clock to t; the local `now` bookkeeping reproduces the serial
/// loop's time sequence bit-exactly.
///
/// Snapshot-free: each sample pulls the service's memoized overlay
/// edge list and rebuilds one reused CSR scratch graph in place — no
/// per-sample Graph materialization (the old path allocated one
/// adjacency vector per node per sample). Neighbor slices stay in
/// counting-sort order; measure_graph never probes edge membership,
/// and every metric it computes is a function of the edge SET alone,
/// so the values are bit-identical to the snapshot path.
template <typename Service, typename RunUntilFn>
OverlayRunResult measure_overlay(Service& service, RunUntilFn run_until,
                                 const OverlayScenario& scenario,
                                 std::size_t n) {
  Rng metric_rng(scenario.seed ^ 0xA11CE5);
  OverlayRunResult result;

  run_until(scenario.window.warmup);
  double now = scenario.window.warmup;
  const double end = scenario.window.warmup + scenario.window.measure;
  graph::CsrGraph scratch;
  while (true) {
    scratch.assign_from_edges(n, service.overlay_edges(),
                              /*sort_neighbors=*/false);
    const auto m =
        metrics::measure_graph(scratch, service.online_mask(), n, metric_rng,
                               scenario.window.apl_sources);
    accumulate(result.stats, m, n, scratch.num_edges());
    if (now + scenario.window.sample_every > end + 1e-9) break;
    now += scenario.window.sample_every;
    run_until(now);
  }

  // Final-sample artifacts (scratch still holds the last sample).
  result.final_degree =
      graph::degree_histogram(scratch, service.online_mask());
  result.final_total_edges = scratch.num_edges();

  result.per_node.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto& node = service.node(v);
    const auto& c = node.counters();
    OverlayRunResult::PerNode pn;
    pn.trust_degree = node.trust_degree();
    pn.max_out_degree = c.max_out_degree;
    pn.messages_per_online_period =
        c.online_ticks == 0 ? 0.0
                            : static_cast<double>(c.messages_sent()) /
                                  static_cast<double>(c.online_ticks);
    result.per_node.push_back(pn);
  }
  result.replacements = service.total_replacements().replacements();
  result.messages_total = service.total_counters().messages_sent();
  result.health = service.protocol_health();
  if (service.observer() != nullptr)
    result.observations = service.observer()->merged();
  return result;
}

/// Time-series loop shared between the backends (Figures 8 and 9).
/// Connectivity tracking streams the memoized overlay edge list
/// through a union-find instead of snapshotting a Graph and running
/// the full metric suite: the trace records only
/// fraction_disconnected, which is a pure function of the edge set,
/// so the recorded series is bit-identical to the old path. (The old
/// loop also burned a metric RNG on a path-length estimate it threw
/// away; dropping it changes no recorded value.)
template <typename Service, typename RunUntilFn>
OverlayTrace measure_overlay_trace(Service& service, RunUntilFn run_until,
                                   const OverlayTraceSpec& spec,
                                   std::size_t n) {
  OverlayTrace trace;
  metrics::StreamingConnectivity connectivity;

  std::uint64_t last_replacements = 0;
  double last_time = 0.0;
  for (double t = spec.sample_every; t <= spec.horizon + 1e-9;
       t += spec.sample_every) {
    run_until(t);
    if (spec.track_connectivity) {
      trace.connectivity.record(
          t, connectivity.fraction_disconnected(n, service.overlay_edges(),
                                                service.online_mask()));
    }
    if (spec.track_replacements) {
      const std::uint64_t now_total =
          service.total_replacements().replacements();
      const double dt = t - last_time;
      const double online =
          std::max<std::size_t>(1, service.online_count());
      trace.replacements.record(
          t, static_cast<double>(now_total - last_replacements) / dt /
                 static_cast<double>(online));
      last_replacements = now_total;
      last_time = t;
    }
  }
  trace.health = service.protocol_health();
  return trace;
}

// --- warm-start forking (DESIGN.md §13) ------------------------------

/// Whether the scenario's warmup state fits the checkpoint scope:
/// no scheduled service faults or node-crash bursts (FaultInjector
/// events are not journaled), and single-stage deliveries only.
bool warm_start_usable(const OverlayScenario& scenario) {
  if (scenario.warm_start_dir.empty()) return false;
  if (!scenario.service_faults.empty()) return false;
  if (scenario.faults) {
    if (scenario.faults->has_node_crashes()) return false;
    if (scenario.faults->jitter_max > 0.0 ||
        scenario.faults->reorder_probability > 0.0)
      return false;
  }
  return true;
}

/// The cell's full identity: every input that shapes the warmup
/// trajectory. Two scenarios share a cached warmup snapshot iff this
/// hash (plus the backend kind checked separately) matches.
std::uint64_t warm_cell_hash(const graph::Graph& trust,
                             const OverlayScenario& scenario) {
  ckpt::Writer w;
  w.u64(ckpt::fingerprint_graph(trust));
  w.u64(scenario.seed);
  w.f64(scenario.window.warmup);
  w.f64(scenario.churn.alpha);
  w.f64(scenario.churn.mean_offline);
  w.b(scenario.churn.pareto);
  w.f64(scenario.churn.pareto_shape);
  const overlay::OverlayParams& p = scenario.params;
  w.u64(p.cache_size);
  w.u64(p.shuffle_length);
  w.u64(p.target_links);
  w.u64(p.min_slots);
  w.f64(p.pseudonym_lifetime);
  w.f64(p.shuffle_period);
  w.u32(p.pseudonym_bits);
  w.b(p.shuffle_on_rejoin);
  w.f64(p.shuffle_timeout);
  w.u64(p.shuffle_max_retries);
  w.f64(p.shuffle_retry_backoff);
  w.b(p.adaptive_lifetime);
  w.f64(p.adaptive_lifetime_factor);
  w.f64(p.adaptive_min_lifetime);
  w.f64(p.adaptive_max_lifetime);
  w.b(p.population_estimation);
  w.b(p.naive_sampling);
  w.b(p.validate_received);
  w.f64(p.max_accepted_lifetime);
  w.u64(p.peer_rate_limit);
  w.f64(p.peer_rate_window);
  w.f64(p.sampler_min_dwell);
  w.b(scenario.faults.has_value());
  if (scenario.faults) {
    const fault::FaultPlan& f = *scenario.faults;
    w.f64(f.drop_probability);
    w.f64(f.duplicate_probability);
    w.f64(f.jitter_min);
    w.f64(f.jitter_max);
    w.f64(f.reorder_probability);
    w.f64(f.reorder_min_delay);
    w.f64(f.reorder_max_delay);
    w.size(f.link_outages.size());
    for (const fault::Window& win : f.link_outages) {
      w.f64(win.start);
      w.f64(win.end);
    }
    w.size(f.partitions.size());
    for (const fault::Partition& part : f.partitions) {
      w.f64(part.window.start);
      w.f64(part.window.end);
      w.size(part.group.size());
      for (const graph::NodeId v : part.group) w.u32(v);
    }
    w.size(f.link_drop_overrides.size());
    for (const fault::LinkDropOverride& o : f.link_drop_overrides) {
      w.u32(o.from);
      w.u32(o.to);
      w.f64(o.drop_prob);
    }
    w.f64(f.gilbert_elliott.p_good_to_bad);
    w.f64(f.gilbert_elliott.p_bad_to_good);
    w.f64(f.gilbert_elliott.good_drop);
    w.f64(f.gilbert_elliott.bad_drop);
    w.f64(f.gilbert_elliott.step);
    w.f64(f.gilbert_elliott.horizon);
    w.f64(f.diurnal.amplitude);
    w.f64(f.diurnal.period);
    w.f64(f.diurnal.phase);
    w.u64(f.seed);
    w.b(f.per_link_streams);
  }
  w.b(scenario.adversary.has_value());
  if (scenario.adversary) {
    const adversary::AdversaryPlan& a = *scenario.adversary;
    w.f64(a.polluter_fraction);
    w.f64(a.eclipser_fraction);
    w.f64(a.dropper_fraction);
    w.f64(a.replayer_fraction);
    w.f64(a.polluter_tick_multiplier);
    w.f64(a.forged_lifetime_factor);
    w.u64(a.eclipse_records);
    w.u64(a.eclipse_offset);
    w.u64(a.replay_memory);
    w.u64(a.seed);
  }
  w.b(scenario.observer.has_value());
  if (scenario.observer) {
    w.f64(scenario.observer->coverage);
    w.u64(scenario.observer->seed);
  }
  return ckpt::fnv1a(w.buffer());
}

std::string warm_cell_path(const std::string& dir, std::uint64_t hash,
                           bool sharded) {
  char name[40];
  std::snprintf(name, sizeof name, "warm-%c-%016llx.ppoc",
                sharded ? 's' : '0',
                static_cast<unsigned long long>(hash));
  return dir + "/" + name;
}

enum WarmOutcome { kCold = 0, kRestored = 1, kRejected = 2 };

// Process-wide warm-start tallies (see warm_start_stats()). Wall time
// is stored in integer microseconds so the accumulation stays a plain
// fetch_add on every toolchain.
std::atomic<std::uint64_t> g_warm_runs{0};
std::atomic<std::uint64_t> g_cold_runs{0};
std::atomic<std::uint64_t> g_warm_micros{0};
std::atomic<std::uint64_t> g_cold_micros{0};

void tally_warm_phase(bool restored, double seconds) {
  const auto micros = static_cast<std::uint64_t>(
      std::llround(std::max(0.0, seconds) * 1e6));
  if (restored) {
    g_warm_runs.fetch_add(1, std::memory_order_relaxed);
    g_warm_micros.fetch_add(micros, std::memory_order_relaxed);
  } else {
    g_cold_runs.fetch_add(1, std::memory_order_relaxed);
    g_cold_micros.fetch_add(micros, std::memory_order_relaxed);
  }
}

/// Drives `service` through the warmup phase using the cell cache:
/// restore the cached snapshot when present and valid, otherwise
/// start cold, simulate to the warmup point and populate the cache.
/// kRejected means a snapshot passed the file-level checks but failed
/// payload restore — the service is now indeterminate and the caller
/// must reconstruct it and call again with `allow_restore = false`.
/// Fills the result's warm-start accounting on kCold/kRestored.
template <typename Service, typename RunUntilFn>
WarmOutcome warm_start_phase(Service& service, RunUntilFn run_until,
                             const graph::Graph& trust,
                             const OverlayScenario& scenario,
                             bool allow_restore, OverlayRunResult& result) {
  const bool sharded = scenario.shards > 0;
  const std::uint64_t cell = warm_cell_hash(trust, scenario);
  const std::string path =
      warm_cell_path(scenario.warm_start_dir, cell, sharded);
  const auto backend = sharded ? ckpt::BackendKind::kSharded
                               : ckpt::BackendKind::kSerial;
  const auto wall_start = std::chrono::steady_clock::now();
  const auto elapsed = [&wall_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };

  service.enable_checkpointing();
  if (allow_restore) {
    const ckpt::LoadResult lr = ckpt::load_file(path);
    if (lr.ok() &&
        ckpt::check_compat(lr.header, backend,
                           ckpt::fingerprint_graph(trust),
                           cell) == ckpt::Status::kOk) {
      try {
        ckpt::Reader r(lr.payload);
        service.restore_from_checkpoint(r);
        result.warm_started = true;
        result.warmup_wall_seconds = elapsed();
        tally_warm_phase(true, result.warmup_wall_seconds);
        return kRestored;
      } catch (const ckpt::ParseError&) {
        // A sealed, compat-checked file whose payload still fails is a
        // schema skew (e.g. stale cache across builds): drop it and
        // signal the caller to reconstruct and go cold.
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return kRejected;
      }
    }
  }

  service.start();
  run_until(scenario.window.warmup);
  std::error_code ec;
  std::filesystem::create_directories(scenario.warm_start_dir, ec);
  ckpt::Writer w;
  service.save_checkpoint(w);
  ckpt::Header h;
  h.backend = backend;
  h.shards_hint = static_cast<std::uint32_t>(scenario.shards);
  h.graph_fingerprint = ckpt::fingerprint_graph(trust);
  h.config_hash = cell;
  h.seed = scenario.seed;
  h.sim_time = scenario.window.warmup;
  ckpt::save_file(path, h, w.buffer(), nullptr);
  result.warm_started = false;
  result.warmup_wall_seconds = elapsed();
  tally_warm_phase(false, result.warmup_wall_seconds);
  return kCold;
}

}  // namespace

WarmStartStats warm_start_stats() {
  WarmStartStats s;
  s.warm_runs = g_warm_runs.load(std::memory_order_relaxed);
  s.cold_runs = g_cold_runs.load(std::memory_order_relaxed);
  s.warm_seconds =
      static_cast<double>(g_warm_micros.load(std::memory_order_relaxed)) / 1e6;
  s.cold_seconds =
      static_cast<double>(g_cold_micros.load(std::memory_order_relaxed)) / 1e6;
  return s;
}

void reset_warm_start_stats() {
  g_warm_runs.store(0, std::memory_order_relaxed);
  g_cold_runs.store(0, std::memory_order_relaxed);
  g_warm_micros.store(0, std::memory_order_relaxed);
  g_cold_micros.store(0, std::memory_order_relaxed);
}

OverlayRunResult run_overlay(const graph::Graph& trust,
                             const OverlayScenario& scenario) {
  const auto model = scenario.churn.make();
  overlay::OverlayServiceOptions options;
  options.params = scenario.params;
  options.link_faults = scenario.faults;
  options.adversary = scenario.adversary;
  options.observer = scenario.observer;
  const std::size_t n = trust.num_nodes();

  const bool warm = warm_start_usable(scenario);
  OverlayRunResult warm_info;

  if (scenario.shards > 0) {
    // One reconstruction retry: a snapshot rejected mid-restore leaves
    // the service indeterminate, so the cold fallback gets a fresh one.
    for (bool allow_restore : {true, false}) {
      sim::ShardedSimulator sim(sharded_options(scenario, options, n));
      overlay::ShardedOverlayService service(sim, trust, *model, options,
                                             scenario.seed);
      const auto injector = arm_sharded_faults(sim, service, scenario);
      const auto run_until = [&sim](double t) { sim.run_until(t); };
      if (warm) {
        if (warm_start_phase(service, run_until, trust, scenario,
                             allow_restore, warm_info) == kRejected)
          continue;
      } else {
        service.start();
      }
      auto result = measure_overlay(service, run_until, scenario, n);
      result.warm_started = warm_info.warm_started;
      result.warmup_wall_seconds = warm_info.warmup_wall_seconds;
      return result;
    }
    PPO_CHECK_MSG(false, "warm-start retry loop cannot fall through");
  }

  for (bool allow_restore : {true, false}) {
    sim::Simulator sim;
    overlay::OverlayService service(sim, trust, *model, options,
                                    Rng(scenario.seed));
    const auto injector = arm_service_faults(sim, service, scenario);
    const auto run_until = [&sim](double t) { sim.run_until(t); };
    if (warm) {
      if (warm_start_phase(service, run_until, trust, scenario,
                           allow_restore, warm_info) == kRejected)
        continue;
    } else {
      service.start();
    }
    auto result = measure_overlay(service, run_until, scenario, n);
    result.warm_started = warm_info.warm_started;
    result.warmup_wall_seconds = warm_info.warmup_wall_seconds;
    return result;
  }
  PPO_CHECK_MSG(false, "warm-start retry loop cannot fall through");
  return {};
}

StaticRunResult run_static(const graph::Graph& g, const ChurnSpec& churn_spec,
                           const MeasureWindow& window, std::uint64_t seed) {
  sim::Simulator sim;
  const auto model = churn_spec.make();
  churn::ChurnDriver driver(sim, g.num_nodes(), *model, Rng(seed));
  driver.start({});

  Rng metric_rng(seed ^ 0xB0B);
  StaticRunResult result;
  const std::size_t n = g.num_nodes();

  sim.run_until(window.warmup);
  const double end = window.warmup + window.measure;
  while (true) {
    const auto m = metrics::measure_graph(g, driver.online_mask(), n,
                                          metric_rng, window.apl_sources);
    accumulate(result.stats, m, n, g.num_edges());
    if (sim.now() + window.sample_every > end + 1e-9) {
      result.final_degree = m.degree;
      break;
    }
    sim.run_until(sim.now() + window.sample_every);
  }
  return result;
}

OverlayTrace run_overlay_trace(const graph::Graph& trust,
                               OverlayScenario scenario,
                               const OverlayTraceSpec& spec) {
  const auto model = scenario.churn.make();
  overlay::OverlayServiceOptions options;
  options.params = scenario.params;
  options.link_faults = scenario.faults;
  options.adversary = scenario.adversary;
  const std::size_t n = trust.num_nodes();

  if (scenario.shards > 0) {
    sim::ShardedSimulator sim(sharded_options(scenario, options, n));
    overlay::ShardedOverlayService service(sim, trust, *model, options,
                                           scenario.seed);
    const auto injector = arm_sharded_faults(sim, service, scenario);
    service.start();
    return measure_overlay_trace(
        service, [&sim](double t) { sim.run_until(t); }, spec, n);
  }

  sim::Simulator sim;
  overlay::OverlayService service(sim, trust, *model, options,
                                  Rng(scenario.seed));
  const auto injector = arm_service_faults(sim, service, scenario);
  service.start();
  return measure_overlay_trace(
      service, [&sim](double t) { sim.run_until(t); }, spec, n);
}

metrics::TimeSeries run_static_trace(const graph::Graph& g,
                                     const ChurnSpec& churn_spec,
                                     double horizon, double sample_every,
                                     std::uint64_t seed) {
  sim::Simulator sim;
  const auto model = churn_spec.make();
  churn::ChurnDriver driver(sim, g.num_nodes(), *model, Rng(seed));
  driver.start({});

  metrics::TimeSeries series("trust-graph");
  Rng metric_rng(seed ^ 0xF00);
  for (double t = sample_every; t <= horizon + 1e-9; t += sample_every) {
    sim.run_until(t);
    series.record(t, graph::fraction_disconnected(g, driver.online_mask()));
  }
  return series;
}

graph::Graph er_reference(std::size_t nodes, std::size_t edges,
                          std::uint64_t seed) {
  Rng rng(seed ^ 0xE4);
  return graph::erdos_renyi_gnm(nodes, edges, rng);
}

}  // namespace ppo::experiments
