#include "experiments/scenario.hpp"

#include <cmath>

#include "churn/churn_driver.hpp"
#include "common/check.hpp"
#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::experiments {

std::unique_ptr<churn::ChurnModel> ChurnSpec::make() const {
  PPO_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
  if (pareto) {
    PPO_CHECK_MSG(alpha < 1.0, "pareto churn needs alpha < 1");
    return std::make_unique<churn::ParetoChurn>(
        churn::ParetoChurn::from_availability(pareto_shape, alpha,
                                              mean_offline));
  }
  return std::make_unique<churn::ExponentialChurn>(
      churn::ExponentialChurn::from_availability(alpha, mean_offline));
}

namespace {

void accumulate(SnapshotStats& stats, const metrics::GraphMetrics& m,
                std::size_t total_nodes, std::size_t total_edges) {
  stats.frac_disconnected.add(m.fraction_disconnected);
  stats.norm_apl.add(m.normalized_avg_path_length);
  stats.online_fraction.add(static_cast<double>(m.online_nodes) /
                            static_cast<double>(total_nodes));
  stats.online_edges.add(static_cast<double>(m.online_edges));
  stats.total_edges.add(static_cast<double>(total_edges));
}

/// Builds the service-fault injector for a scenario (or nullptr when
/// no service faults are scheduled) and arms it.
std::unique_ptr<fault::FaultInjector> arm_service_faults(
    sim::Simulator& sim, overlay::OverlayService& service,
    const fault::ServiceFaults& faults) {
  if (faults.empty()) return nullptr;
  fault::FaultInjector::Hooks hooks;
  hooks.set_pseudonym_service_available = [&service](bool available) {
    service.set_pseudonym_service_available(available);
  };
  hooks.mix = service.mutable_mix_network();
  auto injector =
      std::make_unique<fault::FaultInjector>(sim, faults, std::move(hooks));
  injector->arm();
  return injector;
}

}  // namespace

OverlayRunResult run_overlay(const graph::Graph& trust,
                             const OverlayScenario& scenario) {
  sim::Simulator sim;
  const auto model = scenario.churn.make();
  overlay::OverlayServiceOptions options;
  options.params = scenario.params;
  options.link_faults = scenario.faults;
  overlay::OverlayService service(sim, trust, *model, options,
                                  Rng(scenario.seed));
  const auto injector =
      arm_service_faults(sim, service, scenario.service_faults);
  service.start();

  Rng metric_rng(scenario.seed ^ 0xA11CE5);
  OverlayRunResult result;
  const std::size_t n = trust.num_nodes();

  sim.run_until(scenario.window.warmup);
  const double end = scenario.window.warmup + scenario.window.measure;
  graph::Graph last_snapshot;
  while (true) {
    graph::Graph snapshot = service.overlay_snapshot();
    const auto m =
        metrics::measure_graph(snapshot, service.online_mask(), n, metric_rng,
                               scenario.window.apl_sources);
    accumulate(result.stats, m, n, snapshot.num_edges());
    last_snapshot = std::move(snapshot);
    if (sim.now() + scenario.window.sample_every > end + 1e-9) break;
    sim.run_until(sim.now() + scenario.window.sample_every);
  }

  // Final-sample artifacts.
  result.final_degree =
      graph::degree_histogram(last_snapshot, service.online_mask());
  result.final_total_edges = last_snapshot.num_edges();

  result.per_node.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto& node = service.node(v);
    const auto& c = node.counters();
    OverlayRunResult::PerNode pn;
    pn.trust_degree = node.trust_degree();
    pn.max_out_degree = c.max_out_degree;
    pn.messages_per_online_period =
        c.online_ticks == 0 ? 0.0
                            : static_cast<double>(c.messages_sent()) /
                                  static_cast<double>(c.online_ticks);
    result.per_node.push_back(pn);
  }
  result.replacements = service.total_replacements().replacements();
  result.messages_total = service.total_counters().messages_sent();
  result.health = service.protocol_health();
  return result;
}

StaticRunResult run_static(const graph::Graph& g, const ChurnSpec& churn_spec,
                           const MeasureWindow& window, std::uint64_t seed) {
  sim::Simulator sim;
  const auto model = churn_spec.make();
  churn::ChurnDriver driver(sim, g.num_nodes(), *model, Rng(seed));
  driver.start({});

  Rng metric_rng(seed ^ 0xB0B);
  StaticRunResult result;
  const std::size_t n = g.num_nodes();

  sim.run_until(window.warmup);
  const double end = window.warmup + window.measure;
  while (true) {
    const auto m = metrics::measure_graph(g, driver.online_mask(), n,
                                          metric_rng, window.apl_sources);
    accumulate(result.stats, m, n, g.num_edges());
    if (sim.now() + window.sample_every > end + 1e-9) {
      result.final_degree = m.degree;
      break;
    }
    sim.run_until(sim.now() + window.sample_every);
  }
  return result;
}

OverlayTrace run_overlay_trace(const graph::Graph& trust,
                               OverlayScenario scenario,
                               const OverlayTraceSpec& spec) {
  sim::Simulator sim;
  const auto model = scenario.churn.make();
  overlay::OverlayServiceOptions options;
  options.params = scenario.params;
  options.link_faults = scenario.faults;
  overlay::OverlayService service(sim, trust, *model, options,
                                  Rng(scenario.seed));
  const auto injector =
      arm_service_faults(sim, service, scenario.service_faults);
  service.start();

  Rng metric_rng(scenario.seed ^ 0x7EA5E);
  OverlayTrace trace;
  const std::size_t n = trust.num_nodes();

  std::uint64_t last_replacements = 0;
  double last_time = 0.0;
  for (double t = spec.sample_every; t <= spec.horizon + 1e-9;
       t += spec.sample_every) {
    sim.run_until(t);
    if (spec.track_connectivity) {
      graph::Graph snapshot = service.overlay_snapshot();
      const auto m = metrics::measure_graph(
          snapshot, service.online_mask(), n, metric_rng, spec.apl_sources);
      trace.connectivity.record(t, m.fraction_disconnected);
    }
    if (spec.track_replacements) {
      const std::uint64_t now_total =
          service.total_replacements().replacements();
      const double dt = t - last_time;
      const double online =
          std::max<std::size_t>(1, service.online_count());
      trace.replacements.record(
          t, static_cast<double>(now_total - last_replacements) / dt /
                 static_cast<double>(online));
      last_replacements = now_total;
      last_time = t;
    }
  }
  return trace;
}

metrics::TimeSeries run_static_trace(const graph::Graph& g,
                                     const ChurnSpec& churn_spec,
                                     double horizon, double sample_every,
                                     std::uint64_t seed) {
  sim::Simulator sim;
  const auto model = churn_spec.make();
  churn::ChurnDriver driver(sim, g.num_nodes(), *model, Rng(seed));
  driver.start({});

  metrics::TimeSeries series("trust-graph");
  Rng metric_rng(seed ^ 0xF00);
  for (double t = sample_every; t <= horizon + 1e-9; t += sample_every) {
    sim.run_until(t);
    series.record(t, graph::fraction_disconnected(g, driver.online_mask()));
  }
  return series;
}

graph::Graph er_reference(std::size_t nodes, std::size_t edges,
                          std::uint64_t seed) {
  Rng rng(seed ^ 0xE4);
  return graph::erdos_renyi_gnm(nodes, edges, rng);
}

}  // namespace ppo::experiments
