// One function per evaluation figure of the paper (Figures 3-9).
// Benches print the returned data; tests run them at reduced scale
// and assert the paper's qualitative shapes.
//
// Every sweep fans its independent cells (one per alpha / f / lifetime
// ratio) out on the ppo_runner pool. Cell seeds depend only on
// (FigureScale::seed, cell index), so results are bit-identical for
// any `jobs` value — see runner/sweep.hpp for the contract.
#pragma once

#include <vector>

#include "common/table.hpp"
#include "experiments/scenario.hpp"
#include "experiments/workbench.hpp"
#include "runner/sweep.hpp"

namespace ppo::experiments {

/// Scale knobs shared by the figure functions; defaults reproduce the
/// paper's setup, benches/tests may shrink them.
struct FigureScale {
  MeasureWindow window;
  std::vector<double> alphas = {0.125, 0.25, 0.375, 0.5,
                                0.625, 0.75, 0.875, 1.0};
  std::uint64_t seed = 1;
  /// Worker threads for the sweep cells; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Report per-cell completion/ETA lines to stderr.
  bool progress = false;
  /// Simulation backend for every overlay run inside a cell: 0 = the
  /// legacy serial Simulator, K >= 1 = the sharded core with K shard
  /// workers (see OverlayScenario::shards for the contract).
  std::size_t shards = 0;
  /// Independent repetitions per sweep cell (distinct seeds). With
  /// R > 1 the sweep figures report the mean over replicas plus a 95%
  /// confidence half-width per point; R = 1 reproduces the historical
  /// single-run values bit-identically. Applies to the alpha sweeps
  /// (Figures 3/4/7 and the fault-tolerance sweep).
  std::size_t replicas = 1;
  /// Warm-start cache directory for every overlay cell (DESIGN.md
  /// §13): the first sweep populates per-cell warmup snapshots, later
  /// sweeps fork from them — bit-identical figures, warmup wall time
  /// paid once. Empty = off.
  std::string warm_start_dir;
};

/// Availability sweeps (Figures 3, 4, 7): one named series per curve,
/// on the shared alpha axis.
struct SweepFigure {
  std::vector<double> alphas;
  std::vector<Series> connectivity;  // fraction of disconnected nodes
  std::vector<Series> napl;          // normalized average path length
  /// 95% confidence half-widths per point, indexed like the value
  /// series. All-zero when `replicas` is 1.
  std::vector<Series> connectivity_ci;
  std::vector<Series> napl_ci;
  /// Degradation rollup per series, summed over all alpha cells and
  /// replicas (indexed like `connectivity`; static baselines stay
  /// zero). Counter magnitudes scale with `replicas`.
  std::vector<metrics::ProtocolHealth> health;
  std::size_t replicas = 1;          // repetitions behind each point
  runner::SweepTelemetry telemetry;  // wall-clock accounting per cell
};

/// Figures 3 + 4: trust graphs (f = 1.0, 0.5), the overlay on both,
/// and the Erdős–Rényi reference sized to the overlay.
SweepFigure availability_sweep(Workbench& bench, const FigureScale& scale);

/// Figure 7: overlay at lifetime ratios r in {1, 3, 9, inf} (f = 0.5)
/// plus trust-graph and random-graph baselines.
SweepFigure lifetime_sweep(Workbench& bench, const FigureScale& scale);

/// Figure 5: degree distributions at alpha = 0.5.
struct DegreeFigure {
  struct PerF {
    double f;
    Histogram trust;
    Histogram overlay;
    Histogram random;
    metrics::ProtocolHealth health;  // of the overlay run
  };
  std::vector<PerF> entries;
  runner::SweepTelemetry telemetry;
};
DegreeFigure degree_distributions(Workbench& bench, const FigureScale& scale,
                                  const std::vector<double>& fs = {1.0, 0.5});

/// Figure 6: per-node messages/period and max out-degree, nodes
/// ranked by trust-graph degree (descending), alpha = 0.5.
struct MessageFigure {
  struct Row {
    std::size_t rank = 0;  // 1-based, by descending trust degree
    std::size_t trust_degree = 0;
    std::size_t max_out_degree = 0;
    double messages_per_period = 0.0;
  };
  struct PerF {
    double f;
    std::vector<Row> rows;          // every node, rank order
    double mean_messages = 0.0;     // network-wide average (paper: ~2)
    metrics::ProtocolHealth health;
  };
  std::vector<PerF> entries;
  runner::SweepTelemetry telemetry;
};
MessageFigure message_overhead(Workbench& bench, const FigureScale& scale,
                               const std::vector<double>& fs = {1.0, 0.5});

/// Figure 8: connectivity over time at alpha = 0.25 (f = 0.5). The
/// three traces are independent runs and execute in parallel when
/// `jobs` allows (0 = hardware concurrency).
struct ConvergenceFigure {
  metrics::TimeSeries trust{"trust-graph"};
  metrics::TimeSeries overlay_r3{"overlay-r3"};
  metrics::TimeSeries overlay_r9{"overlay-r9"};
  metrics::ProtocolHealth health_r3;
  metrics::ProtocolHealth health_r9;
  runner::SweepTelemetry telemetry;
};
ConvergenceFigure convergence_trace(Workbench& bench, double horizon,
                                    double sample_every, std::uint64_t seed,
                                    std::size_t jobs = 0);

/// Figure 9: pseudonym links replaced per node per shuffling period
/// over time at alpha = 0.25 (f = 0.5), r in {3, 9, inf}.
struct ReplacementFigure {
  metrics::TimeSeries r3{"r3"};
  metrics::TimeSeries r9{"r9"};
  metrics::TimeSeries r_infinite{"r-infinite"};
  metrics::ProtocolHealth health_r3;
  metrics::ProtocolHealth health_r9;
  metrics::ProtocolHealth health_r_infinite;
  runner::SweepTelemetry telemetry;
};
ReplacementFigure replacement_trace(Workbench& bench, double horizon,
                                    double sample_every, std::uint64_t seed,
                                    std::size_t jobs = 0);

/// Fault-tolerance sweep (robustness extension, not in the paper):
/// the overlay at f = 0.5 under injected per-message loss, with and
/// without the shuffle retry machinery (timeout / bounded retransmit /
/// exponential backoff), swept over availability alpha.
struct FaultToleranceSpec {
  /// Loss rates to inject; each contributes a retry and a no-retry
  /// series on top of the shared lossless baseline.
  std::vector<double> loss_rates = {0.1, 0.2, 0.3, 0.5};
  /// Both lossy variants run with this timeout (in periods); the
  /// no-retry variant aborts on the first timeout.
  double shuffle_timeout = 0.25;
  std::size_t max_retries = 2;
  double retry_backoff = 2.0;
};

struct FaultFigure {
  std::vector<double> alphas;
  std::vector<Series> connectivity;  // fraction of disconnected nodes
  std::vector<Series> napl;          // normalized average path length
  std::vector<Series> completion;    // exchange completion rate
  /// 95% confidence half-widths (all-zero when `replicas` is 1).
  std::vector<Series> connectivity_ci;
  std::vector<Series> napl_ci;
  std::vector<Series> completion_ci;
  /// Degradation rollup per series, summed over all alpha cells and
  /// replicas (indexed like `connectivity`).
  std::vector<metrics::ProtocolHealth> health;
  std::size_t replicas = 1;
  runner::SweepTelemetry telemetry;
};
FaultFigure fault_tolerance_sweep(Workbench& bench, const FigureScale& scale,
                                  const FaultToleranceSpec& spec = {});

/// Lifetime used for "pseudonyms that never expire" (r = inf).
inline constexpr double kInfiniteLifetime = 1e12;

}  // namespace ppo::experiments
