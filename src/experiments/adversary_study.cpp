#include "experiments/adversary_study.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace ppo::experiments {

adversary::AdversaryPlan make_attack_plan(const std::string& attack,
                                          double fraction,
                                          std::uint64_t seed) {
  adversary::AdversaryPlan plan;
  plan.seed = seed;
  if (attack == "pollute") {
    plan.polluter_fraction = fraction;
  } else if (attack == "eclipse") {
    plan.eclipser_fraction = fraction;
  } else if (attack == "drop") {
    plan.dropper_fraction = fraction;
  } else if (attack == "replay") {
    plan.replayer_fraction = fraction;
  } else if (attack == "mixed") {
    plan.polluter_fraction = fraction / 4.0;
    plan.eclipser_fraction = fraction / 4.0;
    plan.dropper_fraction = fraction / 4.0;
    plan.replayer_fraction = fraction / 4.0;
  } else {
    PPO_CHECK_MSG(false, "unknown attack name");
  }
  plan.validate();
  return plan;
}

namespace {

OverlayScenario study_scenario(const FigureScale& scale, double alpha,
                               std::uint64_t seed_salt) {
  OverlayScenario scenario;
  scenario.churn.alpha = alpha;
  scenario.window = scale.window;
  scenario.seed = scale.seed ^ seed_salt;
  scenario.params.pseudonym_lifetime = 3.0 * scenario.churn.mean_offline;
  scenario.shards = scale.shards;
  return scenario;
}

void arm_defenses(OverlayScenario& scenario, const AdversarySpec& spec) {
  scenario.params.validate_received = true;
  scenario.params.peer_rate_limit = spec.peer_rate_limit;
  scenario.params.peer_rate_window = spec.peer_rate_window;
  scenario.params.sampler_min_dwell = spec.sampler_min_dwell;
}

/// Everything the zero-adversary cross-check compares: summary stats,
/// message/replacement totals and the health counters that would move
/// first if the engine perturbed a trajectory.
bool runs_identical(const OverlayRunResult& a, const OverlayRunResult& b) {
  return a.stats.frac_disconnected.mean() ==
             b.stats.frac_disconnected.mean() &&
         a.stats.norm_apl.mean() == b.stats.norm_apl.mean() &&
         a.replacements == b.replacements &&
         a.messages_total == b.messages_total &&
         a.final_total_edges == b.final_total_edges &&
         a.health.requests_sent == b.health.requests_sent &&
         a.health.responses_sent == b.health.responses_sent &&
         a.health.exchanges_completed == b.health.exchanges_completed &&
         a.health.messages_delivered == b.health.messages_delivered &&
         a.health.forged_injected == 0 && b.health.forged_injected == 0 &&
         a.health.replays_injected == 0 && b.health.replays_injected == 0;
}

}  // namespace

AdversaryFigure adversary_resilience_sweep(Workbench& bench,
                                           const FigureScale& scale,
                                           const AdversarySpec& spec) {
  const graph::Graph& trust = bench.trust_graph(0.5);

  std::vector<std::string> names;
  for (const std::string& attack : spec.attacks) {
    names.push_back(attack + "-open");
    names.push_back(attack + "-defended");
  }

  struct CellEntry {
    double conn = 0.0;
    double completion = 0.0;
    metrics::ProtocolHealth health;
  };

  runner::SweepOptions opt;
  opt.jobs = scale.jobs;
  opt.root_seed = scale.seed;
  opt.progress = scale.progress;
  opt.label = "adversary-resilience-sweep";

  const std::size_t replicas = std::max<std::size_t>(1, scale.replicas);
  auto grid = runner::run_grid(
      spec.fractions.size() * replicas, opt,
      [&](const runner::CellInfo& cell) {
        const double fraction = spec.fractions[cell.index / replicas];
        std::vector<CellEntry> values;
        values.reserve(names.size());
        const OverlayScenario base =
            study_scenario(scale, spec.alpha, 911 + cell.index);

        for (std::size_t k = 0; k < spec.attacks.size(); ++k) {
          OverlayScenario attacked = base;
          attacked.adversary = make_attack_plan(
              spec.attacks[k], fraction, base.seed ^ (0xAD0000 + k));
          attacked.params.shuffle_timeout = spec.shuffle_timeout;
          attacked.params.shuffle_max_retries = spec.max_retries;

          // Completion is measured over the HONEST nodes' exchanges:
          // the global rate also counts the attackers' own exchanges,
          // which the defenses deliberately starve.
          const auto open = run_overlay(trust, attacked);
          values.push_back(CellEntry{open.stats.frac_disconnected.mean(),
                                     open.health.honest_completion_rate(),
                                     open.health});

          arm_defenses(attacked, spec);
          const auto defended = run_overlay(trust, attacked);
          values.push_back(
              CellEntry{defended.stats.frac_disconnected.mean(),
                        defended.health.honest_completion_rate(),
                        defended.health});
        }
        return values;
      });

  AdversaryFigure fig;
  fig.fractions = spec.fractions;
  fig.replicas = replicas;
  fig.health.resize(names.size());
  for (std::size_t j = 0; j < names.size(); ++j) {
    Series conn{names[j], {}}, comp{names[j], {}};
    Series conn_ci{names[j], {}}, comp_ci{names[j], {}};
    for (std::size_t a = 0; a < spec.fractions.size(); ++a) {
      RunningStats sc, sp;
      for (std::size_t r = 0; r < replicas; ++r) {
        const auto& values = grid.cells[a * replicas + r];
        PPO_CHECK(values.size() == names.size());
        sc.add(values[j].conn);
        sp.add(values[j].completion);
        if (spec.fractions[a] > 0.0) fig.health[j].merge(values[j].health);
      }
      conn.values.push_back(sc.mean());
      comp.values.push_back(sp.mean());
      conn_ci.values.push_back(ci95_half_width(sc));
      comp_ci.values.push_back(ci95_half_width(sp));
    }
    fig.connectivity.push_back(std::move(conn));
    fig.completion.push_back(std::move(comp));
    fig.connectivity_ci.push_back(std::move(conn_ci));
    fig.completion_ci.push_back(std::move(comp_ci));
  }

  // Zero-adversary cross-check: a plan with every fraction at zero must
  // leave the trajectory bit-identical to a run with no plan at all.
  {
    const OverlayScenario plain = study_scenario(scale, spec.alpha, 911);
    OverlayScenario wrapped = plain;
    wrapped.adversary =
        make_attack_plan(spec.attacks.empty() ? "mixed" : spec.attacks[0],
                         0.0, plain.seed ^ 0xAD0000);
    fig.zero_adversary_identical =
        runs_identical(run_overlay(trust, plain), run_overlay(trust, wrapped));
  }

  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

}  // namespace ppo::experiments
