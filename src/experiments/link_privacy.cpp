#include "experiments/link_privacy.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "experiments/scenario.hpp"
#include "runner/sweep.hpp"

namespace ppo::experiments {
namespace {

using inference::AttackMetrics;
using inference::ObserverPlan;

OverlayScenario privacy_scenario(const FigureScale& scale,
                                 const LinkPrivacySpec& spec,
                                 double lifetime, std::uint64_t seed_salt) {
  OverlayScenario scenario;
  scenario.churn.alpha = spec.alpha;
  scenario.window = scale.window;
  scenario.seed = scale.seed ^ seed_salt;
  scenario.params.pseudonym_lifetime = lifetime;
  scenario.shards = scale.shards;
  return scenario;
}

void arm_defenses(OverlayScenario& scenario, const LinkPrivacySpec& spec) {
  scenario.params.validate_received = true;
  scenario.params.peer_rate_limit = spec.peer_rate_limit;
  scenario.params.peer_rate_window = spec.peer_rate_window;
}

/// Full inference pipeline over one run's log: entity formation, then
/// every registered attack scored against the ground truth.
struct ArmResult {
  std::vector<AttackMetrics> per_attack;  // all_attacks() order
  std::vector<std::uint64_t> fingerprints;
  double observations = 0.0;
  double entities = 0.0;
  std::uint64_t log_fingerprint = 0;
};

ArmResult evaluate_log(const std::vector<inference::ObservationRecord>& log,
                       const graph::Graph& trust,
                       const inference::AttackOptions& options) {
  ArmResult out;
  out.observations = static_cast<double>(log.size());
  out.log_fingerprint = inference::log_fingerprint(log);
  const auto entities = inference::link_pseudonym_lifetimes(log, options);
  out.entities = static_cast<double>(entities.num_entities);
  const auto truth =
      inference::entity_truth_map(entities, log, trust.num_nodes());
  for (const auto& attack : inference::all_attacks()) {
    const auto candidates = attack.run(entities, log, options);
    const auto ranked =
        inference::map_to_node_edges(candidates, truth, trust.num_nodes());
    out.per_attack.push_back(inference::score_edges(ranked, trust));
    out.fingerprints.push_back(inference::edges_fingerprint(ranked));
  }
  return out;
}

/// What the zero-observer cross-check compares: the trajectory-level
/// aggregates that would move first if the observer perturbed a run.
bool runs_identical(const OverlayRunResult& a, const OverlayRunResult& b) {
  return a.stats.frac_disconnected.mean() ==
             b.stats.frac_disconnected.mean() &&
         a.stats.norm_apl.mean() == b.stats.norm_apl.mean() &&
         a.replacements == b.replacements &&
         a.messages_total == b.messages_total &&
         a.final_total_edges == b.final_total_edges &&
         a.health.requests_sent == b.health.requests_sent &&
         a.health.responses_sent == b.health.responses_sent &&
         a.health.exchanges_completed == b.health.exchanges_completed &&
         a.health.messages_delivered == b.health.messages_delivered;
}

}  // namespace

LinkPrivacyFigure link_privacy_sweep(Workbench& bench,
                                     const FigureScale& scale,
                                     const LinkPrivacySpec& spec) {
  const graph::Graph& trust = bench.trust_graph(0.5);

  LinkPrivacyFigure fig;
  fig.lifetimes = spec.lifetimes;
  fig.coverages = spec.coverages;
  for (const auto& attack : inference::all_attacks())
    fig.attacks.push_back(attack.name);
  fig.true_edges = trust.num_edges();

  const std::size_t arms = spec.defended_arm ? 2 : 1;
  const std::size_t replicas = std::max<std::size_t>(1, scale.replicas);
  fig.replicas = replicas;

  runner::SweepOptions opt;
  opt.jobs = scale.jobs;
  opt.root_seed = scale.seed;
  opt.progress = scale.progress;
  opt.label = "link-privacy-sweep";

  const std::size_t points = spec.lifetimes.size() * spec.coverages.size();
  auto grid = runner::run_grid(
      points * replicas, opt, [&](const runner::CellInfo& cell) {
        const std::size_t point = cell.index / replicas;
        const double lifetime = spec.lifetimes[point / spec.coverages.size()];
        const double coverage = spec.coverages[point % spec.coverages.size()];

        OverlayScenario scenario =
            privacy_scenario(scale, spec, lifetime, 1337 + cell.index);
        ObserverPlan plan;
        plan.coverage = coverage;
        plan.seed = scenario.seed ^ 0x0B5E0000;
        scenario.observer = plan;

        std::vector<ArmResult> out;
        out.reserve(arms);
        const auto open = run_overlay(trust, scenario);
        out.push_back(
            evaluate_log(open.observations, trust, spec.attack_options));
        if (spec.defended_arm) {
          OverlayScenario defended = scenario;
          arm_defenses(defended, spec);
          const auto run = run_overlay(trust, defended);
          out.push_back(
              evaluate_log(run.observations, trust, spec.attack_options));
        }
        return out;
      });

  for (std::size_t point = 0; point < points; ++point) {
    const double lifetime = spec.lifetimes[point / spec.coverages.size()];
    const double coverage = spec.coverages[point % spec.coverages.size()];
    for (std::size_t arm = 0; arm < arms; ++arm) {
      for (std::size_t k = 0; k < fig.attacks.size(); ++k) {
        RunningStats precision, recall, auc, observations, entities;
        for (std::size_t r = 0; r < replicas; ++r) {
          const auto& values = grid.cells[point * replicas + r];
          PPO_CHECK(values.size() == arms);
          const ArmResult& result = values[arm];
          PPO_CHECK(result.per_attack.size() == fig.attacks.size());
          precision.add(result.per_attack[k].precision);
          recall.add(result.per_attack[k].recall);
          auc.add(result.per_attack[k].auc);
          observations.add(result.observations);
          entities.add(result.entities);
        }
        LinkPrivacyCell out;
        out.lifetime = lifetime;
        out.coverage = coverage;
        out.attack = fig.attacks[k];
        out.defended = arm == 1;
        out.precision = precision.mean();
        out.recall = recall.mean();
        out.auc = auc.mean();
        out.precision_ci = ci95_half_width(precision);
        out.recall_ci = ci95_half_width(recall);
        out.auc_ci = ci95_half_width(auc);
        out.observations = observations.mean();
        out.entities = entities.mean();
        fig.cells.push_back(std::move(out));
      }
    }
  }

  // Zero-coverage cross-check: a zero-coverage plan skips observer
  // construction, so the run must be bit-identical to a plan-free run
  // and record nothing.
  {
    const OverlayScenario plain =
        privacy_scenario(scale, spec, spec.lifetimes.front(), 1337);
    OverlayScenario wrapped = plain;
    wrapped.observer = ObserverPlan{};  // coverage 0 -> enabled() false
    const auto bare = run_overlay(trust, plain);
    const auto with_plan = run_overlay(trust, wrapped);
    fig.zero_observer_identical = runs_identical(bare, with_plan) &&
                                  with_plan.observations.empty();
  }

  // Inference K-invariance: at a representative cell (longest
  // lifetime, highest coverage — the densest log), the merged
  // observation log and every attack's ranked output must fingerprint
  // identically for every sharded backend K.
  if (!spec.kinvariance_shards.empty()) {
    OverlayScenario scenario = privacy_scenario(
        scale, spec, spec.lifetimes.back(), 1337 + points * replicas);
    ObserverPlan plan;
    plan.coverage = spec.coverages.back();
    plan.seed = scenario.seed ^ 0x0B5E0000;
    scenario.observer = plan;
    for (const std::size_t shards : spec.kinvariance_shards) {
      scenario.shards = shards;
      const auto run = run_overlay(trust, scenario);
      const ArmResult result =
          evaluate_log(run.observations, trust, spec.attack_options);
      ShardFingerprint fp;
      fp.shards = shards;
      fp.log = result.log_fingerprint;
      fp.attacks = result.fingerprints;
      fig.shard_fingerprints.push_back(std::move(fp));
    }
    fig.kinvariant = std::all_of(
        fig.shard_fingerprints.begin(), fig.shard_fingerprints.end(),
        [&](const ShardFingerprint& fp) {
          return fp.log == fig.shard_fingerprints.front().log &&
                 fp.attacks == fig.shard_fingerprints.front().attacks;
        });
  }

  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

}  // namespace ppo::experiments
