#include "experiments/figures.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace ppo::experiments {

namespace {

OverlayScenario base_scenario(const FigureScale& scale, double alpha,
                              std::uint64_t seed_salt) {
  OverlayScenario scenario;
  scenario.churn.alpha = alpha;
  scenario.window = scale.window;
  scenario.seed = scale.seed ^ seed_salt;
  // Table I: lifetime = 3 x Toff.
  scenario.params.pseudonym_lifetime = 3.0 * scenario.churn.mean_offline;
  scenario.shards = scale.shards;
  scenario.warm_start_dir = scale.warm_start_dir;
  return scenario;
}

runner::SweepOptions sweep_options(const FigureScale& scale,
                                   const char* label) {
  runner::SweepOptions opt;
  opt.jobs = scale.jobs;
  opt.root_seed = scale.seed;
  opt.progress = scale.progress;
  opt.label = label;
  return opt;
}

/// What one alpha cell contributes to each output series, in series
/// order. Static baselines leave `health` zero.
struct CellValue {
  double conn = 0.0;
  double napl = 0.0;
  metrics::ProtocolHealth health;
};
using CellValues = std::vector<CellValue>;

/// Common shape of the Figure 3/4 and Figure 7 sweeps: one shared
/// Erdős–Rényi reference sized from a converged f = 0.5 overlay run,
/// then one independent simulation cell per alpha. Cells only read
/// `er` and the (pre-built, cached) trust graphs, so they are safe to
/// run on the pool; their seeds depend only on (scale.seed, index).
struct AlphaSweepSpec {
  const char* label;
  std::vector<const char*> series;  // output series names, in order
  std::uint64_t sizing_salt = 0;    // seed salt of the ER sizing run
  std::uint64_t er_seed_salt = 0;   // salt of the ER construction seed
  std::function<CellValues(const graph::Graph& er, double alpha,
                           std::size_t index)>
      cell;
};

SweepFigure run_alpha_sweep(Workbench& bench, const FigureScale& scale,
                            const AlphaSweepSpec& spec) {
  SweepFigure fig;
  fig.alphas = scale.alphas;

  // ONE Erdős–Rényi reference graph, sized once from the converged
  // overlay (highest availability in the sweep) — the paper compares
  // against a fixed random graph "of similar size and average
  // fan-out", not one resized per churn level.
  const graph::Graph& sizing_trust = bench.trust_graph(0.5);
  const double alpha_max =
      *std::max_element(scale.alphas.begin(), scale.alphas.end());
  OverlayScenario sizing = base_scenario(scale, alpha_max, spec.sizing_salt);
  const auto sizing_run = run_overlay(sizing_trust, sizing);
  const graph::Graph er = er_reference(
      sizing_trust.num_nodes(),
      static_cast<std::size_t>(
          std::llround(sizing_run.stats.total_edges.mean())),
      scale.seed ^ spec.er_seed_salt);

  // Alpha-major cell layout: cell index a*R + r. With R = 1 the index
  // equals the historical per-alpha index, so every seed salt — and
  // therefore every trajectory — is unchanged.
  const std::size_t replicas = std::max<std::size_t>(1, scale.replicas);
  fig.replicas = replicas;
  auto grid = runner::run_grid(
      scale.alphas.size() * replicas, sweep_options(scale, spec.label),
      [&](const runner::CellInfo& cell) {
        const double alpha = scale.alphas[cell.index / replicas];
        return spec.cell(er, alpha, cell.index);
      });

  fig.health.resize(spec.series.size());
  for (std::size_t j = 0; j < spec.series.size(); ++j) {
    Series conn{spec.series[j], {}}, napl{spec.series[j], {}};
    Series conn_ci{spec.series[j], {}}, napl_ci{spec.series[j], {}};
    for (std::size_t a = 0; a < scale.alphas.size(); ++a) {
      RunningStats sc, sn;
      for (std::size_t r = 0; r < replicas; ++r) {
        const CellValues& values = grid.cells[a * replicas + r];
        PPO_CHECK(values.size() == spec.series.size());
        sc.add(values[j].conn);
        sn.add(values[j].napl);
        fig.health[j].merge(values[j].health);
      }
      conn.values.push_back(sc.mean());
      napl.values.push_back(sn.mean());
      conn_ci.values.push_back(ci95_half_width(sc));
      napl_ci.values.push_back(ci95_half_width(sn));
    }
    fig.connectivity.push_back(std::move(conn));
    fig.napl.push_back(std::move(napl));
    fig.connectivity_ci.push_back(std::move(conn_ci));
    fig.napl_ci.push_back(std::move(napl_ci));
  }
  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

}  // namespace

SweepFigure availability_sweep(Workbench& bench, const FigureScale& scale) {
  const graph::Graph& t10 = bench.trust_graph(1.0);
  const graph::Graph& t05 = bench.trust_graph(0.5);

  AlphaSweepSpec spec;
  spec.label = "availability-sweep";
  spec.series = {"trust-f1.0", "trust-f0.5", "overlay-f1.0", "overlay-f0.5",
                 "random"};
  spec.sizing_salt = 99;
  spec.er_seed_salt = 0xE6;
  spec.cell = [&scale, &t10, &t05](const graph::Graph& er, double alpha,
                                   std::size_t i) {
    OverlayScenario scenario = base_scenario(scale, alpha, 101 + i);

    const auto s_t10 =
        run_static(t10, scenario.churn, scale.window, scenario.seed ^ 1);
    const auto s_t05 =
        run_static(t05, scenario.churn, scale.window, scenario.seed ^ 2);
    const auto o_t10 = run_overlay(t10, scenario);
    scenario.seed ^= 0x51;
    const auto o_t05 = run_overlay(t05, scenario);

    const auto s_er =
        run_static(er, scenario.churn, scale.window, scenario.seed ^ 3);

    return CellValues{
        {s_t10.stats.frac_disconnected.mean(), s_t10.stats.norm_apl.mean(), {}},
        {s_t05.stats.frac_disconnected.mean(), s_t05.stats.norm_apl.mean(), {}},
        {o_t10.stats.frac_disconnected.mean(), o_t10.stats.norm_apl.mean(),
         o_t10.health},
        {o_t05.stats.frac_disconnected.mean(), o_t05.stats.norm_apl.mean(),
         o_t05.health},
        {s_er.stats.frac_disconnected.mean(), s_er.stats.norm_apl.mean(), {}},
    };
  };
  return run_alpha_sweep(bench, scale, spec);
}

SweepFigure lifetime_sweep(Workbench& bench, const FigureScale& scale) {
  const graph::Graph& trust = bench.trust_graph(0.5);
  static constexpr std::pair<const char*, double> kRatios[] = {
      {"r1", 1.0}, {"r3", 3.0}, {"r9", 9.0}, {"r-infinite", -1.0}};

  AlphaSweepSpec spec;
  spec.label = "lifetime-sweep";
  spec.series = {"trust-graph", "r1", "r3", "r9", "r-infinite", "random"};
  spec.sizing_salt = 199;
  spec.er_seed_salt = 0xE7;
  spec.cell = [&scale, &trust](const graph::Graph& er, double alpha,
                               std::size_t i) {
    OverlayScenario scenario = base_scenario(scale, alpha, 211 + i);
    CellValues values;

    const auto s_trust =
        run_static(trust, scenario.churn, scale.window, scenario.seed ^ 1);
    values.push_back(CellValue{s_trust.stats.frac_disconnected.mean(),
                               s_trust.stats.norm_apl.mean(), {}});

    for (std::size_t k = 0; k < std::size(kRatios); ++k) {
      OverlayScenario variant = scenario;
      variant.seed ^= (k + 2) * 0x91;
      variant.params.pseudonym_lifetime =
          kRatios[k].second < 0
              ? kInfiniteLifetime
              : kRatios[k].second * variant.churn.mean_offline;
      const auto run = run_overlay(trust, variant);
      values.push_back(CellValue{run.stats.frac_disconnected.mean(),
                                 run.stats.norm_apl.mean(), run.health});
    }

    const auto s_er =
        run_static(er, scenario.churn, scale.window, scenario.seed ^ 8);
    values.push_back(CellValue{s_er.stats.frac_disconnected.mean(),
                               s_er.stats.norm_apl.mean(), {}});
    return values;
  };
  return run_alpha_sweep(bench, scale, spec);
}

DegreeFigure degree_distributions(Workbench& bench, const FigureScale& scale,
                                  const std::vector<double>& fs) {
  // Build the trust graphs up front: cells must not race on the
  // workbench cache, and prefetching keeps cell wall times honest.
  for (const double f : fs) bench.trust_graph(f);

  auto grid = runner::run_grid(
      fs, sweep_options(scale, "degree-distributions"),
      [&](double f, const runner::CellInfo& cell) {
        const graph::Graph& trust = bench.trust_graph(f);
        OverlayScenario scenario =
            base_scenario(scale, 0.5, 311 + cell.index);

        const auto s_trust =
            run_static(trust, scenario.churn, scale.window, scenario.seed ^ 1);
        const auto o = run_overlay(trust, scenario);
        const auto er = er_reference(trust.num_nodes(), o.final_total_edges,
                                     scenario.seed ^ 5);
        const auto s_er =
            run_static(er, scenario.churn, scale.window, scenario.seed ^ 6);

        return DegreeFigure::PerF{f, s_trust.final_degree, o.final_degree,
                                  s_er.final_degree, o.health};
      });

  DegreeFigure fig;
  fig.entries = std::move(grid.cells);
  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

MessageFigure message_overhead(Workbench& bench, const FigureScale& scale,
                               const std::vector<double>& fs) {
  for (const double f : fs) bench.trust_graph(f);

  auto grid = runner::run_grid(
      fs, sweep_options(scale, "message-overhead"),
      [&](double f, const runner::CellInfo& cell) {
        const graph::Graph& trust = bench.trust_graph(f);
        const OverlayScenario scenario =
            base_scenario(scale, 0.5, 411 + cell.index);
        const auto run = run_overlay(trust, scenario);

        MessageFigure::PerF entry;
        entry.f = f;
        entry.health = run.health;
        entry.rows.reserve(run.per_node.size());
        for (std::size_t v = 0; v < run.per_node.size(); ++v) {
          const auto& pn = run.per_node[v];
          entry.rows.push_back(MessageFigure::Row{
              0, pn.trust_degree, pn.max_out_degree,
              pn.messages_per_online_period});
        }
        std::sort(entry.rows.begin(), entry.rows.end(),
                  [](const auto& a, const auto& b) {
                    return a.trust_degree > b.trust_degree;
                  });
        double total = 0.0;
        for (std::size_t r = 0; r < entry.rows.size(); ++r) {
          entry.rows[r].rank = r + 1;
          total += entry.rows[r].messages_per_period;
        }
        entry.mean_messages =
            entry.rows.empty()
                ? 0.0
                : total / static_cast<double>(entry.rows.size());
        return entry;
      });

  MessageFigure fig;
  fig.entries = std::move(grid.cells);
  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

ConvergenceFigure convergence_trace(Workbench& bench, double horizon,
                                    double sample_every, std::uint64_t seed,
                                    std::size_t jobs) {
  const graph::Graph& trust = bench.trust_graph(0.5);
  ConvergenceFigure fig;

  ChurnSpec churn;
  churn.alpha = 0.25;

  // Three independent runs: the static trust baseline and the overlay
  // at r = 3 and r = 9.
  runner::SweepOptions opt;
  opt.jobs = jobs;
  opt.root_seed = seed;
  opt.label = "convergence-trace";
  struct TraceCell {
    metrics::TimeSeries series;
    metrics::ProtocolHealth health;
  };
  auto grid = runner::run_grid(3, opt, [&](const runner::CellInfo& cell) {
    TraceCell out;
    if (cell.index == 0) {
      out.series =
          run_static_trace(trust, churn, horizon, sample_every, seed ^ 1);
      return out;
    }
    const double ratio = cell.index == 1 ? 3.0 : 9.0;
    OverlayScenario scenario;
    scenario.churn = churn;
    scenario.seed = seed ^ static_cast<std::uint64_t>(ratio);
    scenario.params.pseudonym_lifetime = ratio * churn.mean_offline;
    OverlayTraceSpec spec;
    spec.horizon = horizon;
    spec.sample_every = sample_every;
    spec.track_connectivity = true;
    auto trace = run_overlay_trace(trust, scenario, spec);
    out.series = std::move(trace.connectivity);
    out.health = trace.health;
    return out;
  });

  grid.cells[0].series.set_name(fig.trust.name());
  fig.trust = std::move(grid.cells[0].series);
  grid.cells[1].series.set_name(fig.overlay_r3.name());
  fig.overlay_r3 = std::move(grid.cells[1].series);
  fig.health_r3 = grid.cells[1].health;
  grid.cells[2].series.set_name(fig.overlay_r9.name());
  fig.overlay_r9 = std::move(grid.cells[2].series);
  fig.health_r9 = grid.cells[2].health;
  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

namespace {

std::string loss_label(const char* prefix, double loss) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s-loss%.2f", prefix, loss);
  return buf;
}

}  // namespace

FaultFigure fault_tolerance_sweep(Workbench& bench, const FigureScale& scale,
                                  const FaultToleranceSpec& spec) {
  const graph::Graph& trust = bench.trust_graph(0.5);

  std::vector<std::string> names{"lossless"};
  for (const double loss : spec.loss_rates) {
    names.push_back(loss_label("retry", loss));
    names.push_back(loss_label("no-retry", loss));
  }

  /// One series' contribution from one alpha cell.
  struct CellEntry {
    double conn = 0.0;
    double napl = 0.0;
    metrics::ProtocolHealth health;
  };

  const std::size_t replicas = std::max<std::size_t>(1, scale.replicas);
  auto grid = runner::run_grid(
      scale.alphas.size() * replicas,
      sweep_options(scale, "fault-tolerance-sweep"),
      [&](const runner::CellInfo& cell) {
        const double alpha = scale.alphas[cell.index / replicas];
        std::vector<CellEntry> values;
        values.reserve(1 + 2 * spec.loss_rates.size());
        const OverlayScenario base =
            base_scenario(scale, alpha, 511 + cell.index);

        const auto run_one = [&](const OverlayScenario& s) {
          const auto run = run_overlay(trust, s);
          values.push_back(CellEntry{run.stats.frac_disconnected.mean(),
                                     run.stats.norm_apl.mean(), run.health});
        };

        run_one(base);  // lossless baseline: no plan, no timer
        for (std::size_t k = 0; k < spec.loss_rates.size(); ++k) {
          OverlayScenario lossy = base;
          fault::FaultPlan plan;
          plan.drop_probability = spec.loss_rates[k];
          plan.seed = base.seed ^ (0xFA0000 + k);
          plan.per_link_streams = base.shards > 0;
          lossy.faults = plan;
          lossy.params.shuffle_timeout = spec.shuffle_timeout;
          lossy.params.shuffle_retry_backoff = spec.retry_backoff;

          lossy.params.shuffle_max_retries = spec.max_retries;
          run_one(lossy);

          // Same loss pattern, retries off: the degradation the
          // hardening buys back.
          lossy.params.shuffle_max_retries = 0;
          run_one(lossy);
        }
        return values;
      });

  FaultFigure fig;
  fig.alphas = scale.alphas;
  fig.replicas = replicas;
  fig.health.resize(names.size());
  for (std::size_t j = 0; j < names.size(); ++j) {
    Series conn{names[j], {}}, napl{names[j], {}}, comp{names[j], {}};
    Series conn_ci{names[j], {}}, napl_ci{names[j], {}}, comp_ci{names[j], {}};
    for (std::size_t a = 0; a < scale.alphas.size(); ++a) {
      RunningStats sc, sn, sp;
      for (std::size_t r = 0; r < replicas; ++r) {
        const auto& values = grid.cells[a * replicas + r];
        PPO_CHECK(values.size() == names.size());
        sc.add(values[j].conn);
        sn.add(values[j].napl);
        sp.add(values[j].health.completion_rate());
        fig.health[j].merge(values[j].health);
      }
      conn.values.push_back(sc.mean());
      napl.values.push_back(sn.mean());
      comp.values.push_back(sp.mean());
      conn_ci.values.push_back(ci95_half_width(sc));
      napl_ci.values.push_back(ci95_half_width(sn));
      comp_ci.values.push_back(ci95_half_width(sp));
    }
    fig.connectivity.push_back(std::move(conn));
    fig.napl.push_back(std::move(napl));
    fig.completion.push_back(std::move(comp));
    fig.connectivity_ci.push_back(std::move(conn_ci));
    fig.napl_ci.push_back(std::move(napl_ci));
    fig.completion_ci.push_back(std::move(comp_ci));
  }
  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

ReplacementFigure replacement_trace(Workbench& bench, double horizon,
                                    double sample_every, std::uint64_t seed,
                                    std::size_t jobs) {
  const graph::Graph& trust = bench.trust_graph(0.5);
  ReplacementFigure fig;
  static constexpr double kRatios[] = {3.0, 9.0, -1.0};

  runner::SweepOptions opt;
  opt.jobs = jobs;
  opt.root_seed = seed;
  opt.label = "replacement-trace";
  struct TraceCell {
    metrics::TimeSeries series;
    metrics::ProtocolHealth health;
  };
  auto grid = runner::run_grid(
      std::size(kRatios), opt, [&](const runner::CellInfo& cell) {
        const double ratio = kRatios[cell.index];
        OverlayScenario scenario;
        scenario.churn.alpha = 0.25;
        scenario.seed = seed ^ static_cast<std::uint64_t>(ratio + 100);
        scenario.params.pseudonym_lifetime =
            ratio < 0 ? kInfiniteLifetime
                      : ratio * scenario.churn.mean_offline;
        OverlayTraceSpec spec;
        spec.horizon = horizon;
        spec.sample_every = sample_every;
        spec.track_connectivity = false;
        spec.track_replacements = true;
        auto trace = run_overlay_trace(trust, scenario, spec);
        return TraceCell{std::move(trace.replacements), trace.health};
      });

  grid.cells[0].series.set_name(fig.r3.name());
  fig.r3 = std::move(grid.cells[0].series);
  fig.health_r3 = grid.cells[0].health;
  grid.cells[1].series.set_name(fig.r9.name());
  fig.r9 = std::move(grid.cells[1].series);
  fig.health_r9 = grid.cells[1].health;
  grid.cells[2].series.set_name(fig.r_infinite.name());
  fig.r_infinite = std::move(grid.cells[2].series);
  fig.health_r_infinite = grid.cells[2].health;
  fig.telemetry = std::move(grid.telemetry);
  return fig;
}

}  // namespace ppo::experiments
