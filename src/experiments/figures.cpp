#include "experiments/figures.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ppo::experiments {

namespace {

OverlayScenario base_scenario(const FigureScale& scale, double alpha,
                              std::uint64_t seed_salt) {
  OverlayScenario scenario;
  scenario.churn.alpha = alpha;
  scenario.window = scale.window;
  scenario.seed = scale.seed ^ seed_salt;
  // Table I: lifetime = 3 x Toff.
  scenario.params.pseudonym_lifetime = 3.0 * scenario.churn.mean_offline;
  return scenario;
}

}  // namespace

SweepFigure availability_sweep(Workbench& bench, const FigureScale& scale) {
  SweepFigure fig;
  fig.alphas = scale.alphas;

  Series trust_f10{"trust-f1.0", {}}, trust_f05{"trust-f0.5", {}};
  Series overlay_f10{"overlay-f1.0", {}}, overlay_f05{"overlay-f0.5", {}};
  Series random_ref{"random", {}};
  Series n_trust_f10 = trust_f10, n_trust_f05 = trust_f05,
         n_overlay_f10 = overlay_f10, n_overlay_f05 = overlay_f05,
         n_random = random_ref;

  const graph::Graph& t10 = bench.trust_graph(1.0);
  const graph::Graph& t05 = bench.trust_graph(0.5);

  // ONE Erdős–Rényi reference graph, sized once from the converged
  // overlay (highest availability in the sweep) — the paper compares
  // against a fixed random graph "of similar size and average
  // fan-out", not one resized per churn level.
  const double alpha_max =
      *std::max_element(scale.alphas.begin(), scale.alphas.end());
  OverlayScenario sizing = base_scenario(scale, alpha_max, 99);
  const auto sizing_run = run_overlay(t05, sizing);
  const graph::Graph er = er_reference(
      t05.num_nodes(),
      static_cast<std::size_t>(
          std::llround(sizing_run.stats.total_edges.mean())),
      scale.seed ^ 0xE6);

  for (std::size_t i = 0; i < scale.alphas.size(); ++i) {
    const double alpha = scale.alphas[i];
    OverlayScenario scenario = base_scenario(scale, alpha, 101 + i);

    const auto s_t10 =
        run_static(t10, scenario.churn, scale.window, scenario.seed ^ 1);
    const auto s_t05 =
        run_static(t05, scenario.churn, scale.window, scenario.seed ^ 2);
    const auto o_t10 = run_overlay(t10, scenario);
    scenario.seed ^= 0x51;
    const auto o_t05 = run_overlay(t05, scenario);

    const auto s_er =
        run_static(er, scenario.churn, scale.window, scenario.seed ^ 3);

    trust_f10.values.push_back(s_t10.stats.frac_disconnected.mean());
    trust_f05.values.push_back(s_t05.stats.frac_disconnected.mean());
    overlay_f10.values.push_back(o_t10.stats.frac_disconnected.mean());
    overlay_f05.values.push_back(o_t05.stats.frac_disconnected.mean());
    random_ref.values.push_back(s_er.stats.frac_disconnected.mean());

    n_trust_f10.values.push_back(s_t10.stats.norm_apl.mean());
    n_trust_f05.values.push_back(s_t05.stats.norm_apl.mean());
    n_overlay_f10.values.push_back(o_t10.stats.norm_apl.mean());
    n_overlay_f05.values.push_back(o_t05.stats.norm_apl.mean());
    n_random.values.push_back(s_er.stats.norm_apl.mean());
  }

  fig.connectivity = {trust_f10, trust_f05, overlay_f10, overlay_f05,
                      random_ref};
  fig.napl = {n_trust_f10, n_trust_f05, n_overlay_f10, n_overlay_f05,
              n_random};
  return fig;
}

SweepFigure lifetime_sweep(Workbench& bench, const FigureScale& scale) {
  SweepFigure fig;
  fig.alphas = scale.alphas;

  const graph::Graph& trust = bench.trust_graph(0.5);
  const std::vector<std::pair<const char*, double>> ratios = {
      {"r1", 1.0}, {"r3", 3.0}, {"r9", 9.0}, {"r-infinite", -1.0}};

  Series trust_series{"trust-graph", {}}, random_series{"random", {}};
  Series n_trust = trust_series, n_random = random_series;
  std::vector<Series> overlay_conn, overlay_napl;
  for (const auto& [name, ratio] : ratios) {
    (void)ratio;
    overlay_conn.push_back(Series{name, {}});
    overlay_napl.push_back(Series{name, {}});
  }

  // Shared ER reference sized once from the converged r = 3 overlay
  // (see availability_sweep for rationale).
  const double alpha_max =
      *std::max_element(scale.alphas.begin(), scale.alphas.end());
  OverlayScenario sizing = base_scenario(scale, alpha_max, 199);
  const auto sizing_run = run_overlay(trust, sizing);
  const graph::Graph er = er_reference(
      trust.num_nodes(),
      static_cast<std::size_t>(
          std::llround(sizing_run.stats.total_edges.mean())),
      scale.seed ^ 0xE7);

  for (std::size_t i = 0; i < scale.alphas.size(); ++i) {
    const double alpha = scale.alphas[i];
    OverlayScenario scenario = base_scenario(scale, alpha, 211 + i);

    const auto s_trust =
        run_static(trust, scenario.churn, scale.window, scenario.seed ^ 1);
    trust_series.values.push_back(s_trust.stats.frac_disconnected.mean());
    n_trust.values.push_back(s_trust.stats.norm_apl.mean());

    for (std::size_t k = 0; k < ratios.size(); ++k) {
      OverlayScenario variant = scenario;
      variant.seed ^= (k + 2) * 0x91;
      variant.params.pseudonym_lifetime =
          ratios[k].second < 0
              ? kInfiniteLifetime
              : ratios[k].second * variant.churn.mean_offline;
      const auto run = run_overlay(trust, variant);
      overlay_conn[k].values.push_back(run.stats.frac_disconnected.mean());
      overlay_napl[k].values.push_back(run.stats.norm_apl.mean());
    }

    const auto s_er =
        run_static(er, scenario.churn, scale.window, scenario.seed ^ 8);
    random_series.values.push_back(s_er.stats.frac_disconnected.mean());
    n_random.values.push_back(s_er.stats.norm_apl.mean());
  }

  fig.connectivity.push_back(trust_series);
  for (auto& s : overlay_conn) fig.connectivity.push_back(std::move(s));
  fig.connectivity.push_back(random_series);
  fig.napl.push_back(n_trust);
  for (auto& s : overlay_napl) fig.napl.push_back(std::move(s));
  fig.napl.push_back(n_random);
  return fig;
}

DegreeFigure degree_distributions(Workbench& bench, const FigureScale& scale,
                                  const std::vector<double>& fs) {
  DegreeFigure fig;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const double f = fs[i];
    const graph::Graph& trust = bench.trust_graph(f);
    OverlayScenario scenario = base_scenario(scale, 0.5, 311 + i);

    const auto s_trust =
        run_static(trust, scenario.churn, scale.window, scenario.seed ^ 1);
    const auto o = run_overlay(trust, scenario);
    const auto er = er_reference(trust.num_nodes(), o.final_total_edges,
                                 scenario.seed ^ 5);
    const auto s_er =
        run_static(er, scenario.churn, scale.window, scenario.seed ^ 6);

    fig.entries.push_back(DegreeFigure::PerF{
        f, s_trust.final_degree, o.final_degree, s_er.final_degree});
  }
  return fig;
}

MessageFigure message_overhead(Workbench& bench, const FigureScale& scale,
                               const std::vector<double>& fs) {
  MessageFigure fig;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const double f = fs[i];
    const graph::Graph& trust = bench.trust_graph(f);
    const OverlayScenario scenario = base_scenario(scale, 0.5, 411 + i);
    const auto run = run_overlay(trust, scenario);

    MessageFigure::PerF entry;
    entry.f = f;
    entry.rows.reserve(run.per_node.size());
    for (std::size_t v = 0; v < run.per_node.size(); ++v) {
      const auto& pn = run.per_node[v];
      entry.rows.push_back(MessageFigure::Row{
          0, pn.trust_degree, pn.max_out_degree,
          pn.messages_per_online_period});
    }
    std::sort(entry.rows.begin(), entry.rows.end(),
              [](const auto& a, const auto& b) {
                return a.trust_degree > b.trust_degree;
              });
    double total = 0.0;
    for (std::size_t r = 0; r < entry.rows.size(); ++r) {
      entry.rows[r].rank = r + 1;
      total += entry.rows[r].messages_per_period;
    }
    entry.mean_messages =
        entry.rows.empty() ? 0.0 : total / static_cast<double>(entry.rows.size());
    fig.entries.push_back(std::move(entry));
  }
  return fig;
}

ConvergenceFigure convergence_trace(Workbench& bench, double horizon,
                                    double sample_every, std::uint64_t seed) {
  const graph::Graph& trust = bench.trust_graph(0.5);
  ConvergenceFigure fig;

  ChurnSpec churn;
  churn.alpha = 0.25;
  fig.trust = run_static_trace(trust, churn, horizon, sample_every, seed ^ 1);

  for (const double ratio : {3.0, 9.0}) {
    OverlayScenario scenario;
    scenario.churn = churn;
    scenario.seed = seed ^ static_cast<std::uint64_t>(ratio);
    scenario.params.pseudonym_lifetime = ratio * churn.mean_offline;
    OverlayTraceSpec spec;
    spec.horizon = horizon;
    spec.sample_every = sample_every;
    spec.track_connectivity = true;
    auto trace = run_overlay_trace(trust, scenario, spec);
    if (ratio == 3.0) {
      trace.connectivity.set_name(fig.overlay_r3.name());
      fig.overlay_r3 = std::move(trace.connectivity);
    } else {
      trace.connectivity.set_name(fig.overlay_r9.name());
      fig.overlay_r9 = std::move(trace.connectivity);
    }
  }
  return fig;
}

ReplacementFigure replacement_trace(Workbench& bench, double horizon,
                                    double sample_every, std::uint64_t seed) {
  const graph::Graph& trust = bench.trust_graph(0.5);
  ReplacementFigure fig;

  const std::vector<std::pair<double, metrics::TimeSeries*>> runs = {
      {3.0, &fig.r3}, {9.0, &fig.r9}, {-1.0, &fig.r_infinite}};
  for (const auto& [ratio, out] : runs) {
    OverlayScenario scenario;
    scenario.churn.alpha = 0.25;
    scenario.seed = seed ^ static_cast<std::uint64_t>(ratio + 100);
    scenario.params.pseudonym_lifetime =
        ratio < 0 ? kInfiniteLifetime
                  : ratio * scenario.churn.mean_offline;
    OverlayTraceSpec spec;
    spec.horizon = horizon;
    spec.sample_every = sample_every;
    spec.track_connectivity = false;
    spec.track_replacements = true;
    auto trace = run_overlay_trace(trust, scenario, spec);
    trace.replacements.set_name(out->name());
    *out = std::move(trace.replacements);
  }
  return fig;
}

}  // namespace ppo::experiments
