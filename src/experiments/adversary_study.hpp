// Byzantine-resilience study (§III-E extension, not in the paper):
// the overlay under seeded attacker populations — cache polluters,
// eclipse attackers, selective droppers, replayers — swept over the
// attacker fraction, with the protocol defenses (merge validation,
// per-peer rate limiting, sampler slot-churn damping) off and on.
#pragma once

#include <string>
#include <vector>

#include "adversary/plan.hpp"
#include "experiments/figures.hpp"

namespace ppo::experiments {

struct AdversarySpec {
  /// Total attacker fractions to sweep; 0 doubles as the baseline and
  /// as the bit-identity cross-check cell.
  std::vector<double> fractions = {0.0, 0.05, 0.1, 0.2, 0.3};
  /// Attack mixes, each contributing an open and a defended series:
  /// "pollute", "eclipse", "drop", "replay", or "mixed" (one quarter
  /// of the attacker budget to each role).
  std::vector<std::string> attacks = {"pollute", "eclipse", "replay",
                                      "mixed"};
  /// Availability during the sweep (high, so degradation is the
  /// adversary's doing rather than churn's).
  double alpha = 0.75;

  /// Defended-arm knobs (see OverlayParams). The rate cap sits just
  /// under a one-request-per-period flooder (10 per window) and far
  /// above honest per-peer rates (~1/target_links per period).
  std::size_t peer_rate_limit = 8;
  double peer_rate_window = 10.0;
  /// Slot-churn damping defaults OFF in the sweep: it protects slot
  /// occupancy symmetrically (an attacker record that landed first is
  /// shielded too), so its completion cost exceeds its eclipse benefit
  /// at sweep scales. The knob stays exercisable (tests set it).
  double sampler_min_dwell = 0.0;

  /// Both arms run the retry machinery: droppers starve exchanges,
  /// and without timeouts a starved node blocks forever.
  double shuffle_timeout = 0.25;
  std::size_t max_retries = 1;
};

/// Role fractions for one named attack at total fraction `fraction`.
/// Throws CheckError on an unknown attack name.
adversary::AdversaryPlan make_attack_plan(const std::string& attack,
                                          double fraction,
                                          std::uint64_t seed);

struct AdversaryFigure {
  std::vector<double> fractions;
  /// One series per (attack, arm): "<attack>-open" then
  /// "<attack>-defended", in spec order, on the fraction axis.
  std::vector<Series> connectivity;  // fraction of disconnected nodes
  std::vector<Series> completion;    // exchange completion rate
  std::vector<Series> connectivity_ci;  // all-zero when replicas == 1
  std::vector<Series> completion_ci;
  /// Attack/defense rollup per series, merged over every cell with a
  /// nonzero attacker fraction (zero-fraction cells would dilute the
  /// counters with guaranteed zeros).
  std::vector<metrics::ProtocolHealth> health;
  std::size_t replicas = 1;
  /// Cross-check: a zero-fraction plan yielded a run bit-identical to
  /// the plan-free baseline (stats, message counts and health).
  bool zero_adversary_identical = false;
  runner::SweepTelemetry telemetry;
};

AdversaryFigure adversary_resilience_sweep(Workbench& bench,
                                           const FigureScale& scale,
                                           const AdversarySpec& spec = {});

}  // namespace ppo::experiments
