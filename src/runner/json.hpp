// Dependency-free JSON document builder + minimal parser, used to
// persist sweep results, scale knobs and wall-clock telemetry as
// machine-readable bench artefacts (`--json` on every figure bench,
// the BENCH_*.json perf-tracking files).
//
// Scope is deliberately small: an ordered value tree, `dump()` with
// full string escaping and round-trip number formatting, and a strict
// recursive-descent `parse()` (UTF-8 pass-through, \uXXXX incl.
// surrogate pairs) that exists so tests and tooling can read back what
// we wrote. Not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ppo::runner {

class Json;
using JsonMember = std::pair<std::string, Json>;

/// Thrown by Json::parse on malformed input.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An ordered JSON value. Objects preserve insertion order so dumped
/// documents read in the order the bench built them.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json object() { Json j; j.type_ = Type::kObject; return j; }
  static Json array() { Json j; j.type_ = Type::kArray; return j; }

  /// Array of numbers, the common case for series values.
  static Json array_of(const std::vector<double>& values);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Object member access; inserts a null member on first use (object
  /// or null values only — a null promotes to an empty object).
  Json& operator[](const std::string& key);
  /// Lookup without insertion; throws std::out_of_range if absent.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  const std::vector<JsonMember>& members() const;

  /// Array access.
  void push_back(Json value);
  const Json& at(std::size_t index) const;
  std::size_t size() const;  // array/object element count

  /// Serializes the document. indent < 0 → compact single line;
  /// indent >= 0 → pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parser for the subset dump() emits (i.e. standard JSON).
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<JsonMember> object_;
};

/// Appends the JSON string literal for `s` (quotes included) to `out`,
/// escaping per RFC 8259.
void append_escaped(std::string& out, std::string_view s);

}  // namespace ppo::runner
