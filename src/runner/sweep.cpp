#include "runner/sweep.hpp"

#include <chrono>
#include <exception>
#include <iostream>
#include <mutex>
#include <sstream>

#include "common/rng.hpp"

namespace ppo::runner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::uint64_t cell_seed(std::uint64_t root_seed, std::uint64_t cell_index) {
  // Jump the SplitMix64 stream of `root_seed` to position index + 1;
  // one output step then decorrelates neighbouring cells.
  std::uint64_t state =
      root_seed + (cell_index + 1) * 0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

SweepTelemetry run_indexed(std::size_t cells, const SweepOptions& options,
                           const std::function<void(const CellInfo&)>& fn) {
  SweepTelemetry telemetry;
  telemetry.cells = cells;
  telemetry.jobs = options.jobs == 0 ? default_jobs() : options.jobs;
  telemetry.cell_seconds.assign(cells, 0.0);
  if (cells == 0) return telemetry;

  const auto start = Clock::now();
  std::vector<std::exception_ptr> errors(cells);
  std::mutex progress_mu;
  std::size_t done = 0;

  {
    ThreadPool pool(telemetry.jobs);
    for (std::size_t i = 0; i < cells; ++i) {
      pool.submit([&, i] {
        CellInfo cell;
        cell.index = i;
        cell.count = cells;
        cell.seed = cell_seed(options.root_seed, i);
        const auto cell_start = Clock::now();
        try {
          fn(cell);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        telemetry.cell_seconds[i] = seconds_since(cell_start);
        std::lock_guard<std::mutex> lock(progress_mu);
        ++done;
        if (options.progress) {
          const double elapsed = seconds_since(start);
          const double eta =
              elapsed / static_cast<double>(done) *
              static_cast<double>(cells - done);
          std::ostringstream line;
          line << options.label << ": " << done << "/" << cells
               << " cells done, elapsed "
               << static_cast<long>(elapsed * 10.0) / 10.0 << "s, ETA "
               << static_cast<long>(eta * 10.0) / 10.0 << "s (cell " << i
               << ": " << static_cast<long>(telemetry.cell_seconds[i] * 10.0) /
                              10.0
               << "s)\n";
          std::ostream* os =
              options.progress_stream ? options.progress_stream : &std::cerr;
          (*os) << line.str() << std::flush;
        }
      });
    }
    pool.drain();
  }

  telemetry.wall_seconds = seconds_since(start);
  // Deterministic propagation: the lowest-index failure wins no matter
  // which worker hit an exception first.
  for (std::size_t i = 0; i < cells; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  return telemetry;
}

ReplicatedResult run_replicated(
    std::size_t replicas, const SweepOptions& options,
    const std::function<double(const CellInfo&)>& fn) {
  ReplicatedResult out;
  auto grid = run_grid(replicas, options, fn);
  for (const double sample : grid.cells) out.stats.add(sample);
  out.telemetry = std::move(grid.telemetry);
  return out;
}

}  // namespace ppo::runner
