// Fixed-size worker pool with a bounded task queue, used by the sweep
// engine to fan independent simulation cells out across cores.
//
// Semantics chosen for experiment workloads:
//   - `submit` blocks while the queue is at capacity (backpressure
//     instead of unbounded memory growth when cells are cheap to
//     enqueue but expensive to run);
//   - the destructor drains: every task submitted before destruction
//     runs exactly once, then the workers are joined;
//   - an exception escaping a task is captured (first one wins) and
//     rethrown from `drain()` / the next `submit`, so a failing cell
//     cannot vanish silently on a worker thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppo::runner {

/// Number of workers to use when the caller passes 0 ("auto"):
/// std::thread::hardware_concurrency(), or 1 if that is unknown.
std::size_t default_jobs();

class ThreadPool {
 public:
  /// Starts `threads` workers (0 = default_jobs()). The queue holds at
  /// most `queue_capacity` pending tasks (0 = 2 x threads).
  explicit ThreadPool(std::size_t threads = 0, std::size_t queue_capacity = 0);

  /// Drains the queue, joins all workers. Any captured task exception
  /// is swallowed here (use drain() first if you care about it).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is full. Rethrows a
  /// previously captured task exception (the pool keeps running).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.
  void drain();

  std::size_t thread_count() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

 private:
  void worker_loop();
  void rethrow_locked(std::unique_lock<std::mutex>& lock);

  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable task_ready_;   // workers wait here
  std::condition_variable space_ready_;  // submitters wait here
  std::condition_variable idle_;         // drain() waits here
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;  // tasks currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace ppo::runner
