#include "runner/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ppo::runner {

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out += "null";
    return;
  }
  std::array<char, 32> buf;
  // Shortest round-trip representation.
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out.append(buf.data(), res.ptr);
}

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kInt:
    case Json::Type::kUint:
    case Json::Type::kDouble: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want +
                           ", have " + type_name(got));
}

}  // namespace

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unescaped
        }
    }
  }
  out += '"';
}

Json Json::array_of(const std::vector<double>& values) {
  Json j = array();
  j.array_.reserve(values.size());
  for (const double v : values) j.push_back(Json(v));
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUint: return static_cast<std::int64_t>(uint_);
    case Type::kDouble: return static_cast<std::int64_t>(double_);
    default: type_error("number", type_);
  }
}

std::uint64_t Json::as_uint() const {
  switch (type_) {
    case Type::kInt: return static_cast<std::uint64_t>(int_);
    case Type::kUint: return uint_;
    case Type::kDouble: return static_cast<std::uint64_t>(double_);
    default: type_error("number", type_);
  }
}

double Json::as_double() const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: type_error("number", type_);
  }
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  throw std::out_of_range("Json: no member \"" + key + "\"");
}

bool Json::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

const std::vector<JsonMember>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_.at(index);
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int levels) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kUint: out += std::to_string(uint_); break;
    case Type::kDouble: append_number(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    // Numbers compare by value across int/uint/double storage, which
    // is what round-trip tests care about.
    if (type_ == Type::kDouble || other.type_ == Type::kDouble)
      return as_double() == other.as_double();
    if (type_ == Type::kUint || other.type_ == Type::kUint)
      return as_uint() == other.as_uint();
    return as_int() == other.as_int();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
    default: return false;  // numbers handled above
  }
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return arr;
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') { out += c; continue; }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: a low surrogate must follow.
            if (!consume_literal("\\u")) fail("lone high surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");

    const bool integral =
        tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos;
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
          return Json(v);
      } else {
        std::uint64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
          return Json(v);
      }
      // Out-of-range integer: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
      fail("bad number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ppo::runner
