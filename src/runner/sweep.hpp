// Parallel sweep engine: maps a parameter grid onto thread-pool tasks
// with per-cell deterministic seeding, so a sweep's numeric output is
// bit-identical whether it runs on 1 thread or 64.
//
// Determinism contract:
//   - every cell receives `cell_seed(root_seed, index)` (SplitMix64 of
//     the root seed jumped by the cell index), independent of execution
//     order and of the number of workers;
//   - each cell writes only its own result slot;
//   - aggregation (run_replicated's RunningStats merge, exception
//     selection) happens after the barrier, in cell-index order.
// Wall-clock telemetry (total + per-cell seconds, completion progress)
// is collected on the side and never feeds back into results.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "runner/thread_pool.hpp"

namespace ppo::runner {

/// Deterministic per-cell seed: SplitMix64 output of the root seed
/// advanced by (index + 1) golden-ratio increments. Cheap, stateless,
/// and well-decorrelated between neighbouring cells and roots.
std::uint64_t cell_seed(std::uint64_t root_seed, std::uint64_t cell_index);

struct SweepOptions {
  /// Worker threads; 0 = default_jobs() (hardware concurrency).
  std::size_t jobs = 0;
  /// Root seed the per-cell seeds are derived from.
  std::uint64_t root_seed = 1;
  /// When set, prints "label: k/N cells done, elapsed, ETA" lines to
  /// `progress_stream` (default std::cerr) as cells complete.
  bool progress = false;
  std::ostream* progress_stream = nullptr;
  std::string label = "sweep";
};

/// What a cell callback learns about its position in the sweep.
struct CellInfo {
  std::size_t index = 0;  // 0-based cell index
  std::size_t count = 0;  // total number of cells
  std::uint64_t seed = 0; // cell_seed(root_seed, index)
};

/// Wall-clock accounting for one sweep.
struct SweepTelemetry {
  std::size_t cells = 0;
  std::size_t jobs = 1;               // workers actually used
  double wall_seconds = 0.0;          // whole sweep, including barrier
  std::vector<double> cell_seconds;   // per cell, indexed by cell
};

/// Core executor: runs `fn` once per cell on a private pool and blocks
/// until all cells finished. The first exception (lowest cell index)
/// is rethrown after the barrier. This is the non-template engine the
/// typed wrappers below build on.
SweepTelemetry run_indexed(std::size_t cells, const SweepOptions& options,
                           const std::function<void(const CellInfo&)>& fn);

template <typename Result>
struct GridResult {
  std::vector<Result> cells;  // one entry per cell, in grid order
  SweepTelemetry telemetry;
};

/// Runs `fn(CellInfo) -> Result` over `cells` independent cells and
/// returns the results in index order.
template <typename Fn>
auto run_grid(std::size_t cells, const SweepOptions& options, Fn&& fn)
    -> GridResult<decltype(fn(std::declval<const CellInfo&>()))> {
  using Result = decltype(fn(std::declval<const CellInfo&>()));
  GridResult<Result> out;
  out.cells.resize(cells);
  out.telemetry = run_indexed(
      cells, options,
      [&](const CellInfo& cell) { out.cells[cell.index] = fn(cell); });
  return out;
}

/// Grid over an explicit parameter axis: `fn(param, CellInfo)`.
template <typename Param, typename Fn>
auto run_grid(const std::vector<Param>& grid, const SweepOptions& options,
              Fn&& fn)
    -> GridResult<decltype(fn(std::declval<const Param&>(),
                              std::declval<const CellInfo&>()))> {
  return run_grid(grid.size(), options, [&](const CellInfo& cell) {
    return fn(grid[cell.index], cell);
  });
}

struct ReplicatedResult {
  RunningStats stats;  // merged across replicas in index order
  SweepTelemetry telemetry;
};

/// Runs `fn(CellInfo) -> double` for `replicas` independently seeded
/// replicas and merges the samples into one RunningStats. The merge
/// happens post-barrier in replica order, so the aggregate is
/// independent of scheduling.
ReplicatedResult run_replicated(
    std::size_t replicas, const SweepOptions& options,
    const std::function<double(const CellInfo&)>& fn);

}  // namespace ppo::runner
