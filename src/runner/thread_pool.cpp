#include "runner/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace ppo::runner {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0
                    ? 2 * (threads == 0 ? default_jobs() : threads)
                    : queue_capacity) {
  const std::size_t n = threads == 0 ? default_jobs() : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::rethrow_locked(std::unique_lock<std::mutex>& lock) {
  if (!first_error_) return;
  std::exception_ptr err = std::exchange(first_error_, nullptr);
  lock.unlock();
  std::rethrow_exception(err);
}

void ThreadPool::submit(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  rethrow_locked(lock);  // only returns (lock held) when there is no error
  space_ready_.wait(lock, [this] { return queue_.size() < capacity_; });
  queue_.push_back(std::move(task));
  lock.unlock();
  task_ready_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  rethrow_locked(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      // Drain semantics: exit only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    space_ready_.notify_one();
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ppo::runner
