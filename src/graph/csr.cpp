#include "graph/csr.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ppo::graph {

namespace {

/// Packs an undirected edge into the hash-set key: smaller endpoint in
/// the high half so {u, v} and {v, u} collide.
std::uint64_t edge_key(NodeId u, NodeId v) {
  const NodeId lo = u < v ? u : v;
  const NodeId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

// ---------------------------------------------------------------- CsrGraph

CsrGraph CsrGraph::from_edges(
    std::size_t n, std::span<const std::pair<NodeId, NodeId>> edges) {
  CsrGraph g;
  g.assign_from_edges(n, edges);
  return g;
}

void CsrGraph::assign_from_edges(
    std::size_t n, std::span<const std::pair<NodeId, NodeId>> edges,
    bool sort_neighbors) {
  offsets_.assign(n + 1, 0);
  neighbors_.resize(edges.size() * 2);

  // Counting sort: degree counts, prefix sum, scatter.
  for (const auto& [u, v] : edges) {
    PPO_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  for (const auto& [u, v] : edges) {
    neighbors_[offsets_[u]++] = v;
    neighbors_[offsets_[v]++] = u;
  }
  // The scatter advanced each offset to its successor; shift back.
  for (std::size_t v = n; v > 0; --v) offsets_[v] = offsets_[v - 1];
  offsets_[0] = 0;

  if (sort_neighbors) {
    for (std::size_t v = 0; v < n; ++v)
      std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
                neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
  sorted_ = sort_neighbors;
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  PPO_CHECK_MSG(u < num_nodes() && v < num_nodes(),
                "edge endpoint out of range");
  PPO_CHECK_MSG(sorted_, "has_edge requires sorted neighbor slices");
  const bool probe_u = degree(u) <= degree(v);
  const auto slice = neighbors(probe_u ? u : v);
  const NodeId target = probe_u ? v : u;
  return std::binary_search(slice.begin(), slice.end(), target);
}

std::vector<std::pair<NodeId, NodeId>> CsrGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u)
    for (NodeId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

// -------------------------------------------------------------- CsrBuilder

CsrBuilder::CsrBuilder(std::size_t n, bool track_membership)
    : nodes_(n), track_membership_(track_membership) {}

NodeId CsrBuilder::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(nodes_.size());
  nodes_.resize(nodes_.size() + count);
  return first;
}

void CsrBuilder::append_neighbor(NodeId u, NodeId v) {
  NodeSlice& s = nodes_[u];
  if (s.len == s.cap) {
    // Relocate to a doubled slice at the end of the pool; the old
    // slice is abandoned (bounded waste: < 2x live entries total).
    const std::uint32_t new_cap = s.cap == 0 ? 4 : s.cap * 2;
    const std::uint64_t new_off = pool_.size();
    pool_.resize(pool_.size() + new_cap);
    std::copy_n(pool_.begin() + static_cast<std::ptrdiff_t>(s.offset), s.len,
                pool_.begin() + static_cast<std::ptrdiff_t>(new_off));
    s.offset = new_off;
    s.cap = new_cap;
  }
  pool_[s.offset + s.len++] = v;
}

bool CsrBuilder::add_edge(NodeId u, NodeId v) {
  PPO_CHECK_MSG(u < nodes_.size() && v < nodes_.size(),
                "edge endpoint out of range");
  if (u == v) return false;
  if (track_membership_) {
    const std::uint64_t key = edge_key(u, v);
    if (edge_set_.find(key) != nullptr) return false;
    edge_set_.insert(key, 1);
  }
  append_neighbor(u, v);
  append_neighbor(v, u);
  ++num_edges_;
  return true;
}

bool CsrBuilder::has_edge(NodeId u, NodeId v) const {
  PPO_CHECK_MSG(track_membership_, "builder does not track membership");
  PPO_CHECK_MSG(u < nodes_.size() && v < nodes_.size(),
                "edge endpoint out of range");
  if (u == v) return false;
  return edge_set_.find(edge_key(u, v)) != nullptr;
}

bool CsrBuilder::remove_edge(NodeId u, NodeId v) {
  PPO_CHECK_MSG(track_membership_, "builder does not track membership");
  if (u == v || !has_edge(u, v)) return false;
  edge_set_.erase(edge_key(u, v));
  const auto erase_from = [this](NodeId a, NodeId b) {
    NodeSlice& s = nodes_[a];
    NodeId* begin = pool_.data() + s.offset;
    NodeId* end = begin + s.len;
    NodeId* it = std::find(begin, end, b);
    PPO_CHECK(it != end);
    std::copy(it + 1, end, it);  // order-preserving erase
    --s.len;
  };
  erase_from(u, v);
  erase_from(v, u);
  --num_edges_;
  return true;
}

CsrGraph CsrBuilder::build() const {
  CsrGraph g;
  const std::size_t n = nodes_.size();
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    g.offsets_[v + 1] = g.offsets_[v] + nodes_[v].len;
  g.neighbors_.resize(g.offsets_[n]);
  for (std::size_t v = 0; v < n; ++v) {
    const auto slice = neighbors(static_cast<NodeId>(v));
    const auto out =
        g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    std::copy(slice.begin(), slice.end(), out);
    std::sort(out, out + static_cast<std::ptrdiff_t>(slice.size()));
  }
  g.sorted_ = true;
  return g;
}

// --------------------------------------------------------------- GraphView

GraphView::GraphView(const Graph& g) {
  if (const CsrGraph* csr = g.csr()) {
    csr_ = csr;  // unwrap: one branch per call instead of two
  } else {
    graph_ = &g;
  }
}

std::size_t GraphView::num_nodes() const {
  if (csr_) return csr_->num_nodes();
  if (builder_) return builder_->num_nodes();
  return graph_->num_nodes();
}

std::size_t GraphView::num_edges() const {
  if (csr_) return csr_->num_edges();
  if (builder_) return builder_->num_edges();
  return graph_->num_edges();
}

std::size_t GraphView::degree(NodeId v) const {
  if (csr_) return csr_->degree(v);
  if (builder_) return builder_->degree(v);
  return graph_->degree(v);
}

std::span<const NodeId> GraphView::neighbors(NodeId v) const {
  if (csr_) return csr_->neighbors(v);
  if (builder_) return builder_->neighbors(v);
  return graph_->neighbors(v);
}

bool GraphView::has_edge(NodeId u, NodeId v) const {
  if (csr_) return csr_->has_edge(u, v);
  if (builder_) return builder_->has_edge(u, v);
  return graph_->has_edge(u, v);
}

double GraphView::average_degree() const {
  if (csr_) return csr_->average_degree();
  if (builder_) {
    const std::size_t n = builder_->num_nodes();
    return n == 0 ? 0.0
                  : 2.0 * static_cast<double>(builder_->num_edges()) /
                        static_cast<double>(n);
  }
  return graph_->average_degree();
}

bool GraphView::has_fast_edge_probe() const {
  if (csr_) return csr_->sorted_neighbors();
  if (builder_) return true;  // hash probe
  return graph_->finalized();
}

CsrGraph induced_subgraph_csr(GraphView g, const std::vector<NodeId>& nodes) {
  constexpr NodeId kAbsent = static_cast<NodeId>(-1);
  std::vector<NodeId> remap(g.num_nodes(), kAbsent);
  for (NodeId i = 0; i < nodes.size(); ++i) {
    PPO_CHECK_MSG(nodes[i] < g.num_nodes(), "subgraph node out of range");
    PPO_CHECK_MSG(remap[nodes[i]] == kAbsent,
                  "duplicate node in subgraph selection");
    remap[nodes[i]] = i;
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < nodes.size(); ++i) {
    for (NodeId nb : g.neighbors(nodes[i])) {
      const NodeId j = remap[nb];
      if (j != kAbsent && i < j) edges.emplace_back(i, j);
    }
  }
  return CsrGraph::from_edges(nodes.size(), edges);
}

}  // namespace ppo::graph
