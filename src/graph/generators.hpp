// Random-graph generators: the Erdős–Rényi reference baseline the
// paper compares against, preferential-attachment models for the
// synthetic social substrate, and small structured graphs for tests.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace ppo::graph {

/// G(n, M): exactly `edges` distinct edges chosen uniformly.
Graph erdos_renyi_gnm(std::size_t n, std::size_t edges, Rng& rng);

/// G(n, p): each possible edge present independently with prob p.
Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` existing nodes chosen proportionally to degree. Yields a
/// power-law degree distribution (exponent ~3) like the Facebook
/// crawl used by the paper.
Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

/// Holme–Kim model: BA plus triad formation. After each preferential
/// attachment, with probability `triad_prob` the next link closes a
/// triangle with a neighbor of the previous target. Adds the high
/// clustering real social graphs exhibit.
Graph holme_kim(std::size_t n, std::size_t m, double triad_prob, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` neighbors per
/// side rewired with probability `beta`.
Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

/// Deterministic helpers for tests.
Graph ring(std::size_t n);
Graph path_graph(std::size_t n);
Graph complete(std::size_t n);
Graph star(std::size_t leaves);

}  // namespace ppo::graph
