#include "graph/paths.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"
#include "graph/components.hpp"

namespace ppo::graph {

std::vector<std::uint32_t> bfs_distances(GraphView g, NodeId source,
                                         const NodeMask& mask) {
  const std::size_t n = g.num_nodes();
  PPO_CHECK_MSG(source < n, "BFS source out of range");
  PPO_CHECK_MSG(mask.contains(source), "BFS source excluded by mask");
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.neighbors(u)) {
      if (!mask.contains(v) || dist[v] != kUnreachable) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

namespace {

/// Nodes of the largest component of the mask-induced subgraph.
std::vector<NodeId> largest_component_nodes(GraphView g,
                                            const NodeMask& mask) {
  const Components comps = connected_components(g, mask);
  const std::uint32_t target = comps.largest();
  std::vector<NodeId> nodes;
  if (target == Components::kExcluded) return nodes;
  nodes.reserve(comps.largest_size());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (comps.component_of[v] == target) nodes.push_back(v);
  return nodes;
}

/// Mean BFS distance from `sources` to all other nodes of the same
/// component. `component` must contain every source.
double mean_distance_from_sources(GraphView g, const NodeMask& mask,
                                  const std::vector<NodeId>& sources,
                                  std::size_t component_size) {
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId s : sources) {
    const auto dist = bfs_distances(g, s, mask);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || dist[v] == kUnreachable) continue;
      total += dist[v];
      ++pairs;
    }
  }
  (void)component_size;
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace

double average_path_length(GraphView g, Rng& rng, const NodeMask& mask,
                           std::size_t sample_sources,
                           std::size_t exact_threshold) {
  std::vector<NodeId> nodes = largest_component_nodes(g, mask);
  if (nodes.size() <= 1) return 0.0;

  // Restrict BFS to the largest component so stray fragments of the
  // masked graph cannot contaminate the average.
  NodeMask comp_mask(g.num_nodes(), false);
  for (NodeId v : nodes) comp_mask.set(v, true);

  std::vector<NodeId> sources;
  if (nodes.size() <= exact_threshold || sample_sources >= nodes.size()) {
    sources = nodes;
  } else {
    sources = rng.sample(nodes, sample_sources);
  }
  return mean_distance_from_sources(g, comp_mask, sources, nodes.size());
}

double normalized_average_path_length(GraphView g, Rng& rng,
                                      std::size_t total_nodes,
                                      const NodeMask& mask,
                                      std::size_t sample_sources) {
  PPO_CHECK_MSG(total_nodes > 0, "total_nodes must be positive");
  const std::vector<NodeId> nodes = largest_component_nodes(g, mask);
  if (nodes.size() <= 1) {
    // A trivial largest component carries no path information; report
    // the maximal penalty (one hop scaled by the full graph).
    return static_cast<double>(total_nodes);
  }
  const double apl = average_path_length(g, rng, mask, sample_sources);
  return apl / static_cast<double>(nodes.size()) *
         static_cast<double>(total_nodes);
}

std::uint32_t diameter_estimate(GraphView g, Rng& rng,
                                const NodeMask& mask, std::size_t sweeps) {
  const std::vector<NodeId> nodes = largest_component_nodes(g, mask);
  if (nodes.size() <= 1) return 0;
  NodeMask comp_mask(g.num_nodes(), false);
  for (NodeId v : nodes) comp_mask.set(v, true);

  std::uint32_t best = 0;
  NodeId start = nodes[rng.uniform_u64(nodes.size())];
  for (std::size_t i = 0; i < sweeps; ++i) {
    const auto dist = bfs_distances(g, start, comp_mask);
    NodeId farthest = start;
    std::uint32_t far_dist = 0;
    for (NodeId v : nodes) {
      if (dist[v] != kUnreachable && dist[v] > far_dist) {
        far_dist = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, far_dist);
    start = farthest;
  }
  return best;
}

}  // namespace ppo::graph
