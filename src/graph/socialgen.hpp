// Synthetic stand-in for the Facebook crawl of Wilson et al. used by
// the paper (~3M nodes, ~28M edges, power-law degrees, high
// clustering). See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace ppo::graph {

/// Parameters of the hierarchical social-graph model.
///
/// Real social graphs (incl. the Facebook crawl the paper samples)
/// combine three properties that all matter for invitation-model
/// sampling: heavy-tailed degrees, triadic closure, and HIERARCHICAL
/// community structure — a 1000-node breadth-first ball of the crawl
/// retains ~60% of its members' edges internally, which is why the
/// paper's f = 1.0 samples are much denser than f = 0.5 ones. This
/// generator reproduces all three: Pareto degrees, nested communities
/// (sub-community within community) wired by stub matching with
/// level-biased edge placement, plus a triad-closure pass.
struct SocialGraphOptions {
  /// Base-graph size. The paper samples 1000-node trust graphs; tens
  /// of thousands of nodes are enough that samples never exhaust it.
  std::size_t num_nodes = 100'000;

  /// Degree distribution: Pareto(shape) with the given minimum,
  /// capped. Mean degree is set to match the crawl's 2*28M/3M ~ 18.7;
  /// the heavy tail (shape 1.8) is what makes full-BFS (f = 1.0)
  /// samples denser than partial ones, as the paper observes.
  double mean_degree = 18.7;
  double degree_shape = 1.8;
  std::size_t max_degree = 1000;

  /// Nested block sizes (node ids are block-contiguous).
  std::size_t sub_community_size = 500;
  std::size_t community_size = 5000;

  /// Fraction of each node's stubs wired inside its sub-community /
  /// community / globally. Must sum to <= 1 (remainder is global).
  double weight_sub = 0.70;
  double weight_community = 0.23;

  /// Extra triangle-closing edges as a fraction of the base edges,
  /// lifting clustering to social-graph levels.
  double triad_fraction = 0.25;
};

/// Builds the synthetic social base graph (connected).
Graph synthetic_social_graph(const SocialGraphOptions& opts, Rng& rng);

/// The previous-generation model (Holme–Kim preferential attachment
/// with triad closure) — kept for generator comparisons; it lacks the
/// mesoscale community structure of real social graphs.
Graph holme_kim_social_graph(std::size_t num_nodes, std::size_t attachment,
                             double triad_prob, Rng& rng);

}  // namespace ppo::graph
