// Articulation points (cut vertices) and biconnectivity — the graph
// properties the paper's privacy analysis leans on: a single internal
// observer "which is not a cut vertex in the trust graph has very
// limited capability" (§III-E-1), and a colluding set that "forms a
// vertex cut" can control pseudonym flow between the sides
// (§III-E-3). These utilities quantify how exposed a trust graph is.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace ppo::graph {

/// All articulation points (vertices whose removal increases the
/// number of connected components), via Tarjan's low-link DFS.
std::vector<NodeId> articulation_points(GraphView g);

/// True iff removing `v` disconnects some currently-connected pair.
bool is_cut_vertex(GraphView g, NodeId v);

/// Fraction of vertices that are articulation points — a privacy
/// exposure indicator for a trust graph (§III-E): every cut vertex is
/// a spot where one compromised user partitions the pseudonym flow.
double cut_vertex_fraction(GraphView g);

}  // namespace ppo::graph
