#include "graph/graph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/csr.hpp"

namespace ppo::graph {

std::size_t NodeMask::count(std::size_t n) const {
  if (included_.empty()) return n;
  PPO_CHECK_MSG(included_.size() == n, "mask size mismatch");
  std::size_t c = 0;
  for (char b : included_) c += (b != 0);
  return c;
}

Graph::Graph() = default;
Graph::Graph(std::size_t n) : adj_(n) {}
Graph::Graph(const Graph&) = default;
Graph::Graph(Graph&&) noexcept = default;
Graph& Graph::operator=(const Graph&) = default;
Graph& Graph::operator=(Graph&&) noexcept = default;
Graph::~Graph() = default;

Graph Graph::from_csr(CsrGraph csr) {
  return from_csr(std::make_shared<const CsrGraph>(std::move(csr)));
}

Graph Graph::from_csr(std::shared_ptr<const CsrGraph> csr) {
  PPO_CHECK_MSG(csr != nullptr, "null CSR backing");
  PPO_CHECK_MSG(csr->sorted_neighbors(),
                "Graph requires sorted CSR neighbor slices");
  Graph g;
  g.num_edges_ = csr->num_edges();
  g.csr_ = std::move(csr);
  return g;
}

std::size_t Graph::num_nodes() const {
  return csr_ ? csr_->num_nodes() : adj_.size();
}

std::size_t Graph::degree(NodeId v) const {
  return csr_ ? csr_->degree(v) : adj_[v].size();
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  if (csr_) return csr_->neighbors(v);
  return {adj_[v].data(), adj_[v].size()};
}

void Graph::thaw() {
  if (!csr_) return;
  const CsrGraph& csr = *csr_;
  adj_.assign(csr.num_nodes(), {});
  for (NodeId v = 0; v < csr.num_nodes(); ++v) {
    const auto slice = csr.neighbors(v);
    adj_[v].assign(slice.begin(), slice.end());
  }
  num_edges_ = csr.num_edges();
  finalized_ = true;  // CSR slices are sorted
  csr_.reset();
}

NodeId Graph::add_nodes(std::size_t count) {
  thaw();
  const auto first = static_cast<NodeId>(adj_.size());
  adj_.resize(adj_.size() + count);
  return first;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  thaw();
  PPO_CHECK_MSG(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  if (u == v) return false;
  if (finalized_) {
    // Sorted-insert path: membership and insertion both O(log deg) +
    // shift; the graph stays finalized.
    const auto pos_u = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
    if (pos_u != adj_[u].end() && *pos_u == v) return false;
    adj_[u].insert(pos_u, v);
    const auto pos_v = std::lower_bound(adj_[v].begin(), adj_[v].end(), u);
    adj_[v].insert(pos_v, u);
    ++num_edges_;
    return true;
  }
  if (has_edge(u, v)) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  thaw();
  PPO_CHECK_MSG(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  if (!has_edge(u, v)) return false;
  const auto erase_from = [](std::vector<NodeId>& list, NodeId target) {
    const auto it = std::find(list.begin(), list.end(), target);
    list.erase(it);  // order-preserving: a finalized list stays sorted
  };
  erase_from(adj_[u], v);
  erase_from(adj_[v], u);
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (csr_) return csr_->has_edge(u, v);
  PPO_CHECK_MSG(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  // Probe the smaller adjacency list.
  const auto& list = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId target = adj_[u].size() <= adj_[v].size() ? v : u;
  if (finalized_)
    return std::binary_search(list.begin(), list.end(), target);
  return std::find(list.begin(), list.end(), target) != list.end();
}

double Graph::average_degree() const {
  const std::size_t n = num_nodes();
  if (n == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) / static_cast<double>(n);
}

void Graph::finalize() {
  if (csr_) return;  // already sorted & immutable
  for (auto& list : adj_) std::sort(list.begin(), list.end());
  finalized_ = true;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  if (csr_) return csr_->edges();
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < adj_.size(); ++u)
    for (NodeId v : adj_[u])
      if (u < v) out.emplace_back(u, v);
  return out;
}

Graph Graph::induced_subgraph(const std::vector<NodeId>& nodes) const {
  return from_csr(induced_subgraph_csr(*this, nodes));
}

}  // namespace ppo::graph
