#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace ppo::graph {

std::size_t NodeMask::count(std::size_t n) const {
  if (included_.empty()) return n;
  PPO_CHECK_MSG(included_.size() == n, "mask size mismatch");
  std::size_t c = 0;
  for (char b : included_) c += (b != 0);
  return c;
}

NodeId Graph::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(adj_.size());
  adj_.resize(adj_.size() + count);
  return first;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  PPO_CHECK_MSG(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  if (u == v) return false;
  if (has_edge(u, v)) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
  finalized_ = false;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  PPO_CHECK_MSG(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  if (!has_edge(u, v)) return false;
  const auto erase_from = [](std::vector<NodeId>& list, NodeId target) {
    const auto it = std::find(list.begin(), list.end(), target);
    list.erase(it);
  };
  erase_from(adj_[u], v);
  erase_from(adj_[v], u);
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  PPO_CHECK_MSG(u < adj_.size() && v < adj_.size(), "edge endpoint out of range");
  // Probe the smaller adjacency list.
  const auto& list = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId target = adj_[u].size() <= adj_[v].size() ? v : u;
  if (finalized_)
    return std::binary_search(list.begin(), list.end(), target);
  return std::find(list.begin(), list.end(), target) != list.end();
}

double Graph::average_degree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(adj_.size());
}

void Graph::finalize() {
  for (auto& list : adj_) std::sort(list.begin(), list.end());
  finalized_ = true;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < adj_.size(); ++u)
    for (NodeId v : adj_[u])
      if (u < v) out.emplace_back(u, v);
  return out;
}

Graph Graph::induced_subgraph(const std::vector<NodeId>& nodes) const {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(nodes.size());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    PPO_CHECK_MSG(nodes[i] < adj_.size(), "subgraph node out of range");
    const bool inserted = remap.emplace(nodes[i], i).second;
    PPO_CHECK_MSG(inserted, "duplicate node in subgraph selection");
  }
  Graph sub(nodes.size());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    for (NodeId nb : adj_[nodes[i]]) {
      const auto it = remap.find(nb);
      if (it != remap.end() && i < it->second) sub.add_edge(i, it->second);
    }
  }
  sub.finalize();
  return sub;
}

}  // namespace ppo::graph
