// Graph serialization: whitespace edge lists (loadable by most graph
// tools) and Graphviz DOT for visual inspection of small overlays.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace ppo::graph {

/// Writes "u v" per line, preceded by a "# nodes <n>" header so
/// isolated nodes survive a round trip.
void write_edge_list(std::ostream& os, GraphView g);

/// Reads the format produced by write_edge_list. Lines starting with
/// '#' other than the header are comments. Throws on malformed input.
Graph read_edge_list(std::istream& is);

/// Writes an undirected Graphviz DOT graph. Nodes excluded by `mask`
/// are rendered dashed grey (offline).
void write_dot(std::ostream& os, GraphView g, const NodeMask& mask = {},
               const std::string& name = "overlay");

}  // namespace ppo::graph
