#include "graph/generators.hpp"

#include <cmath>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "graph/csr.hpp"

namespace ppo::graph {

// All generators build through CsrBuilder — one pooled neighbor array
// plus a flat membership set — and emit an immutable CSR-backed Graph,
// never the intermediate vector-of-vectors. The builder keeps neighbor
// slices in insertion order and answers membership exactly like
// Graph::add_edge did, so every RNG draw sequence (and therefore every
// generated graph) is bit-identical to the adjacency-list path.

Graph erdos_renyi_gnm(std::size_t n, std::size_t edges, Rng& rng) {
  PPO_CHECK_MSG(n >= 2 || edges == 0, "G(n,M) needs n >= 2 for edges");
  const std::size_t max_edges = n * (n - 1) / 2;
  PPO_CHECK_MSG(edges <= max_edges, "too many edges requested");
  CsrBuilder b(n);
  std::size_t added = 0;
  while (added < edges) {
    const auto u = static_cast<NodeId>(rng.uniform_u64(n));
    const auto v = static_cast<NodeId>(rng.uniform_u64(n));
    if (b.add_edge(u, v)) ++added;
  }
  return Graph::from_csr(b.build());
}

Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  PPO_CHECK_MSG(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (p <= 0.0 || n < 2) return Graph::from_csr(CsrGraph::from_edges(n, {}));
  // The skipping enumeration below never revisits a pair, so the
  // builder can skip membership tracking entirely.
  CsrBuilder b(n, /*track_membership=*/false);
  if (p >= 1.0) {
    for (NodeId a = 0; a < n; ++a)
      for (NodeId bb = a + 1; bb < n; ++bb) b.add_edge(a, bb);
    return Graph::from_csr(b.build());
  }
  // Batagelj–Brandes geometric skipping over the edge enumeration:
  // O(#edges) expected time.
  const double log_q = std::log(1.0 - p);
  std::int64_t v = 1, w = -1;
  while (v < static_cast<std::int64_t>(n)) {
    const double r = rng.uniform_double();
    w += 1 + static_cast<std::int64_t>(std::log(1.0 - r) / log_q);
    while (w >= v && v < static_cast<std::int64_t>(n)) {
      w -= v;
      ++v;
    }
    if (v < static_cast<std::int64_t>(n))
      b.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
  }
  return Graph::from_csr(b.build());
}

namespace {

/// Picks a target for preferential attachment: a uniform draw from the
/// repeated-endpoint list is proportional to degree.
NodeId preferential_target(const std::vector<NodeId>& endpoints, Rng& rng) {
  return endpoints[rng.uniform_u64(endpoints.size())];
}

}  // namespace

Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  return holme_kim(n, m, 0.0, rng);
}

Graph holme_kim(std::size_t n, std::size_t m, double triad_prob, Rng& rng) {
  PPO_CHECK_MSG(m >= 1, "attachment parameter m must be >= 1");
  PPO_CHECK_MSG(n > m, "need more nodes than attachment edges");
  PPO_CHECK_MSG(triad_prob >= 0.0 && triad_prob <= 1.0,
                "triad_prob must be a probability");
  CsrBuilder b(n);
  // Seed: a connected clique-ish core of m+1 nodes.
  for (NodeId u = 0; u + 1 <= m; ++u) b.add_edge(u, u + 1);

  // Endpoint multiset: node id appears once per incident edge.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * m);
  for (NodeId u = 0; u + 1 <= m; ++u) {
    endpoints.push_back(u);
    endpoints.push_back(u + 1);
  }

  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    NodeId last_target = 0;
    bool have_last = false;
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < m && attempts < 50 * m + 100) {
      ++attempts;
      NodeId target;
      if (have_last && rng.bernoulli(triad_prob) &&
          b.degree(last_target) > 0) {
        // Triad step: connect to a random neighbor of the previous
        // target, closing a triangle. Builder slices keep insertion
        // order, so the indexed draw matches the adjacency-list path.
        const auto nbrs = b.neighbors(last_target);
        target = nbrs[rng.uniform_u64(nbrs.size())];
      } else {
        target = preferential_target(endpoints, rng);
      }
      if (!b.add_edge(v, target)) continue;
      endpoints.push_back(v);
      endpoints.push_back(target);
      last_target = target;
      have_last = true;
      ++added;
    }
  }
  return Graph::from_csr(b.build());
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  PPO_CHECK_MSG(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
  PPO_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta must be a probability");
  CsrBuilder b(n);
  for (NodeId u = 0; u < n; ++u)
    for (std::size_t j = 1; j <= k; ++j)
      b.add_edge(u, static_cast<NodeId>((u + j) % n));

  // Rewire each lattice edge's far endpoint with probability beta.
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      if (!rng.bernoulli(beta)) continue;
      const auto old_v = static_cast<NodeId>((u + j) % n);
      if (!b.has_edge(u, old_v)) continue;  // already rewired away
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto w = static_cast<NodeId>(rng.uniform_u64(n));
        if (w == u || b.has_edge(u, w)) continue;
        b.remove_edge(u, old_v);
        b.add_edge(u, w);
        break;
      }
    }
  }
  return Graph::from_csr(b.build());
}

Graph ring(std::size_t n) {
  CsrBuilder b(n);  // membership: n == 2 wraps onto the same edge
  if (n >= 2)
    for (NodeId u = 0; u < n; ++u)
      b.add_edge(u, static_cast<NodeId>((u + 1) % n));
  return Graph::from_csr(b.build());
}

Graph path_graph(std::size_t n) {
  CsrBuilder b(n, /*track_membership=*/false);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  return Graph::from_csr(b.build());
}

Graph complete(std::size_t n) {
  CsrBuilder b(n, /*track_membership=*/false);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return Graph::from_csr(b.build());
}

Graph star(std::size_t leaves) {
  CsrBuilder b(leaves + 1, /*track_membership=*/false);
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return Graph::from_csr(b.build());
}

}  // namespace ppo::graph
