// Compressed-sparse-row graph storage for crawl-scale work.
//
// The adjacency-list `Graph` costs one heap allocation per node plus
// vector bookkeeping — fine at bench scale, prohibitive at the ~3M
// nodes / ~28M edges of the Facebook crawl the paper samples. This
// header adds three pieces:
//
//  * `CsrGraph`   — immutable offsets + flat neighbor array. Two
//                   allocations total, O(log deg) `has_edge`, spans
//                   for iteration.
//  * `CsrBuilder` — incremental construction without the intermediate
//                   vector-of-vectors: per-node adjacency slices live
//                   in one pooled array (relocating geometric growth),
//                   edge membership in a flat hash set. Neighbor
//                   slices keep INSERTION order, so generators that
//                   draw random neighbors by index (Holme–Kim triads,
//                   socialgen triad closure) produce bit-identical
//                   graphs to the old adjacency-list path.
//  * `GraphView`  — non-owning span-based view consumed by every
//                   algorithm in this directory; implicitly
//                   constructible from `Graph`, `CsrGraph` or
//                   `CsrBuilder` so call sites keep compiling.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "graph/graph.hpp"

namespace ppo::graph {

/// Immutable CSR graph: `offsets_[v] .. offsets_[v+1]` indexes the
/// neighbor slice of v in `neighbors_`. Slices are sorted unless the
/// graph was assigned with `sort_neighbors = false` (scratch reuse on
/// the measurement hot path, where only iteration is needed).
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an undirected simple edge list (each edge once, in
  /// either orientation, no self loops or duplicates).
  static CsrGraph from_edges(std::size_t n,
                             std::span<const std::pair<NodeId, NodeId>> edges);

  /// Rebuilds in place from an edge list, reusing internal buffer
  /// capacity — the snapshot-free measurement path calls this once
  /// per sample with zero steady-state allocation. When
  /// `sort_neighbors` is false the per-node slices are left in
  /// counting-sort order and `has_edge` is unavailable.
  void assign_from_edges(std::size_t n,
                         std::span<const std::pair<NodeId, NodeId>> edges,
                         bool sort_neighbors = true);

  std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const { return neighbors_.size() / 2; }

  std::size_t degree(NodeId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// O(log deg) membership probe on the smaller endpoint's slice.
  /// Requires sorted neighbor slices.
  bool has_edge(NodeId u, NodeId v) const;

  bool sorted_neighbors() const { return sorted_; }

  double average_degree() const {
    const std::size_t n = num_nodes();
    return n == 0 ? 0.0
                  : static_cast<double>(neighbors_.size()) /
                        static_cast<double>(n);
  }

  /// All edges as (u, v) with u < v (compatibility helper; allocates).
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Heap bytes held by the two arrays (capacity, not size) — feeds
  /// the bytes-per-node / bytes-per-edge telemetry.
  std::size_t memory_bytes() const {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           neighbors_.capacity() * sizeof(NodeId);
  }

 private:
  friend class CsrBuilder;

  std::vector<std::uint64_t> offsets_;
  std::vector<NodeId> neighbors_;
  bool sorted_ = true;
};

/// Incremental graph builder with `Graph::add_edge` semantics (self
/// loops and duplicates rejected, membership answered at any time) but
/// no per-node heap vectors: adjacency slices live in one pool with
/// geometric relocation, membership in a flat hash set of packed edge
/// keys. Neighbor slices preserve insertion order until `build()`,
/// which emits a sorted `CsrGraph`.
class CsrBuilder {
 public:
  /// `track_membership = false` skips the hash set for generators that
  /// never produce duplicates (G(n,p) skipping, structured graphs);
  /// `add_edge` then trusts the caller and `has_edge`/`remove_edge`
  /// must not be used.
  explicit CsrBuilder(std::size_t n = 0, bool track_membership = true);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  NodeId add_nodes(std::size_t count);

  /// Adds undirected edge {u, v}. Returns false (and does nothing) on
  /// self loops and — when membership is tracked — duplicates.
  bool add_edge(NodeId u, NodeId v);

  /// Removes {u, v} preserving the relative insertion order of the
  /// remaining neighbors (the adjacency-list `Graph` erase contract).
  bool remove_edge(NodeId u, NodeId v);

  /// O(1) hash probe. Requires membership tracking.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t degree(NodeId v) const { return nodes_[v].len; }

  /// Neighbors of v in insertion order. Invalidated by the next
  /// `add_edge` (the slice may relocate inside the pool).
  std::span<const NodeId> neighbors(NodeId v) const {
    return {pool_.data() + nodes_[v].offset, nodes_[v].len};
  }

  /// Sorted immutable CSR of the current edge set.
  CsrGraph build() const;

 private:
  struct NodeSlice {
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  void append_neighbor(NodeId u, NodeId v);

  std::vector<NodeSlice> nodes_;
  std::vector<NodeId> pool_;
  FlatMap64 edge_set_;
  std::size_t num_edges_ = 0;
  bool track_membership_ = true;
};

/// Non-owning view over any graph backing store. Cheap to copy (three
/// pointers); algorithms take it by value. A `Graph` that is itself
/// CSR-backed unwraps to its CSR, so the view costs one predictable
/// branch per call, not two.
class GraphView {
 public:
  GraphView(const Graph& g);           // NOLINT(google-explicit-constructor)
  GraphView(const CsrGraph& g)         // NOLINT(google-explicit-constructor)
      : csr_(&g) {}
  GraphView(const CsrBuilder& b)       // NOLINT(google-explicit-constructor)
      : builder_(&b) {}

  std::size_t num_nodes() const;
  std::size_t num_edges() const;
  std::size_t degree(NodeId v) const;
  std::span<const NodeId> neighbors(NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const;
  double average_degree() const;

  /// True when `has_edge` is backed by binary search / hash probe —
  /// the precondition the clustering routines check.
  bool has_fast_edge_probe() const;

 private:
  const Graph* graph_ = nullptr;
  const CsrGraph* csr_ = nullptr;
  const CsrBuilder* builder_ = nullptr;
};

/// Induced subgraph over `nodes` (the i-th entry becomes node i) as an
/// immutable CSR — the crawl-scale replacement for
/// `Graph::induced_subgraph`'s vector-of-vectors result.
CsrGraph induced_subgraph_csr(GraphView g, const std::vector<NodeId>& nodes);

}  // namespace ppo::graph
