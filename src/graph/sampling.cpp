#include "graph/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/check.hpp"

namespace ppo::graph {

Graph invitation_sample(GraphView base, const InvitationSampleOptions& opts,
                        Rng& rng) {
  const std::size_t n = base.num_nodes();
  PPO_CHECK_MSG(opts.target_size >= 1, "sample size must be >= 1");
  PPO_CHECK_MSG(opts.target_size <= n, "sample larger than base graph");
  PPO_CHECK_MSG(opts.f >= 0.0 && opts.f <= 1.0, "f must be in [0,1]");

  std::vector<char> selected(n, 0);
  std::vector<NodeId> sample;
  sample.reserve(opts.target_size);
  std::deque<NodeId> to_visit;

  const auto select = [&](NodeId v) {
    selected[v] = 1;
    sample.push_back(v);
    to_visit.push_back(v);
  };

  select(static_cast<NodeId>(rng.uniform_u64(n)));

  while (sample.size() < opts.target_size) {
    if (to_visit.empty()) {
      // Ran out of frontier before reaching the target: the paper
      // assumes a connected trust graph; restart from a fresh
      // unselected node to make the sampler total on any base graph.
      NodeId fresh = 0;
      bool found = false;
      for (NodeId v = 0; v < n; ++v) {
        if (!selected[v]) {
          fresh = v;
          found = true;
          break;
        }
      }
      PPO_CHECK_MSG(found, "base graph exhausted before target size");
      select(fresh);
      continue;
    }
    const NodeId u = to_visit.front();
    to_visit.pop_front();

    std::vector<NodeId> unvisited;
    for (NodeId nb : base.neighbors(u))
      if (!selected[nb]) unvisited.push_back(nb);
    if (unvisited.empty()) continue;

    const auto degree = static_cast<double>(base.degree(u));
    const auto want = static_cast<std::size_t>(
        std::max(1.0, std::floor(opts.f * degree)));
    const std::size_t room = opts.target_size - sample.size();
    const std::size_t take = std::min({want, unvisited.size(), room});

    for (NodeId v : rng.sample(unvisited, take)) select(v);
  }

  return Graph::from_csr(induced_subgraph_csr(base, sample));
}

}  // namespace ppo::graph
