#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace ppo::graph {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void scale(std::vector<double>& a, double f) {
  for (double& x : a) x *= f;
}

/// y = D^{-1/2} A D^{-1/2} x for the masked-degree-free full graph.
void apply_normalized_adjacency(GraphView g,
                                const std::vector<double>& inv_sqrt_deg,
                                const std::vector<double>& x,
                                std::vector<double>& y) {
  std::fill(y.begin(), y.end(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (inv_sqrt_deg[u] == 0.0) continue;
    double acc = 0.0;
    for (NodeId v : g.neighbors(u)) acc += x[v] * inv_sqrt_deg[v];
    y[u] = acc * inv_sqrt_deg[u];
  }
}

}  // namespace

double second_eigenvalue_estimate(GraphView g, Rng& rng,
                                  std::size_t iterations) {
  const std::size_t n = g.num_nodes();
  if (n < 2 || g.num_edges() == 0) return 0.0;

  std::vector<double> inv_sqrt_deg(n, 0.0);
  std::vector<double> principal(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0) {
      inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));
      principal[v] = std::sqrt(static_cast<double>(g.degree(v)));
    }
  }
  const double pn = norm(principal);
  PPO_CHECK(pn > 0.0);
  scale(principal, 1.0 / pn);

  // Random start, deflated against the principal eigenvector.
  std::vector<double> x(n), y(n);
  for (double& xi : x) xi = rng.uniform_double(-1.0, 1.0);
  const double proj0 = dot(x, principal);
  for (std::size_t i = 0; i < n; ++i) x[i] -= proj0 * principal[i];
  double xn = norm(x);
  if (xn == 0.0) return 0.0;
  scale(x, 1.0 / xn);

  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    apply_normalized_adjacency(g, inv_sqrt_deg, x, y);
    // Re-deflate to counter numerical drift toward the principal.
    const double proj = dot(y, principal);
    for (std::size_t i = 0; i < n; ++i) y[i] -= proj * principal[i];
    const double yn = norm(y);
    if (yn < 1e-14) return 0.0;
    lambda = yn;  // since ||x|| == 1, ||y|| estimates |lambda_2|
    scale(y, 1.0 / yn);
    x.swap(y);
  }
  return std::min(lambda, 1.0);
}

double spectral_gap(GraphView g, Rng& rng, std::size_t iterations) {
  return std::clamp(1.0 - second_eigenvalue_estimate(g, rng, iterations), 0.0,
                    1.0);
}

}  // namespace ppo::graph
