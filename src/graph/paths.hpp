// Shortest-path metrics over (optionally masked) graphs, including the
// paper's normalized average path length.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace ppo::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS hop distances from `source` within the mask-induced subgraph.
/// Unreachable or excluded nodes get kUnreachable.
std::vector<std::uint32_t> bfs_distances(GraphView g, NodeId source,
                                         const NodeMask& mask = {});

/// Average shortest-path length over connected pairs in the largest
/// component of the mask-induced subgraph. Exact when the component
/// has <= `exact_threshold` nodes; otherwise estimated by BFS from
/// `sample_sources` random sources. Returns 0 for components of
/// size <= 1.
double average_path_length(GraphView g, Rng& rng,
                           const NodeMask& mask = {},
                           std::size_t sample_sources = 64,
                           std::size_t exact_threshold = 2048);

/// The paper's robustness metric (§IV-C): average path length in the
/// largest connected component, divided by the component size and
/// multiplied by `total_nodes` (all nodes, including offline ones).
/// Penalizes short paths measured in tiny fragments.
double normalized_average_path_length(GraphView g, Rng& rng,
                                      std::size_t total_nodes,
                                      const NodeMask& mask = {},
                                      std::size_t sample_sources = 64);

/// Lower-bound diameter estimate of the mask-induced subgraph via a
/// few rounds of double-sweep BFS.
std::uint32_t diameter_estimate(GraphView g, Rng& rng,
                                const NodeMask& mask = {},
                                std::size_t sweeps = 4);

}  // namespace ppo::graph
