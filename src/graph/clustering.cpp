#include "graph/clustering.hpp"

#include "common/check.hpp"

namespace ppo::graph {

double local_clustering(GraphView g, NodeId v) {
  PPO_CHECK_MSG(g.has_fast_edge_probe(),
                "clustering requires a finalized graph");
  const auto nbrs = g.neighbors(v);
  const std::size_t d = nbrs.size();
  if (d < 2) return 0.0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i + 1; j < d; ++j)
      closed += g.has_edge(nbrs[i], nbrs[j]);
  return 2.0 * static_cast<double>(closed) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double average_clustering(GraphView g) {
  if (g.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) total += local_clustering(g, v);
  return total / static_cast<double>(g.num_nodes());
}

double transitivity(GraphView g) {
  PPO_CHECK_MSG(g.has_fast_edge_probe(),
                "transitivity requires a finalized graph");
  std::size_t triangles_x3 = 0;  // each triangle counted once per vertex
  std::size_t triples = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    const std::size_t d = nbrs.size();
    if (d < 2) continue;
    triples += d * (d - 1) / 2;
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = i + 1; j < d; ++j)
        triangles_x3 += g.has_edge(nbrs[i], nbrs[j]);
  }
  return triples == 0
             ? 0.0
             : static_cast<double>(triangles_x3) / static_cast<double>(triples);
}

}  // namespace ppo::graph
