// Degree metrics restricted to a node mask: for churned overlays only
// online nodes and the edges among them count.
#pragma once

#include "common/histogram.hpp"
#include "graph/csr.hpp"

namespace ppo::graph {

/// Degree of `v` counting only neighbors included by `mask`.
std::size_t masked_degree(GraphView g, NodeId v, const NodeMask& mask);

/// Histogram of masked degrees over included nodes — the paper's
/// Figure 5 data ("number of nodes" per degree value).
Histogram degree_histogram(GraphView g, const NodeMask& mask = {});

}  // namespace ppo::graph
