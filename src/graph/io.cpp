#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace ppo::graph {

void write_edge_list(std::ostream& os, GraphView g) {
  os << "# nodes " << g.num_nodes() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.neighbors(u))
      if (u < v) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  CsrBuilder b;
  std::string line;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;
      if (word == "nodes") {
        std::size_t n = 0;
        PPO_CHECK_MSG(static_cast<bool>(header >> n), "malformed node header");
        PPO_CHECK_MSG(b.num_edges() == 0, "node header after edges");
        b = CsrBuilder(n);
        have_header = true;
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    PPO_CHECK_MSG(static_cast<bool>(row >> u >> v), "malformed edge line: " + line);
    const std::uint64_t needed = std::max(u, v) + 1;
    if (needed > b.num_nodes()) {
      PPO_CHECK_MSG(!have_header, "edge endpoint exceeds declared node count");
      b.add_nodes(needed - b.num_nodes());
    }
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Graph::from_csr(b.build());
}

void write_dot(std::ostream& os, GraphView g, const NodeMask& mask,
               const std::string& name) {
  os << "graph " << name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    if (!mask.contains(v)) os << " [style=dashed, color=grey]";
    os << ";\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.neighbors(u))
      if (u < v) os << "  n" << u << " -- n" << v << ";\n";
  os << "}\n";
}

}  // namespace ppo::graph
