#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace ppo::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# nodes " << g.num_nodes() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  Graph g;
  std::string line;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;
      if (word == "nodes") {
        std::size_t n = 0;
        PPO_CHECK_MSG(static_cast<bool>(header >> n), "malformed node header");
        g = Graph(n);
        have_header = true;
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    PPO_CHECK_MSG(static_cast<bool>(row >> u >> v), "malformed edge line: " + line);
    const std::uint64_t needed = std::max(u, v) + 1;
    if (needed > g.num_nodes()) {
      PPO_CHECK_MSG(!have_header, "edge endpoint exceeds declared node count");
      g.add_nodes(needed - g.num_nodes());
    }
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  g.finalize();
  return g;
}

void write_dot(std::ostream& os, const Graph& g, const NodeMask& mask,
               const std::string& name) {
  os << "graph " << name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    if (!mask.contains(v)) os << " [style=dashed, color=grey]";
    os << ";\n";
  }
  for (const auto& [u, v] : g.edges())
    os << "  n" << u << " -- n" << v << ";\n";
  os << "}\n";
}

}  // namespace ppo::graph
