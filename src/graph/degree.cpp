#include "graph/degree.hpp"

namespace ppo::graph {

std::size_t masked_degree(GraphView g, NodeId v, const NodeMask& mask) {
  if (mask.empty()) return g.degree(v);
  std::size_t d = 0;
  for (NodeId nb : g.neighbors(v)) d += mask.contains(nb);
  return d;
}

Histogram degree_histogram(GraphView g, const NodeMask& mask) {
  Histogram h;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!mask.contains(v)) continue;
    h.add(masked_degree(g, v, mask));
  }
  return h;
}

}  // namespace ppo::graph
