#include "graph/articulation.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/components.hpp"

namespace ppo::graph {

std::vector<NodeId> articulation_points(GraphView g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<NodeId> parent(n, n == 0 ? 0 : static_cast<NodeId>(n));
  std::vector<char> is_cut(n, 0);
  std::uint32_t timer = 1;

  // Iterative Tarjan DFS (explicit stack: node + neighbor cursor).
  struct Frame {
    NodeId v;
    std::size_t next_neighbor;
    std::size_t dfs_children;
  };
  std::vector<Frame> stack;

  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    stack.push_back({root, 0, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      const auto nbrs = g.neighbors(v);
      if (frame.next_neighbor < nbrs.size()) {
        const NodeId w = nbrs[frame.next_neighbor++];
        if (disc[w] == 0) {
          parent[w] = v;
          ++frame.dfs_children;
          disc[w] = low[w] = timer++;
          stack.push_back({w, 0, 0});
        } else if (w != parent[v]) {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        const std::size_t children = frame.dfs_children;
        stack.pop_back();  // invalidates `frame`
        if (!stack.empty()) {
          const NodeId p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          // Non-root p is a cut vertex if some child's subtree cannot
          // reach above p.
          if (parent[p] < n && low[v] >= disc[p]) is_cut[p] = 1;
        } else if (children >= 2) {
          // v is a DFS root: cut iff it has >= 2 DFS children.
          is_cut[v] = 1;
        }
      }
    }
  }

  std::vector<NodeId> result;
  for (NodeId v = 0; v < n; ++v)
    if (is_cut[v]) result.push_back(v);
  return result;
}

bool is_cut_vertex(GraphView g, NodeId v) {
  PPO_CHECK_MSG(v < g.num_nodes(), "vertex out of range");
  const auto cuts = articulation_points(g);
  return std::binary_search(cuts.begin(), cuts.end(), v);
}

double cut_vertex_fraction(GraphView g) {
  if (g.num_nodes() == 0) return 0.0;
  return static_cast<double>(articulation_points(g).size()) /
         static_cast<double>(g.num_nodes());
}

}  // namespace ppo::graph
