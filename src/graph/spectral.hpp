// Spectral expansion estimate. The paper's related work (Naor &
// Wieder) motivates expander-like overlays; we expose the spectral gap
// of the normalized adjacency operator as an extra robustness metric:
// gap = 1 - |lambda_2|, larger gap = better expansion.
#pragma once

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace ppo::graph {

/// Estimates |lambda_2| of the normalized adjacency matrix
/// D^{-1/2} A D^{-1/2} by power iteration with deflation of the known
/// principal eigenvector (sqrt of degrees). The graph should be
/// connected; isolated nodes are ignored.
double second_eigenvalue_estimate(GraphView g, Rng& rng,
                                  std::size_t iterations = 200);

/// Spectral gap 1 - |lambda_2| (clamped to [0, 1]).
double spectral_gap(GraphView g, Rng& rng, std::size_t iterations = 200);

}  // namespace ppo::graph
