// Connected-component analysis, optionally restricted to a node mask
// (used for the online-induced overlay: offline nodes are excluded
// without materializing a subgraph).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"

namespace ppo::graph {

/// Result of a component decomposition over the included nodes.
struct Components {
  /// Component id per node; kExcluded for nodes outside the mask.
  std::vector<std::uint32_t> component_of;
  /// Size of each component, indexed by component id.
  std::vector<std::size_t> sizes;

  static constexpr std::uint32_t kExcluded = 0xFFFFFFFFu;

  std::size_t count() const { return sizes.size(); }
  /// Id of the largest component (ties broken by lower id); kExcluded
  /// when there are no included nodes.
  std::uint32_t largest() const;
  std::size_t largest_size() const;
};

/// Decomposes the subgraph induced by `mask` into connected components.
Components connected_components(GraphView g, const NodeMask& mask = {});

/// Fraction of included nodes NOT in the largest connected component —
/// the paper's connectivity metric (0 when the induced graph is
/// connected or empty).
double fraction_disconnected(GraphView g, const NodeMask& mask = {});

/// True iff the subgraph induced by `mask` is connected (vacuously
/// true for <= 1 included node).
bool is_connected(GraphView g, const NodeMask& mask = {});

}  // namespace ppo::graph
