#include "graph/components.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ppo::graph {

std::uint32_t Components::largest() const {
  if (sizes.empty()) return kExcluded;
  const auto it = std::max_element(sizes.begin(), sizes.end());
  return static_cast<std::uint32_t>(it - sizes.begin());
}

std::size_t Components::largest_size() const {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

Components connected_components(GraphView g, const NodeMask& mask) {
  const std::size_t n = g.num_nodes();
  PPO_CHECK_MSG(mask.empty() || mask.size() == n, "mask size mismatch");
  Components result;
  result.component_of.assign(n, Components::kExcluded);

  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (!mask.contains(root)) continue;
    if (result.component_of[root] != Components::kExcluded) continue;
    const auto comp = static_cast<std::uint32_t>(result.sizes.size());
    result.sizes.push_back(0);
    stack.push_back(root);
    result.component_of[root] = comp;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      ++result.sizes[comp];
      for (NodeId v : g.neighbors(u)) {
        if (!mask.contains(v)) continue;
        if (result.component_of[v] != Components::kExcluded) continue;
        result.component_of[v] = comp;
        stack.push_back(v);
      }
    }
  }
  return result;
}

double fraction_disconnected(GraphView g, const NodeMask& mask) {
  const Components comps = connected_components(g, mask);
  std::size_t included = 0;
  for (std::uint32_t c : comps.component_of)
    included += (c != Components::kExcluded);
  if (included == 0) return 0.0;
  const std::size_t in_largest = comps.largest_size();
  return static_cast<double>(included - in_largest) /
         static_cast<double>(included);
}

bool is_connected(GraphView g, const NodeMask& mask) {
  return connected_components(g, mask).count() <= 1;
}

}  // namespace ppo::graph
