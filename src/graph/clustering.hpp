// Clustering coefficients — used to validate that the synthetic social
// graph has Facebook-like triadic closure (BA alone does not).
#pragma once

#include "graph/csr.hpp"

namespace ppo::graph {

/// Local clustering coefficient of `v`: closed neighbor pairs /
/// possible neighbor pairs. 0 for degree < 2. Requires a finalized
/// graph (binary-search edge probes).
double local_clustering(GraphView g, NodeId v);

/// Mean local clustering coefficient over all nodes (Watts–Strogatz
/// definition).
double average_clustering(GraphView g);

/// Global transitivity: 3 * triangles / connected triples.
double transitivity(GraphView g);

}  // namespace ppo::graph
