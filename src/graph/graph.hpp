// Undirected simple graph used for trust graphs, overlay snapshots and
// reference random graphs. Nodes are dense ids [0, n). Parallel edges
// and self loops are rejected at insertion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ppo::graph {

using NodeId = std::uint32_t;

/// Marks a subset of nodes (e.g. the currently online ones). Empty
/// mask means "all nodes included".
class NodeMask {
 public:
  NodeMask() = default;
  explicit NodeMask(std::size_t n, bool initially_included = true)
      : included_(n, initially_included ? 1 : 0) {}

  bool empty() const { return included_.empty(); }
  std::size_t size() const { return included_.size(); }

  bool contains(NodeId v) const {
    return included_.empty() || included_[v] != 0;
  }
  void set(NodeId v, bool included) { included_[v] = included ? 1 : 0; }

  /// Grows the mask to cover `n` nodes (new entries get `included`).
  void resize(std::size_t n, bool included) {
    included_.resize(n, included ? 1 : 0);
  }

  /// Number of included nodes, assuming the mask covers `n` nodes.
  std::size_t count(std::size_t n) const;

 private:
  std::vector<char> included_;
};

/// Adjacency-list undirected graph. After construction call
/// `finalize()` (sorts adjacency lists) before using `has_edge`.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Appends `count` fresh isolated nodes; returns the first new id.
  NodeId add_nodes(std::size_t count);

  /// Adds undirected edge {u, v}. Returns false (and does nothing) if
  /// the edge already exists or u == v. O(deg) membership check.
  bool add_edge(NodeId u, NodeId v);

  /// Removes undirected edge {u, v}. Returns false if absent.
  bool remove_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge. Requires `finalize()` first for
  /// O(log deg); otherwise falls back to a linear scan.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t degree(NodeId v) const { return adj_[v].size(); }
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_[v].data(), adj_[v].size()};
  }

  double average_degree() const;

  /// Sorts adjacency lists; enables binary-search `has_edge`.
  void finalize();
  bool finalized() const { return finalized_; }

  /// All edges as (u, v) with u < v.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Induced subgraph over `nodes` (order defines new ids). The i-th
  /// entry of `nodes` becomes node i of the result.
  Graph induced_subgraph(const std::vector<NodeId>& nodes) const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
  bool finalized_ = false;
};

}  // namespace ppo::graph
