// Undirected simple graph used for trust graphs, overlay snapshots and
// reference random graphs. Nodes are dense ids [0, n). Parallel edges
// and self loops are rejected at insertion.
//
// Two backing stores share this API:
//
//  * adjacency lists (one vector per node) — the mutable builder
//    representation;
//  * an immutable shared `CsrGraph` (see csr.hpp) — what the
//    generators emit at crawl scale. Copying a CSR-backed Graph is
//    O(1) (the CSR is shared); the first mutating call thaws it into
//    adjacency lists for that instance only.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ppo::graph {

using NodeId = std::uint32_t;

class CsrGraph;

/// Marks a subset of nodes (e.g. the currently online ones). Empty
/// mask means "all nodes included".
class NodeMask {
 public:
  NodeMask() = default;
  explicit NodeMask(std::size_t n, bool initially_included = true)
      : included_(n, initially_included ? 1 : 0) {}

  bool empty() const { return included_.empty(); }
  std::size_t size() const { return included_.size(); }

  bool contains(NodeId v) const {
    return included_.empty() || included_[v] != 0;
  }
  void set(NodeId v, bool included) { included_[v] = included ? 1 : 0; }

  /// Grows the mask to cover `n` nodes (new entries get `included`).
  void resize(std::size_t n, bool included) {
    included_.resize(n, included ? 1 : 0);
  }

  /// Number of included nodes, assuming the mask covers `n` nodes.
  std::size_t count(std::size_t n) const;

 private:
  std::vector<char> included_;
};

/// Builder-phase contract: while a graph is UNfinalized, adjacency
/// lists keep insertion order and `add_edge` membership costs O(deg)
/// (generators that pick random neighbors by index rely on the
/// insertion order). `finalize()` sorts the lists; from then on
/// `has_edge` is O(log deg) and `add_edge` inserts in sorted position,
/// so incremental edits (membership changes on a running overlay) keep
/// the graph finalized instead of degrading every later probe back to
/// a linear scan.
class Graph {
 public:
  Graph();
  explicit Graph(std::size_t n);
  Graph(const Graph&);
  Graph(Graph&&) noexcept;
  Graph& operator=(const Graph&);
  Graph& operator=(Graph&&) noexcept;
  ~Graph();

  /// Wraps an immutable CSR (shared, not copied) behind this API.
  /// The result reports `finalized()`.
  static Graph from_csr(CsrGraph csr);
  static Graph from_csr(std::shared_ptr<const CsrGraph> csr);

  /// The CSR backing store, or nullptr when adjacency-backed.
  const CsrGraph* csr() const { return csr_.get(); }

  std::size_t num_nodes() const;
  std::size_t num_edges() const { return num_edges_; }

  /// Appends `count` fresh isolated nodes; returns the first new id.
  /// Thaws a CSR backing.
  NodeId add_nodes(std::size_t count);

  /// Adds undirected edge {u, v}. Returns false (and does nothing) if
  /// the edge already exists or u == v. Membership is O(deg) while
  /// unfinalized, O(log deg) once finalized (sorted insert — the
  /// graph stays finalized). Thaws a CSR backing.
  bool add_edge(NodeId u, NodeId v);

  /// Removes undirected edge {u, v}. Returns false if absent. A
  /// finalized graph stays finalized (erase preserves order). Thaws a
  /// CSR backing.
  bool remove_edge(NodeId u, NodeId v);

  /// True if {u, v} is an edge. O(log deg) when finalized or
  /// CSR-backed; linear scan otherwise.
  bool has_edge(NodeId u, NodeId v) const;

  std::size_t degree(NodeId v) const;
  std::span<const NodeId> neighbors(NodeId v) const;

  double average_degree() const;

  /// Sorts adjacency lists; enables binary-search `has_edge`. No-op
  /// on a CSR backing (already sorted).
  void finalize();
  bool finalized() const { return csr_ != nullptr || finalized_; }

  /// All edges as (u, v) with u < v.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Induced subgraph over `nodes` (order defines new ids). The i-th
  /// entry of `nodes` becomes node i of the result, which is
  /// CSR-backed and finalized.
  Graph induced_subgraph(const std::vector<NodeId>& nodes) const;

 private:
  /// Materializes adjacency lists from the CSR backing so a mutating
  /// call can proceed; drops the CSR reference.
  void thaw();

  std::vector<std::vector<NodeId>> adj_;
  std::shared_ptr<const CsrGraph> csr_;
  std::size_t num_edges_ = 0;
  bool finalized_ = false;
};

}  // namespace ppo::graph
