#include "graph/socialgen.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "graph/components.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace ppo::graph {

namespace {

/// Draws a Pareto-distributed degree with the requested mean.
/// mean = min * shape / (shape - 1)  =>  min = mean * (shape-1)/shape.
std::size_t draw_degree(const SocialGraphOptions& opts, Rng& rng) {
  const double min_degree =
      opts.mean_degree * (opts.degree_shape - 1.0) / opts.degree_shape;
  const double d = rng.pareto(opts.degree_shape, min_degree);
  return std::min<std::size_t>(opts.max_degree,
                               std::max<std::size_t>(2, std::llround(d)));
}

/// Pairs up the stubs in `stubs` (shuffled) and adds the edges.
/// Conflicting pairs (self loops, duplicates) are dropped — standard
/// configuration-model erasure.
void match_stubs(CsrBuilder& b, std::vector<NodeId>& stubs, Rng& rng) {
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
    b.add_edge(stubs[i], stubs[i + 1]);
  stubs.clear();
}

void close_triads(CsrBuilder& b, std::size_t count, Rng& rng) {
  const std::size_t n = b.num_nodes();
  std::size_t added = 0, attempts = 0;
  while (added < count && attempts < 20 * count + 100) {
    ++attempts;
    const auto v = static_cast<NodeId>(rng.uniform_u64(n));
    const auto nbrs = b.neighbors(v);
    if (nbrs.size() < 2) continue;
    const NodeId a = nbrs[rng.uniform_u64(nbrs.size())];
    const NodeId c = nbrs[rng.uniform_u64(nbrs.size())];
    if (a == c) continue;
    added += b.add_edge(a, c);
  }
}

/// Links all connected components into one (rare stragglers from the
/// stub erasure) by chaining a random node of each smaller component
/// to the largest.
void connect_components(CsrBuilder& b, Rng& rng) {
  const Components comps = connected_components(b);
  if (comps.count() <= 1) return;
  const std::uint32_t big = comps.largest();
  std::vector<NodeId> anchor_of(comps.count(), 0);
  std::vector<char> seen(comps.count(), 0);
  std::vector<NodeId> big_nodes;
  for (NodeId v = 0; v < b.num_nodes(); ++v) {
    const auto c = comps.component_of[v];
    if (c == big) {
      big_nodes.push_back(v);
    } else if (!seen[c]) {
      anchor_of[c] = v;
      seen[c] = 1;
    }
  }
  for (std::uint32_t c = 0; c < comps.count(); ++c) {
    if (c == big || !seen[c]) continue;
    b.add_edge(anchor_of[c],
               big_nodes[rng.uniform_u64(big_nodes.size())]);
  }
}

}  // namespace

Graph synthetic_social_graph(const SocialGraphOptions& opts, Rng& rng) {
  PPO_CHECK_MSG(opts.num_nodes >= 2 * opts.community_size,
                "base graph must span multiple communities");
  PPO_CHECK_MSG(opts.sub_community_size >= 2 &&
                    opts.community_size >= 2 * opts.sub_community_size,
                "communities must nest (sub < community)");
  PPO_CHECK_MSG(opts.weight_sub + opts.weight_community <= 1.0,
                "level weights exceed 1");

  const std::size_t n = opts.num_nodes;
  CsrBuilder b(n);

  const std::size_t num_subs = (n + opts.sub_community_size - 1) /
                               opts.sub_community_size;
  const std::size_t num_mids =
      (n + opts.community_size - 1) / opts.community_size;

  std::vector<std::vector<NodeId>> sub_stubs(num_subs);
  std::vector<std::vector<NodeId>> mid_stubs(num_mids);
  std::vector<NodeId> global_stubs;

  for (NodeId v = 0; v < n; ++v) {
    const std::size_t degree = draw_degree(opts, rng);
    const std::size_t sub = v / opts.sub_community_size;
    const std::size_t mid = v / opts.community_size;
    for (std::size_t s = 0; s < degree; ++s) {
      const double u = rng.uniform_double();
      if (u < opts.weight_sub)
        sub_stubs[sub].push_back(v);
      else if (u < opts.weight_sub + opts.weight_community)
        mid_stubs[mid].push_back(v);
      else
        global_stubs.push_back(v);
    }
  }

  for (auto& stubs : sub_stubs) match_stubs(b, stubs, rng);
  for (auto& stubs : mid_stubs) match_stubs(b, stubs, rng);
  match_stubs(b, global_stubs, rng);

  close_triads(
      b, static_cast<std::size_t>(opts.triad_fraction *
                                  static_cast<double>(b.num_edges())),
      rng);
  connect_components(b, rng);
  return Graph::from_csr(b.build());
}

Graph holme_kim_social_graph(std::size_t num_nodes, std::size_t attachment,
                             double triad_prob, Rng& rng) {
  return holme_kim(num_nodes, attachment, triad_prob, rng);
}

}  // namespace ppo::graph
