// The paper's invitation-model trust-graph sampler (§IV-A).
//
// Starting from a random node, a partial breadth-first traversal adds
// max(1, f * deg(n)) random unvisited neighbors of each visited node
// until `target_size` nodes are selected. The sampled trust graph is
// the subgraph induced by the selected nodes. f = 1 models "everyone
// invites all their friends"; f = 0 models "each member invites one
// friend".
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace ppo::graph {

struct InvitationSampleOptions {
  std::size_t target_size = 1000;
  double f = 0.5;
};

/// Samples a connected trust graph from `base`. Node ids of the result
/// are dense [0, target_size); the traversal order defines the
/// mapping. Throws if the base graph has fewer reachable nodes than
/// `target_size` from the chosen start.
Graph invitation_sample(GraphView base, const InvitationSampleOptions& opts,
                        Rng& rng);

}  // namespace ppo::graph
