#include "crypto/bytes.hpp"

#include "common/check.hpp"

namespace ppo::crypto {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(const std::string& hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int hi = -1;
  for (char c : hex) {
    if (c == ' ' || c == '\n' || c == '\t') continue;
    const int digit = hex_digit(c);
    PPO_CHECK_MSG(digit >= 0, "invalid hex character");
    if (hi < 0) {
      hi = digit;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | digit));
      hi = -1;
    }
  }
  PPO_CHECK_MSG(hi < 0, "odd-length hex string");
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace ppo::crypto
