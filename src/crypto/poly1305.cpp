#include "crypto/poly1305.hpp"

// 26-bit-limb implementation in the style of poly1305-donna:
// the accumulator and r are held in five 26-bit limbs, products fit in
// 64 bits, and reduction mod 2^130 - 5 folds the top limb back with a
// factor of 5.

namespace ppo::crypto {

namespace {

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

PolyTag poly1305(const PolyKey& key, BytesView data) {
  // r with the RFC clamping folded into the limb masks.
  const std::uint32_t r0 = load32(key.data() + 0) & 0x3ffffff;
  const std::uint32_t r1 = (load32(key.data() + 3) >> 2) & 0x3ffff03;
  const std::uint32_t r2 = (load32(key.data() + 6) >> 4) & 0x3ffc0ff;
  const std::uint32_t r3 = (load32(key.data() + 9) >> 6) & 0x3f03fff;
  const std::uint32_t r4 = (load32(key.data() + 12) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t offset = 0;
  const std::size_t len = data.size();
  while (offset < len) {
    std::uint8_t block[17] = {0};
    const std::size_t take = std::min<std::size_t>(16, len - offset);
    for (std::size_t i = 0; i < take; ++i) block[i] = data[offset + i];
    std::uint32_t hibit;
    if (take == 16) {
      hibit = 1u << 24;
    } else {
      block[take] = 1;  // RFC padding for the final partial block
      hibit = 0;
    }

    h0 += load32(block + 0) & 0x3ffffff;
    h1 += (load32(block + 3) >> 2) & 0x3ffffff;
    h2 += (load32(block + 6) >> 4) & 0x3ffffff;
    h3 += (load32(block + 9) >> 6) & 0x3ffffff;
    h4 += (load32(block + 12) >> 8) | hibit;

    using u64 = std::uint64_t;
    const u64 d0 = static_cast<u64>(h0) * r0 + static_cast<u64>(h1) * s4 +
                   static_cast<u64>(h2) * s3 + static_cast<u64>(h3) * s2 +
                   static_cast<u64>(h4) * s1;
    const u64 d1 = static_cast<u64>(h0) * r1 + static_cast<u64>(h1) * r0 +
                   static_cast<u64>(h2) * s4 + static_cast<u64>(h3) * s3 +
                   static_cast<u64>(h4) * s2;
    const u64 d2 = static_cast<u64>(h0) * r2 + static_cast<u64>(h1) * r1 +
                   static_cast<u64>(h2) * r0 + static_cast<u64>(h3) * s4 +
                   static_cast<u64>(h4) * s3;
    const u64 d3 = static_cast<u64>(h0) * r3 + static_cast<u64>(h1) * r2 +
                   static_cast<u64>(h2) * r1 + static_cast<u64>(h3) * r0 +
                   static_cast<u64>(h4) * s4;
    const u64 d4 = static_cast<u64>(h0) * r4 + static_cast<u64>(h1) * r3 +
                   static_cast<u64>(h2) * r2 + static_cast<u64>(h3) * r1 +
                   static_cast<u64>(h4) * r0;

    std::uint64_t c;
    c = d0 >> 26;
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    const u64 e1 = d1 + c;
    c = e1 >> 26;
    h1 = static_cast<std::uint32_t>(e1) & 0x3ffffff;
    const u64 e2 = d2 + c;
    c = e2 >> 26;
    h2 = static_cast<std::uint32_t>(e2) & 0x3ffffff;
    const u64 e3 = d3 + c;
    c = e3 >> 26;
    h3 = static_cast<std::uint32_t>(e3) & 0x3ffffff;
    const u64 e4 = d4 + c;
    c = e4 >> 26;
    h4 = static_cast<std::uint32_t>(e4) & 0x3ffffff;
    h0 += static_cast<std::uint32_t>(c) * 5;
    h1 += h0 >> 26;
    h0 &= 0x3ffffff;

    offset += take;
  }

  // Full carry chain.
  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + 5 - 2^130 and select it when non-negative.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  const std::uint32_t g4 = h4 + c - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all ones when h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  const std::uint32_t h4f = (h4 & ~mask) | (g4 & mask);

  // Serialize to four little-endian 32-bit words.
  const std::uint32_t w0 = (h0 | (h1 << 26)) & 0xffffffff;
  const std::uint32_t w1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  const std::uint32_t w2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  const std::uint32_t w3 = ((h3 >> 18) | (h4f << 8)) & 0xffffffff;

  // Add s (second key half) mod 2^128.
  std::uint64_t f;
  std::uint32_t out[4];
  f = static_cast<std::uint64_t>(w0) + load32(key.data() + 16);
  out[0] = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(w1) + load32(key.data() + 20) + (f >> 32);
  out[1] = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(w2) + load32(key.data() + 24) + (f >> 32);
  out[2] = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(w3) + load32(key.data() + 28) + (f >> 32);
  out[3] = static_cast<std::uint32_t>(f);

  PolyTag tag;
  for (int i = 0; i < 4; ++i) {
    tag[4 * i] = static_cast<std::uint8_t>(out[i]);
    tag[4 * i + 1] = static_cast<std::uint8_t>(out[i] >> 8);
    tag[4 * i + 2] = static_cast<std::uint8_t>(out[i] >> 16);
    tag[4 * i + 3] = static_cast<std::uint8_t>(out[i] >> 24);
  }
  return tag;
}

}  // namespace ppo::crypto
