// Byte-buffer aliases and helpers shared by the crypto primitives.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ppo::crypto {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Converts a string literal (e.g. test-vector plaintext) to bytes.
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Lowercase hex encoding (for test-vector comparison and debugging).
inline std::string to_hex(BytesView data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

/// Parses lowercase/uppercase hex; ignores spaces. Returns empty on
/// malformed input length.
Bytes from_hex(const std::string& hex);

/// Constant-time equality (length leaks, content does not).
bool ct_equal(BytesView a, BytesView b);

}  // namespace ppo::crypto
