#include "crypto/hmac.hpp"

#include <array>

namespace ppo::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView data) {
  std::array<std::uint8_t, kSha256BlockSize> key_block{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest digest = sha256(key);
    std::copy(digest.begin(), digest.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kSha256BlockSize> ipad, opad;
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size()));
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace ppo::crypto
