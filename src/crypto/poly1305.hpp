// Poly1305 one-time authenticator (RFC 8439 §2.5).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace ppo::crypto {

inline constexpr std::size_t kPolyKeySize = 32;
inline constexpr std::size_t kPolyTagSize = 16;

using PolyKey = std::array<std::uint8_t, kPolyKeySize>;
using PolyTag = std::array<std::uint8_t, kPolyTagSize>;

/// Poly1305 tag of `data` under the one-time `key` (r || s).
PolyTag poly1305(const PolyKey& key, BytesView data);

}  // namespace ppo::crypto
