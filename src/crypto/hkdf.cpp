#include "crypto/hkdf.hpp"

#include "common/check.hpp"

namespace ppo::crypto {

Sha256Digest hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  PPO_CHECK_MSG(length <= 255 * kSha256DigestSize, "HKDF output too long");
  Bytes out;
  out.reserve(length);
  Bytes block;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes input = block;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    const Sha256Digest t = hmac_sha256(prk, BytesView(input.data(), input.size()));
    block.assign(t.begin(), t.end());
    const std::size_t take = std::min(block.size(), length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  const Sha256Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(BytesView(prk.data(), prk.size()), info, length);
}

}  // namespace ppo::crypto
