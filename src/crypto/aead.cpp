#include "crypto/aead.hpp"

namespace ppo::crypto {

namespace {

/// One-time Poly1305 key: first 32 bytes of the ChaCha20 keystream at
/// counter 0 (RFC 8439 §2.6).
PolyKey derive_poly_key(const ChaChaKey& key, const ChaChaNonce& nonce) {
  const auto block = chacha20_block(key, nonce, 0);
  PolyKey pk;
  std::copy(block.begin(), block.begin() + kPolyKeySize, pk.begin());
  return pk;
}

void append_padded(Bytes& buf, BytesView data) {
  buf.insert(buf.end(), data.begin(), data.end());
  const std::size_t rem = data.size() % 16;
  if (rem != 0) buf.insert(buf.end(), 16 - rem, 0);
}

void append_le64(Bytes& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

PolyTag compute_tag(const ChaChaKey& key, const ChaChaNonce& nonce,
                    BytesView aad, BytesView ciphertext) {
  const PolyKey pk = derive_poly_key(key, nonce);
  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 48);
  append_padded(mac_data, aad);
  append_padded(mac_data, ciphertext);
  append_le64(mac_data, aad.size());
  append_le64(mac_data, ciphertext.size());
  return poly1305(pk, BytesView(mac_data.data(), mac_data.size()));
}

}  // namespace

Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, BytesView aad,
                BytesView plaintext) {
  Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
  const PolyTag tag =
      compute_tag(key, nonce, aad, BytesView(ciphertext.data(), ciphertext.size()));
  ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
  return ciphertext;
}

std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               BytesView aad, BytesView sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const BytesView ciphertext = sealed.subspan(0, sealed.size() - kAeadTagSize);
  const BytesView tag = sealed.subspan(sealed.size() - kAeadTagSize);
  const PolyTag expected = compute_tag(key, nonce, aad, ciphertext);
  if (!ct_equal(BytesView(expected.data(), expected.size()), tag))
    return std::nullopt;
  return chacha20_xor(key, nonce, 1, ciphertext);
}

}  // namespace ppo::crypto
