// SHA-256 (FIPS 180-4). Streaming interface plus one-shot helper.
// Used for pseudonym hardening (§III-D: "applying a cryptographically
// strong hash function") and as the MAC/KDF base of the mix network.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace ppo::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused
  /// afterwards without `reset()`.
  Sha256Digest finish();
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot digest.
Sha256Digest sha256(BytesView data);

}  // namespace ppo::crypto
