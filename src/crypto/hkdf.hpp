// HKDF with SHA-256 (RFC 5869): extract-and-expand key derivation for
// the mix-network per-hop keys.
#pragma once

#include "crypto/hmac.hpp"

namespace ppo::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derives `length` bytes (<= 255 * 32) from `prk` with
/// context `info`.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Full extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace ppo::crypto
