// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8) — the per-layer seal/open
// operation of the onion message format.
#pragma once

#include <optional>

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace ppo::crypto {

inline constexpr std::size_t kAeadTagSize = kPolyTagSize;

/// Encrypts `plaintext` and appends the 16-byte tag. `aad` is
/// authenticated but not encrypted.
Bytes aead_seal(const ChaChaKey& key, const ChaChaNonce& nonce, BytesView aad,
                BytesView plaintext);

/// Verifies and decrypts. Returns nullopt on authentication failure
/// (tampered ciphertext, wrong key/nonce/aad).
std::optional<Bytes> aead_open(const ChaChaKey& key, const ChaChaNonce& nonce,
                               BytesView aad, BytesView sealed);

}  // namespace ppo::crypto
