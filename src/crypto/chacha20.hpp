// ChaCha20 stream cipher (RFC 8439). The mix network's per-layer
// encryption; also usable as a fast deterministic byte stream.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace ppo::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// One 64-byte keystream block for (key, nonce, counter).
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter);

/// XORs `data` with the keystream starting at block `initial_counter`
/// (encryption == decryption).
Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   std::uint32_t initial_counter, BytesView data);

}  // namespace ppo::crypto
