#include "crypto/x25519.hpp"

namespace ppo::crypto {

namespace {

using i64 = std::int64_t;
// Field element mod 2^255 - 19: sixteen radix-2^16 limbs in int64.
using Gf = std::array<i64, 16>;

constexpr Gf k121665 = {0xDB41, 1, 0, 0, 0, 0, 0, 0,
                        0,      0, 0, 0, 0, 0, 0, 0};

void carry(Gf& o) {
  for (int i = 0; i < 16; ++i) {
    o[i] += (i64{1} << 16);
    const i64 c = o[i] >> 16;
    o[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o[i] -= c << 16;
  }
}

/// Constant-time conditional swap of p and q when b == 1.
void cswap(Gf& p, Gf& q, int b) {
  const i64 mask = ~(static_cast<i64>(b) - 1);
  for (int i = 0; i < 16; ++i) {
    const i64 t = mask & (p[i] ^ q[i]);
    p[i] ^= t;
    q[i] ^= t;
  }
}

void pack(std::uint8_t* out, const Gf& n) {
  Gf t = n, m{};
  carry(t);
  carry(t);
  carry(t);
  for (int j = 0; j < 2; ++j) {
    m[0] = t[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m[i] = t[i] - 0xffff - ((m[i - 1] >> 16) & 1);
      m[i - 1] &= 0xffff;
    }
    m[15] = t[15] - 0x7fff - ((m[14] >> 16) & 1);
    const int b = static_cast<int>((m[15] >> 16) & 1);
    m[14] &= 0xffff;
    cswap(t, m, 1 - b);
  }
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = static_cast<std::uint8_t>(t[i] & 0xff);
    out[2 * i + 1] = static_cast<std::uint8_t>(t[i] >> 8);
  }
}

void unpack(Gf& o, const std::uint8_t* in) {
  for (int i = 0; i < 16; ++i)
    o[i] = in[2 * i] + (static_cast<i64>(in[2 * i + 1]) << 8);
  o[15] &= 0x7fff;
}

void add(Gf& o, const Gf& a, const Gf& b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] + b[i];
}

void sub(Gf& o, const Gf& a, const Gf& b) {
  for (int i = 0; i < 16; ++i) o[i] = a[i] - b[i];
}

void mul(Gf& o, const Gf& a, const Gf& b) {
  i64 t[31] = {0};
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) t[i + j] += a[i] * b[j];
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o[i] = t[i];
  carry(o);
  carry(o);
}

void square(Gf& o, const Gf& a) { mul(o, a, a); }

/// Inversion by Fermat: a^(p-2) with the fixed square-and-multiply
/// chain (skips multiplies at exponent bits 2 and 4).
void invert(Gf& o, const Gf& in) {
  Gf c = in;
  for (int a = 253; a >= 0; --a) {
    square(c, c);
    if (a != 2 && a != 4) mul(c, c, in);
  }
  o = c;
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& point) {
  std::uint8_t z[32];
  for (int i = 0; i < 31; ++i) z[i] = scalar[i];
  z[31] = (scalar[31] & 127) | 64;
  z[0] &= 248;

  Gf x;
  unpack(x, point.data());

  Gf a{}, b = x, c{}, d{}, e, f;
  a[0] = 1;
  d[0] = 1;

  for (int i = 254; i >= 0; --i) {
    const int r = (z[i >> 3] >> (i & 7)) & 1;
    cswap(a, b, r);
    cswap(c, d, r);
    add(e, a, c);
    sub(a, a, c);
    add(c, b, d);
    sub(b, b, d);
    square(d, e);
    square(f, a);
    mul(a, c, a);
    mul(c, b, e);
    add(e, a, c);
    sub(a, a, c);
    square(b, a);
    sub(c, d, f);
    mul(a, c, k121665);
    add(a, a, d);
    mul(c, c, a);
    mul(a, d, f);
    mul(d, b, x);
    square(b, e);
    cswap(a, b, r);
    cswap(c, d, r);
  }

  invert(c, c);
  mul(a, a, c);
  X25519Key out;
  pack(out.data(), a);
  return out;
}

X25519Key x25519_public(const X25519Key& private_key) {
  X25519Key base{};
  base[0] = 9;
  return x25519(private_key, base);
}

X25519KeyPair x25519_keypair(const X25519Key& seed) {
  return X25519KeyPair{seed, x25519_public(seed)};
}

}  // namespace ppo::crypto
