// X25519 Diffie-Hellman (RFC 7748) — key agreement used by the mix
// network so that each relay shares a layer key with the circuit
// builder. Field arithmetic uses sixteen 16-bit limbs held in int64
// (the compact, well-studied TweetNaCl representation).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace ppo::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Montgomery-ladder scalar multiplication: q = scalar * point.
/// The scalar is clamped per RFC 7748.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// Public key for a private scalar: scalar * base point (u = 9).
X25519Key x25519_public(const X25519Key& private_key);

/// Keypair generated from 32 seed bytes (clamp happens inside
/// x25519); the seed IS the private key.
struct X25519KeyPair {
  X25519Key private_key;
  X25519Key public_key;
};

X25519KeyPair x25519_keypair(const X25519Key& seed);

}  // namespace ppo::crypto
