// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
#pragma once

#include "crypto/sha256.hpp"

namespace ppo::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
Sha256Digest hmac_sha256(BytesView key, BytesView data);

}  // namespace ppo::crypto
