#include "crypto/chacha20.hpp"

namespace ppo::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d ^= a;
  d = rotl(d, 16);
  c += d;
  b ^= c;
  b = rotl(b, 12);
  a += b;
  d ^= a;
  d = rotl(d, 8);
  c += d;
  b ^= c;
  b = rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32(nonce.data() + 4 * i);

  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   std::uint32_t initial_counter, BytesView data) {
  Bytes out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < out.size()) {
    const auto keystream = chacha20_block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, out.size() - offset);
    for (std::size_t i = 0; i < take; ++i) out[offset + i] ^= keystream[i];
    offset += take;
  }
  return out;
}

}  // namespace ppo::crypto
