// Full-stack transport: every message between two nodes rides a
// fresh onion circuit through the MixNetwork, with real X25519 /
// ChaCha20-Poly1305 layer cryptography. Orders of magnitude more
// expensive than the ideal Transport — intended for small-scale
// validation (the overlay protocol runs unchanged on top) and for the
// mix-mode demos, not for 1000-node sweeps.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "privacylink/link_transport.hpp"
#include "privacylink/mix_network.hpp"

namespace ppo::privacylink {

struct MixTransportOptions {
  /// Relays per circuit (fresh random route per message).
  std::size_t circuit_hops = 3;
};

class MixTransport final : public LinkTransport {
 public:
  /// The transport shares `mix` (relay pool) across all senders;
  /// `is_online` plays the same gating role as in the ideal
  /// transport — the exit relay cannot hand the message to an
  /// offline destination. With `per_sender_streams` > 0 (the node
  /// count), each sender draws routes and onion nonces from its own
  /// split stream, making every circuit a function of the sender's
  /// send sequence alone — required for K-invariance on the sharded
  /// backend, a no-op semantically elsewhere.
  MixTransport(sim::SimulatorBackend& sim, MixNetwork& mix,
               MixTransportOptions options, Rng rng,
               std::function<bool(graph::NodeId)> is_online,
               std::size_t per_sender_streams = 0);

  bool send(graph::NodeId from, graph::NodeId to,
            sim::EventFn on_deliver) override;

  std::uint64_t messages_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_delivered() const override {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Total onion bytes put on the wire (all hops' ingress sizes).
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Sends lost because fewer live relays than circuit hops remained
  /// (graceful degradation: the message is counted sent and dropped
  /// instead of aborting the run).
  std::uint64_t circuit_failures() const {
    return circuit_failures_.load(std::memory_order_relaxed);
  }

 private:
  sim::SimulatorBackend& sim_;
  MixNetwork& mix_;
  MixTransportOptions options_;
  Rng rng_;
  /// One split per sender when per_sender_streams was given.
  std::vector<Rng> sender_rngs_;
  std::function<bool(graph::NodeId)> is_online_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> circuit_failures_{0};
};

}  // namespace ppo::privacylink
