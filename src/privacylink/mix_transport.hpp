// Full-stack transport: every message between two nodes rides a
// fresh onion circuit through the MixNetwork, with real X25519 /
// ChaCha20-Poly1305 layer cryptography. Orders of magnitude more
// expensive than the ideal Transport — intended for small-scale
// validation (the overlay protocol runs unchanged on top) and for the
// mix-mode demos, not for 1000-node sweeps.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "privacylink/link_transport.hpp"
#include "privacylink/mix_network.hpp"

namespace ppo::privacylink {

struct MixTransportOptions {
  /// Relays per circuit (fresh random route per message).
  std::size_t circuit_hops = 3;
};

class MixTransport final : public LinkTransport {
 public:
  /// The transport shares `mix` (relay pool) across all senders;
  /// `is_online` plays the same gating role as in the ideal
  /// transport — the exit relay cannot hand the message to an
  /// offline destination.
  MixTransport(sim::SimulatorBackend& sim, MixNetwork& mix,
               MixTransportOptions options, Rng rng,
               std::function<bool(graph::NodeId)> is_online);

  bool send(graph::NodeId from, graph::NodeId to,
            sim::EventFn on_deliver) override;

  std::uint64_t messages_sent() const override { return sent_; }
  std::uint64_t messages_delivered() const override { return delivered_; }

  /// Total onion bytes put on the wire (all hops' ingress sizes).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Sends lost because fewer live relays than circuit hops remained
  /// (graceful degradation: the message is counted sent and dropped
  /// instead of aborting the run).
  std::uint64_t circuit_failures() const { return circuit_failures_; }

 private:
  sim::SimulatorBackend& sim_;
  MixNetwork& mix_;
  MixTransportOptions options_;
  Rng rng_;
  std::function<bool(graph::NodeId)> is_online_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t circuit_failures_ = 0;
};

}  // namespace ppo::privacylink
