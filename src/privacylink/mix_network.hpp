// Simulated mix network: a pool of relays with X25519 keypairs that
// forward onion-wrapped messages hop by hop inside the simulator.
// This realizes the anonymity service of §III-B with real layered
// cryptography; the overlay evaluation runs on the ideal Transport
// (as the paper assumes), while examples, the timing-attack study and
// the mix benches exercise this substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "privacylink/onion.hpp"
#include "sim/backend.hpp"

namespace ppo::privacylink {

struct MixOptions {
  std::size_t num_relays = 16;
  /// Per-hop forwarding latency window, in shuffling periods.
  double min_hop_latency = 0.005;
  double max_hop_latency = 0.02;
  /// Relays remember hashes of forwarded messages and drop replays
  /// (§III-C's replay defence).
  bool replay_protection = true;
};

class MixNetwork {
 public:
  MixNetwork(sim::SimulatorBackend& sim, MixOptions options, Rng rng);

  std::size_t num_relays() const { return relays_.size(); }
  const crypto::X25519Key& relay_public_key(RelayId r) const;

  /// Picks `hops` distinct random live relays as a route.
  std::vector<RelayId> random_route(std::size_t hops, Rng& rng) const;

  /// Onion-wraps `payload` over `route` and injects it at the first
  /// relay. `deliver` runs with the payload when the exit relay
  /// finishes, unless a relay on the path is down or the message is
  /// tampered/replayed (then it is silently dropped, like a real mix).
  void send(const std::vector<RelayId>& route, crypto::Bytes payload,
            std::function<void(crypto::Bytes)> deliver, Rng& rng);

  /// Injects a raw (already onion-wrapped) message at a relay — what
  /// an adversary replaying captured traffic would do. Used by the
  /// replay-defence tests and the attack benches.
  void inject(RelayId relay, crypto::Bytes message,
              std::function<void(crypto::Bytes)> deliver);

  /// Failure injection: the relay stops forwarding.
  void fail_relay(RelayId r);
  /// Crash recovery: the relay resumes forwarding (keys and replay
  /// history survive the outage — a restart, not a fresh identity).
  void revive_relay(RelayId r);
  bool relay_alive(RelayId r) const;
  std::size_t live_relay_count() const;

  std::uint64_t messages_forwarded() const { return forwarded_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t replays_blocked() const { return replays_blocked_; }

 private:
  struct Relay {
    crypto::X25519KeyPair keys;
    bool alive = true;
    /// Hashes of messages already forwarded (replay defence). Bounded
    /// in practice by pseudonym lifetime (§III-C); unbounded here as
    /// simulation runs are finite.
    std::vector<std::uint64_t> seen;
  };

  void forward(RelayId relay, crypto::Bytes message,
               std::function<void(crypto::Bytes)> deliver);
  double hop_latency();

  sim::SimulatorBackend& sim_;
  MixOptions options_;
  Rng rng_;
  std::vector<Relay> relays_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t replays_blocked_ = 0;
};

}  // namespace ppo::privacylink
