// Simulated mix network: a pool of relays with X25519 keypairs that
// forward onion-wrapped messages hop by hop inside the simulator.
// This realizes the anonymity service of §III-B with real layered
// cryptography; the overlay evaluation runs on the ideal Transport
// (as the paper assumes), while examples, the timing-attack study and
// the mix benches exercise this substrate.
//
// Shard-safety: every hop latency of a message comes from a
// per-message stream seeded by one draw from the CALLER's rng, so a
// message's trajectory is a function of its sender's own send
// sequence — never of how other traffic interleaves. Relay replay
// lists are mutex-guarded and the counters are atomic (replay
// blocking is order-independent: however two copies interleave, the
// second sees the first's fingerprint). Relay crashes on the sharded
// backend are data (schedule_crash windows, read-only while windows
// run) instead of events (fail_relay/revive_relay, serial-only).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "privacylink/onion.hpp"
#include "sim/backend.hpp"

namespace ppo::privacylink {

struct MixOptions {
  std::size_t num_relays = 16;
  /// Per-hop forwarding latency window, in shuffling periods.
  double min_hop_latency = 0.005;
  double max_hop_latency = 0.02;
  /// Relays remember hashes of forwarded messages and drop replays
  /// (§III-C's replay defence).
  bool replay_protection = true;
};

class MixNetwork {
 public:
  MixNetwork(sim::SimulatorBackend& sim, MixOptions options, Rng rng);

  std::size_t num_relays() const { return relays_.size(); }
  const crypto::X25519Key& relay_public_key(RelayId r) const;

  /// Picks `hops` distinct random relays alive right now as a route.
  std::vector<RelayId> random_route(std::size_t hops, Rng& rng) const;

  /// Onion-wraps `payload` over `route` and injects it at the first
  /// relay. `deliver` runs with the payload when the exit relay
  /// finishes, unless a relay on the path is down or the message is
  /// tampered/replayed (then it is silently dropped, like a real mix).
  /// All of the message's hop latencies derive from ONE next_u64 draw
  /// on `rng` (the caller's stream). When `deliver_actor` is given,
  /// the final delivery is scheduled FOR that actor — required on the
  /// sharded backend, where the last hop crosses shards.
  void send(const std::vector<RelayId>& route, crypto::Bytes payload,
            std::function<void(crypto::Bytes)> deliver, Rng& rng,
            sim::ActorId deliver_actor = sim::kExternalActor);

  /// Injects a raw (already onion-wrapped) message at a relay — what
  /// an adversary replaying captured traffic would do. Used by the
  /// replay-defence tests and the attack benches. Serial-only: hop
  /// latencies come from the network's own stream.
  void inject(RelayId relay, crypto::Bytes message,
              std::function<void(crypto::Bytes)> deliver);

  /// Failure injection, event form (serial backend): the relay stops
  /// forwarding.
  void fail_relay(RelayId r);
  /// Crash recovery: the relay resumes forwarding (keys and replay
  /// history survive the outage — a restart, not a fresh identity).
  void revive_relay(RelayId r);

  /// Failure injection, data form (both backends): the relay is down
  /// during [crash_at, revive_at), or forever when revive_at < 0.
  /// Install the full schedule before running the simulation — the
  /// windows are read-only while events execute.
  void schedule_crash(RelayId r, double crash_at, double revive_at = -1.0);

  bool relay_alive(RelayId r) const;
  std::size_t live_relay_count() const;

  std::uint64_t messages_forwarded() const {
    return forwarded_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t replays_blocked() const {
    return replays_blocked_.load(std::memory_order_relaxed);
  }

 private:
  /// Scheduled outage window; revive_at < 0 means forever.
  struct CrashWindow {
    double crash_at = 0.0;
    double revive_at = -1.0;
  };

  struct Relay {
    crypto::X25519KeyPair keys;
    bool alive = true;
    /// Hashes of messages already forwarded (replay defence). Bounded
    /// in practice by pseudonym lifetime (§III-C); unbounded here as
    /// simulation runs are finite. Guarded by seen_mutex_.
    std::vector<std::uint64_t> seen;
    std::vector<CrashWindow> crashes;
  };

  void forward(RelayId relay, crypto::Bytes message,
               std::function<void(crypto::Bytes)> deliver, Rng msg_rng,
               sim::ActorId deliver_actor);
  bool alive_at(const Relay& r, double t) const;
  double hop_latency(Rng& rng) const;

  sim::SimulatorBackend& sim_;
  MixOptions options_;
  Rng rng_;
  std::vector<Relay> relays_;
  /// One lock for all replay lists: uncontended in serial runs, and
  /// mix-mode sharded runs are small-scale by design.
  mutable std::mutex seen_mutex_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> replays_blocked_{0};
};

}  // namespace ppo::privacylink
