// Onion message format for the mix-network realization of the
// anonymity service (§III-B): the sender applies one encryption layer
// per relay; each relay strips exactly one layer and learns only the
// next hop.
//
// Layer wire format:
//   [ ephemeral X25519 public key | 32 ]
//   [ nonce                       | 12 ]
//   [ AEAD( next_hop:4 || inner ) | 4 + inner + 16 ]
//
// The layer key is HKDF(X25519(ephemeral, relay_pub), "ppo-mix-layer").
// next_hop == kFinalHop marks the exit layer whose inner bytes are the
// application payload.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/x25519.hpp"

namespace ppo::privacylink {

using RelayId = std::uint32_t;
inline constexpr RelayId kFinalHop = 0xFFFFFFFFu;

/// Bytes added by each onion layer.
inline constexpr std::size_t kOnionLayerOverhead =
    crypto::kX25519KeySize + crypto::kChaChaNonceSize + 4 +
    crypto::kAeadTagSize;

/// Key material the wrapper needs per hop.
struct HopSpec {
  RelayId next_hop;                 // where the relay forwards to
  crypto::X25519Key relay_public;   // the relay's long-term public key
};

/// Builds the layered message. `hops` is ordered entry-relay first;
/// the last entry's `next_hop` must be kFinalHop. `rng_seed` material
/// drives ephemeral keys and nonces (one fresh ephemeral per layer).
crypto::Bytes onion_wrap(const std::vector<HopSpec>& hops,
                         crypto::BytesView payload, Rng& rng);

/// What a relay recovers from one unwrap step.
struct UnwrappedLayer {
  RelayId next_hop;       // kFinalHop when `inner` is the payload
  crypto::Bytes inner;    // next layer, or payload at the exit
};

/// Strips one layer using the relay's private key. Returns nullopt on
/// malformed or tampered input (the relay then drops the message).
std::optional<UnwrappedLayer> onion_unwrap(
    const crypto::X25519Key& relay_private, crypto::BytesView layer);

}  // namespace ppo::privacylink
