#include "privacylink/transport.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::privacylink {

Transport::Transport(sim::Simulator& sim, TransportOptions options, Rng rng,
                     std::function<bool(NodeId)> is_online)
    : sim_(sim),
      options_(options),
      rng_(rng),
      is_online_(std::move(is_online)) {
  PPO_CHECK_MSG(options_.min_latency >= 0.0 &&
                    options_.max_latency >= options_.min_latency,
                "invalid latency window");
  PPO_CHECK_MSG(static_cast<bool>(is_online_), "online oracle required");
}

bool Transport::send(NodeId from, NodeId to, sim::EventFn on_deliver) {
  if (!is_online_(from)) return false;
  ++sent_;
  const double latency =
      rng_.uniform_double(options_.min_latency, options_.max_latency);
  sim_.schedule_after(latency, [this, to, fn = std::move(on_deliver)] {
    if (!is_online_(to)) return;  // link dark: the far end went offline
    ++delivered_;
    fn();
  });
  return true;
}

}  // namespace ppo::privacylink
