#include "privacylink/transport.hpp"

#include <utility>

#include "common/check.hpp"
#include "sim/restore.hpp"

namespace ppo::privacylink {

Transport::Transport(sim::SimulatorBackend& sim, TransportOptions options,
                     Rng rng, std::function<bool(NodeId)> is_online,
                     std::size_t per_sender_streams)
    : sim_(sim),
      options_(options),
      rng_(rng),
      is_online_(std::move(is_online)) {
  PPO_CHECK_MSG(options_.min_latency >= 0.0 &&
                    options_.max_latency >= options_.min_latency,
                "invalid latency window");
  PPO_CHECK_MSG(static_cast<bool>(is_online_), "online oracle required");
  sender_rngs_.reserve(per_sender_streams);
  for (std::size_t v = 0; v < per_sender_streams; ++v)
    sender_rngs_.push_back(rng_.split());
}

bool Transport::send(NodeId from, NodeId to, sim::EventFn on_deliver) {
  if (!is_online_(from)) return false;
  sent_.fetch_add(1, std::memory_order_relaxed);
  Rng& rng = sender_rngs_.empty() ? rng_ : sender_rngs_[from];
  const double latency =
      rng.uniform_double(options_.min_latency, options_.max_latency);
  sim_.schedule_for(to, latency, [this, to, fn = std::move(on_deliver)] {
    if (!is_online_(to)) return;  // link dark: the far end went offline
    delivered_.fetch_add(1, std::memory_order_relaxed);
    fn();
  });
  if (journal_ != nullptr)
    journal_->commit(sim_.now() + latency, sim_.last_ticket());
  return true;
}

void Transport::restore_delivery(NodeId to, double fire_time,
                                 sim::EventTicket ticket,
                                 sim::EventFn payload) {
  sim::restore_event_any(
      sim_, fire_time, ticket, to,
      [this, to, fn = std::move(payload)] {
        if (!is_online_(to)) return;
        delivered_.fetch_add(1, std::memory_order_relaxed);
        if (fn) fn();
      });
}

void Transport::save_state(ckpt::Writer& w) const {
  w.tag(0x5452534Eu);  // 'TRSN'
  w.rng(rng_);
  w.size(sender_rngs_.size());
  for (const Rng& r : sender_rngs_) w.rng(r);
  w.u64(sent_.load(std::memory_order_relaxed));
  w.u64(delivered_.load(std::memory_order_relaxed));
}

void Transport::load_state(ckpt::Reader& r) {
  r.tag(0x5452534Eu);
  rng_ = r.rng();
  if (r.size() != sender_rngs_.size())
    throw ckpt::ParseError("transport stream mode mismatch");
  for (Rng& s : sender_rngs_) s = r.rng();
  sent_.store(r.u64(), std::memory_order_relaxed);
  delivered_.store(r.u64(), std::memory_order_relaxed);
}

}  // namespace ppo::privacylink
