#include "privacylink/transport.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::privacylink {

Transport::Transport(sim::SimulatorBackend& sim, TransportOptions options,
                     Rng rng, std::function<bool(NodeId)> is_online,
                     std::size_t per_sender_streams)
    : sim_(sim),
      options_(options),
      rng_(rng),
      is_online_(std::move(is_online)) {
  PPO_CHECK_MSG(options_.min_latency >= 0.0 &&
                    options_.max_latency >= options_.min_latency,
                "invalid latency window");
  PPO_CHECK_MSG(static_cast<bool>(is_online_), "online oracle required");
  sender_rngs_.reserve(per_sender_streams);
  for (std::size_t v = 0; v < per_sender_streams; ++v)
    sender_rngs_.push_back(rng_.split());
}

bool Transport::send(NodeId from, NodeId to, sim::EventFn on_deliver) {
  if (!is_online_(from)) return false;
  sent_.fetch_add(1, std::memory_order_relaxed);
  Rng& rng = sender_rngs_.empty() ? rng_ : sender_rngs_[from];
  const double latency =
      rng.uniform_double(options_.min_latency, options_.max_latency);
  sim_.schedule_for(to, latency, [this, to, fn = std::move(on_deliver)] {
    if (!is_online_(to)) return;  // link dark: the far end went offline
    delivered_.fetch_add(1, std::memory_order_relaxed);
    fn();
  });
  return true;
}

}  // namespace ppo::privacylink
