#include "privacylink/mix_transport.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::privacylink {

MixTransport::MixTransport(sim::SimulatorBackend& sim, MixNetwork& mix,
                           MixTransportOptions options, Rng rng,
                           std::function<bool(graph::NodeId)> is_online)
    : sim_(sim),
      mix_(mix),
      options_(options),
      rng_(rng),
      is_online_(std::move(is_online)) {
  PPO_CHECK_MSG(options_.circuit_hops >= 1, "circuits need >= 1 hop");
  PPO_CHECK_MSG(static_cast<bool>(is_online_), "online oracle required");
}

bool MixTransport::send(graph::NodeId from, graph::NodeId to,
                        sim::EventFn on_deliver) {
  if (!is_online_(from)) return false;
  ++sent_;
  if (mix_.live_relay_count() < options_.circuit_hops) {
    // Not enough live relays for a circuit: the message is lost but
    // the protocol keeps running and recovers once relays revive.
    ++circuit_failures_;
    return true;
  }

  // The simulated payload only needs to identify the delivery: the
  // real content stays a closure, the bytes exercise the crypto path.
  crypto::Bytes payload(8);
  for (int i = 0; i < 4; ++i) {
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(from >> (8 * i));
    payload[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(to >> (8 * i));
  }
  bytes_sent_ += payload.size() +
                 options_.circuit_hops * kOnionLayerOverhead;

  const auto route = mix_.random_route(options_.circuit_hops, rng_);
  mix_.send(route, std::move(payload),
            [this, to, fn = std::move(on_deliver)](crypto::Bytes) {
              if (!is_online_(to)) return;  // destination went dark
              ++delivered_;
              fn();
            },
            rng_);
  return true;
}

}  // namespace ppo::privacylink
