#include "privacylink/mix_transport.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::privacylink {

MixTransport::MixTransport(sim::SimulatorBackend& sim, MixNetwork& mix,
                           MixTransportOptions options, Rng rng,
                           std::function<bool(graph::NodeId)> is_online,
                           std::size_t per_sender_streams)
    : sim_(sim),
      mix_(mix),
      options_(options),
      rng_(rng),
      is_online_(std::move(is_online)) {
  PPO_CHECK_MSG(options_.circuit_hops >= 1, "circuits need >= 1 hop");
  PPO_CHECK_MSG(static_cast<bool>(is_online_), "online oracle required");
  sender_rngs_.reserve(per_sender_streams);
  for (std::size_t v = 0; v < per_sender_streams; ++v)
    sender_rngs_.push_back(rng_.split());
}

bool MixTransport::send(graph::NodeId from, graph::NodeId to,
                        sim::EventFn on_deliver) {
  if (!is_online_(from)) return false;
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (mix_.live_relay_count() < options_.circuit_hops) {
    // Not enough live relays for a circuit: the message is lost but
    // the protocol keeps running and recovers once relays revive.
    circuit_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // The simulated payload only needs to identify the delivery: the
  // real content stays a closure, the bytes exercise the crypto path.
  crypto::Bytes payload(8);
  for (int i = 0; i < 4; ++i) {
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(from >> (8 * i));
    payload[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(to >> (8 * i));
  }
  bytes_sent_.fetch_add(
      payload.size() + options_.circuit_hops * kOnionLayerOverhead,
      std::memory_order_relaxed);

  Rng& rng = sender_rngs_.empty() ? rng_ : sender_rngs_[from];
  const auto route = mix_.random_route(options_.circuit_hops, rng);
  // Delivery belongs to the destination actor so the exit hop can
  // cross shards; on the serial backend the actor id is inert.
  mix_.send(route, std::move(payload),
            [this, to, fn = std::move(on_deliver)](crypto::Bytes) {
              if (!is_online_(to)) return;  // destination went dark
              delivered_.fetch_add(1, std::memory_order_relaxed);
              fn();
            },
            rng, static_cast<sim::ActorId>(to));
  return true;
}

}  // namespace ppo::privacylink
