// The pseudonym service (§III-B): creates pseudonyms and resolves
// them to endpoints for link establishment. The evaluation assumes an
// ideal service (paper §IV); this registry is that ideal service —
// the value→owner mapping it holds is exactly the knowledge the paper
// entrusts to the (assumed honest) anonymity infrastructure, never to
// peers.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "ckpt/io.hpp"
#include "graph/graph.hpp"
#include "privacylink/pseudonym.hpp"

namespace ppo::privacylink {

using NodeId = graph::NodeId;

class PseudonymService {
 public:
  /// `bits` is the pseudonym width p. Smaller widths raise collision
  /// odds; creation retries until an unused value is found.
  explicit PseudonymService(unsigned bits = 64) : bits_(bits) {}

  /// Mints a fresh pseudonym for `owner` valid for `lifetime` from
  /// `now`. The previous pseudonym of the owner (if any) is not
  /// revoked — the paper lets an old pseudonym live out its TTL while
  /// the replacement propagates.
  PseudonymRecord create(NodeId owner, sim::Time now, sim::Time lifetime,
                         Rng& rng);

  /// Resolves a pseudonym to its owner, provided it has not expired.
  /// Expired pseudonyms are unroutable and get garbage-collected.
  std::optional<NodeId> resolve(PseudonymValue value, sim::Time now);

  /// Read-only resolution: like resolve() but never mutates the
  /// registry, so concurrent lookups from shard workers are safe
  /// (expired entries are simply reported unknown; reclaim them with
  /// collect_garbage() at a quiescent point).
  std::optional<NodeId> lookup(PseudonymValue value, sim::Time now) const;

  /// Read-only resolution that also reports the registration's expiry,
  /// for callers that memoize resolution results (the overlay edge
  /// view): the returned (owner, expiry) pair is guaranteed stable
  /// until the expiry — a live value cannot be re-registered to a
  /// different owner, and every registration path stamps `now +
  /// lifetime`, so a same-owner re-registration can only extend the
  /// expiry, never shorten it.
  std::optional<std::pair<NodeId, sim::Time>> lookup_with_expiry(
      PseudonymValue value, sim::Time now) const;

  /// Registers a pseudonym minted elsewhere (the sharded overlay
  /// service draws values from per-node streams and publishes them at
  /// window barriers). The value must not collide with a live
  /// registration of a different owner.
  void register_minted(NodeId owner, const PseudonymRecord& record,
                       sim::Time now);

  /// Like register_minted(), but returns false instead of aborting
  /// when the value collides with a live registration of a different
  /// owner. Byzantine eclipse attackers register *aimed* values (close
  /// to a victim's sampler references), so cross-owner collisions are
  /// a legitimate runtime outcome there, not a configuration error.
  bool try_register_minted(NodeId owner, const PseudonymRecord& record,
                           sim::Time now);

  /// True if `value` is registered and alive at `now`.
  bool alive(PseudonymValue value, sim::Time now) const;

  unsigned bits() const { return bits_; }
  std::size_t registered_count() const { return owners_.size(); }

  /// Drops every expired registration (bulk GC for long runs).
  void collect_garbage(sim::Time now);

  /// Checkpoint/restore: the full registry, expired entries included
  /// (GC timing is part of the trajectory). Serialized sorted by
  /// value for byte-stable output.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  struct Registration {
    NodeId owner;
    sim::Time expiry;
  };

  unsigned bits_;
  std::unordered_map<PseudonymValue, Registration> owners_;
};

}  // namespace ppo::privacylink
