// Ideal anonymity-service transport (§IV): privacy-preserving links
// are reliable, low-latency and operational exactly when both ends are
// online. Payload delivery is type-erased — the sender packages the
// receiving node's handler invocation as a callback, and the transport
// contributes latency, the online gate, and accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/io.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "privacylink/delivery_journal.hpp"
#include "privacylink/link_transport.hpp"
#include "sim/backend.hpp"

namespace ppo::privacylink {

using NodeId = graph::NodeId;

struct TransportOptions {
  /// Per-message latency drawn uniformly from this window, in
  /// shuffling periods. "All messages sent through an overlay link
  /// are delivered in a short time" (§IV).
  double min_latency = 0.01;
  double max_latency = 0.05;
};

class Transport final : public LinkTransport {
 public:
  /// `is_online(v)` gates both send (source must be online) and
  /// delivery (destination must be online at arrival time).
  ///
  /// `per_sender_streams` > 0 gives each of that many sender ids a
  /// private latency stream split off `rng` in id order: latencies
  /// then depend only on the sender's own send sequence, never on the
  /// global interleaving — required for K-invariance on the sharded
  /// backend. 0 (default) keeps the legacy shared stream bit-exactly.
  Transport(sim::SimulatorBackend& sim, TransportOptions options, Rng rng,
            std::function<bool(NodeId)> is_online,
            std::size_t per_sender_streams = 0);

  /// Sends a message from `from` to `to`; `on_deliver` runs at the
  /// arrival time iff the destination is online then. Returns false
  /// (message not sent at all) only when the sender is offline.
  bool send(NodeId from, NodeId to, sim::EventFn on_deliver) override;

  std::uint64_t messages_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_delivered() const override {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// --- checkpoint/restore -------------------------------------------
  /// While set, every scheduled delivery is committed to the journal
  /// (fire time + ticket) so it can be rebuilt after a restore.
  void set_journal(DeliveryJournal* journal) { journal_ = journal; }

  /// Re-inserts a pending delivery at its original canonical position:
  /// rebuilds the online gate + delivery counter wrapper around the
  /// payload (pass an empty fn for a fault-dropped message).
  void restore_delivery(NodeId to, double fire_time,
                        sim::EventTicket ticket, sim::EventFn payload);

  /// RNG streams and counters (latency draws must continue exactly).
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  sim::SimulatorBackend& sim_;
  TransportOptions options_;
  Rng rng_;
  std::vector<Rng> sender_rngs_;  // non-empty iff per-sender streams
  std::function<bool(NodeId)> is_online_;
  DeliveryJournal* journal_ = nullptr;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace ppo::privacylink
