// Ideal anonymity-service transport (§IV): privacy-preserving links
// are reliable, low-latency and operational exactly when both ends are
// online. Payload delivery is type-erased — the sender packages the
// receiving node's handler invocation as a callback, and the transport
// contributes latency, the online gate, and accounting.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "privacylink/link_transport.hpp"
#include "sim/simulator.hpp"

namespace ppo::privacylink {

using NodeId = graph::NodeId;

struct TransportOptions {
  /// Per-message latency drawn uniformly from this window, in
  /// shuffling periods. "All messages sent through an overlay link
  /// are delivered in a short time" (§IV).
  double min_latency = 0.01;
  double max_latency = 0.05;
};

class Transport final : public LinkTransport {
 public:
  /// `is_online(v)` gates both send (source must be online) and
  /// delivery (destination must be online at arrival time).
  Transport(sim::Simulator& sim, TransportOptions options, Rng rng,
            std::function<bool(NodeId)> is_online);

  /// Sends a message from `from` to `to`; `on_deliver` runs at the
  /// arrival time iff the destination is online then. Returns false
  /// (message not sent at all) only when the sender is offline.
  bool send(NodeId from, NodeId to, sim::EventFn on_deliver) override;

  std::uint64_t messages_sent() const override { return sent_; }
  std::uint64_t messages_delivered() const override { return delivered_; }

 private:
  sim::Simulator& sim_;
  TransportOptions options_;
  Rng rng_;
  std::function<bool(NodeId)> is_online_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace ppo::privacylink
