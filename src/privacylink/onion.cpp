#include "privacylink/onion.hpp"

#include "common/check.hpp"
#include "crypto/hkdf.hpp"

namespace ppo::privacylink {

namespace {

const char kKeyContext[] = "ppo-mix-layer";

crypto::ChaChaKey derive_layer_key(const crypto::X25519Key& shared) {
  const crypto::Bytes key_bytes = crypto::hkdf(
      {}, crypto::BytesView(shared.data(), shared.size()),
      crypto::BytesView(reinterpret_cast<const std::uint8_t*>(kKeyContext),
                        sizeof(kKeyContext) - 1),
      crypto::kChaChaKeySize);
  crypto::ChaChaKey key{};
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  return key;
}

crypto::X25519Key random_key(Rng& rng) {
  crypto::X25519Key k{};
  for (std::size_t i = 0; i < k.size(); i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j)
      k[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return k;
}

}  // namespace

crypto::Bytes onion_wrap(const std::vector<HopSpec>& hops,
                         crypto::BytesView payload, Rng& rng) {
  PPO_CHECK_MSG(!hops.empty(), "onion route needs at least one hop");
  PPO_CHECK_MSG(hops.back().next_hop == kFinalHop,
                "last hop must be the exit (next_hop == kFinalHop)");

  crypto::Bytes inner(payload.begin(), payload.end());
  // Wrap from the exit layer outwards.
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    const crypto::X25519Key ephemeral_private = random_key(rng);
    const crypto::X25519Key ephemeral_public =
        crypto::x25519_public(ephemeral_private);
    const crypto::X25519Key shared =
        crypto::x25519(ephemeral_private, it->relay_public);
    const crypto::ChaChaKey layer_key = derive_layer_key(shared);

    crypto::ChaChaNonce nonce{};
    const std::uint64_t n0 = rng.next_u64();
    const std::uint32_t n1 = static_cast<std::uint32_t>(rng.next_u64());
    for (int i = 0; i < 8; ++i)
      nonce[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(n0 >> (8 * i));
    for (int i = 0; i < 4; ++i)
      nonce[8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(n1 >> (8 * i));

    crypto::Bytes plaintext;
    plaintext.reserve(4 + inner.size());
    for (int i = 0; i < 4; ++i)
      plaintext.push_back(static_cast<std::uint8_t>(it->next_hop >> (8 * i)));
    plaintext.insert(plaintext.end(), inner.begin(), inner.end());

    const crypto::Bytes sealed = crypto::aead_seal(
        layer_key, nonce, {},
        crypto::BytesView(plaintext.data(), plaintext.size()));

    crypto::Bytes layer;
    layer.reserve(kOnionLayerOverhead - crypto::kAeadTagSize + sealed.size());
    layer.insert(layer.end(), ephemeral_public.begin(), ephemeral_public.end());
    layer.insert(layer.end(), nonce.begin(), nonce.end());
    layer.insert(layer.end(), sealed.begin(), sealed.end());
    inner = std::move(layer);
  }
  return inner;
}

std::optional<UnwrappedLayer> onion_unwrap(
    const crypto::X25519Key& relay_private, crypto::BytesView layer) {
  constexpr std::size_t kHeader =
      crypto::kX25519KeySize + crypto::kChaChaNonceSize;
  if (layer.size() < kHeader + 4 + crypto::kAeadTagSize) return std::nullopt;

  crypto::X25519Key ephemeral_public{};
  std::copy(layer.begin(), layer.begin() + crypto::kX25519KeySize,
            ephemeral_public.begin());
  crypto::ChaChaNonce nonce{};
  std::copy(layer.begin() + crypto::kX25519KeySize,
            layer.begin() + static_cast<std::ptrdiff_t>(kHeader),
            nonce.begin());

  const crypto::X25519Key shared =
      crypto::x25519(relay_private, ephemeral_public);
  const crypto::ChaChaKey layer_key = derive_layer_key(shared);

  const auto opened =
      crypto::aead_open(layer_key, nonce, {}, layer.subspan(kHeader));
  if (!opened) return std::nullopt;

  UnwrappedLayer result;
  result.next_hop = 0;
  for (int i = 0; i < 4; ++i)
    result.next_hop |= static_cast<RelayId>((*opened)[static_cast<std::size_t>(i)])
                       << (8 * i);
  result.inner.assign(opened->begin() + 4, opened->end());
  return result;
}

}  // namespace ppo::privacylink
