#include "privacylink/pseudonym_service.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace ppo::privacylink {

PseudonymRecord PseudonymService::create(NodeId owner, sim::Time now,
                                         sim::Time lifetime, Rng& rng) {
  PPO_CHECK_MSG(lifetime > 0.0, "pseudonym lifetime must be positive");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const PseudonymValue value = random_pseudonym_value(rng, bits_);
    auto it = owners_.find(value);
    if (it != owners_.end()) {
      if (it->second.expiry > now) continue;  // live collision: retry
      owners_.erase(it);                      // stale registration: reuse
    }
    owners_.emplace(value, Registration{owner, now + lifetime});
    PPO_TRACE_EVENT(ppo::obs::TraceCategory::kPseudonym, "mint", owner,
                    (ppo::obs::TraceArg{"lifetime", lifetime}));
    return PseudonymRecord{value, now + lifetime};
  }
  PPO_CHECK_MSG(false, "pseudonym space exhausted — widen `bits`");
  return {};
}

std::optional<NodeId> PseudonymService::resolve(PseudonymValue value,
                                                sim::Time now) {
  const auto it = owners_.find(value);
  if (it == owners_.end()) return std::nullopt;
  if (it->second.expiry <= now) {
    owners_.erase(it);
    return std::nullopt;
  }
  return it->second.owner;
}

std::optional<NodeId> PseudonymService::lookup(PseudonymValue value,
                                               sim::Time now) const {
  const auto it = owners_.find(value);
  if (it == owners_.end() || it->second.expiry <= now) return std::nullopt;
  return it->second.owner;
}

std::optional<std::pair<NodeId, sim::Time>> PseudonymService::lookup_with_expiry(
    PseudonymValue value, sim::Time now) const {
  const auto it = owners_.find(value);
  if (it == owners_.end() || it->second.expiry <= now) return std::nullopt;
  return std::pair<NodeId, sim::Time>{it->second.owner, it->second.expiry};
}

void PseudonymService::register_minted(NodeId owner,
                                       const PseudonymRecord& record,
                                       sim::Time now) {
  const auto it = owners_.find(record.value);
  PPO_CHECK_MSG(it == owners_.end() || it->second.expiry <= now ||
                    it->second.owner == owner,
                "pseudonym collision across owners — widen `bits`");
  owners_.insert_or_assign(record.value,
                           Registration{owner, record.expiry});
}

bool PseudonymService::try_register_minted(NodeId owner,
                                           const PseudonymRecord& record,
                                           sim::Time now) {
  const auto it = owners_.find(record.value);
  if (it != owners_.end() && it->second.expiry > now &&
      it->second.owner != owner)
    return false;
  owners_.insert_or_assign(record.value,
                           Registration{owner, record.expiry});
  return true;
}

bool PseudonymService::alive(PseudonymValue value, sim::Time now) const {
  const auto it = owners_.find(value);
  return it != owners_.end() && it->second.expiry > now;
}

void PseudonymService::collect_garbage(sim::Time now) {
  std::size_t expired = 0;
  for (auto it = owners_.begin(); it != owners_.end();) {
    if (it->second.expiry <= now) {
      it = owners_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  if (expired > 0)
    PPO_TRACE_COUNTER(ppo::obs::TraceCategory::kPseudonym, "expired",
                      ppo::obs::kExternalOrigin, expired);
}

void PseudonymService::save_state(ckpt::Writer& w) const {
  w.tag(0x50534E4Du);  // 'PSNM'
  w.u32(bits_);
  std::vector<std::pair<PseudonymValue, Registration>> sorted(owners_.begin(),
                                                              owners_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.size(sorted.size());
  for (const auto& [value, reg] : sorted) {
    w.u64(value);
    w.u32(reg.owner);
    w.f64(reg.expiry);
  }
}

void PseudonymService::load_state(ckpt::Reader& r) {
  r.tag(0x50534E4Du);
  if (r.u32() != bits_) throw ckpt::ParseError("pseudonym width mismatch");
  owners_.clear();
  const std::size_t n = r.size();
  owners_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PseudonymValue value = r.u64();
    Registration reg;
    reg.owner = r.u32();
    reg.expiry = r.f64();
    owners_[value] = reg;
  }
}

}  // namespace ppo::privacylink
