// Abstract privacy-preserving link transport. Two realizations:
//  - Transport (transport.hpp): the ideal service the paper's
//    evaluation assumes (§IV) — reliable, low-latency, online-gated;
//  - MixTransport (mix_transport.hpp): every message actually rides
//    an onion circuit through the MixNetwork, with real per-layer
//    cryptography — the full-stack mode for demos and small-scale
//    validation that the protocol works over a real anonymity layer.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace ppo::privacylink {

class LinkTransport {
 public:
  virtual ~LinkTransport() = default;

  /// Sends a message from `from` to `to`; `on_deliver` runs at
  /// arrival time iff the destination is reachable then. Returns
  /// false when the sender cannot transmit at all (offline).
  virtual bool send(graph::NodeId from, graph::NodeId to,
                    sim::EventFn on_deliver) = 0;

  virtual std::uint64_t messages_sent() const = 0;
  virtual std::uint64_t messages_delivered() const = 0;
  std::uint64_t messages_dropped() const {
    return messages_sent() - messages_delivered();
  }
};

}  // namespace ppo::privacylink
