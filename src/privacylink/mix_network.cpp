#include "privacylink/mix_network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "crypto/sha256.hpp"

namespace ppo::privacylink {

namespace {

crypto::X25519Key random_key(Rng& rng) {
  crypto::X25519Key k{};
  for (std::size_t i = 0; i < k.size(); i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j)
      k[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return k;
}

std::uint64_t message_fingerprint(crypto::BytesView message) {
  const auto digest = crypto::sha256(message);
  std::uint64_t fp = 0;
  for (int i = 0; i < 8; ++i) fp |= static_cast<std::uint64_t>(digest[static_cast<std::size_t>(i)]) << (8 * i);
  return fp;
}

}  // namespace

MixNetwork::MixNetwork(sim::SimulatorBackend& sim, MixOptions options, Rng rng)
    : sim_(sim), options_(options), rng_(rng) {
  PPO_CHECK_MSG(options_.num_relays >= 1, "mix needs at least one relay");
  relays_.reserve(options_.num_relays);
  for (std::size_t i = 0; i < options_.num_relays; ++i)
    relays_.push_back(Relay{crypto::x25519_keypair(random_key(rng_)), true, {}});
}

const crypto::X25519Key& MixNetwork::relay_public_key(RelayId r) const {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  return relays_[r].keys.public_key;
}

std::vector<RelayId> MixNetwork::random_route(std::size_t hops,
                                              Rng& rng) const {
  std::vector<RelayId> alive;
  for (RelayId r = 0; r < relays_.size(); ++r)
    if (relays_[r].alive) alive.push_back(r);
  PPO_CHECK_MSG(alive.size() >= hops, "not enough live relays for route");
  return rng.sample(alive, hops);
}

double MixNetwork::hop_latency() {
  return rng_.uniform_double(options_.min_hop_latency,
                             options_.max_hop_latency);
}

void MixNetwork::send(const std::vector<RelayId>& route, crypto::Bytes payload,
                      std::function<void(crypto::Bytes)> deliver, Rng& rng) {
  PPO_CHECK_MSG(!route.empty(), "empty mix route");
  std::vector<HopSpec> hops;
  hops.reserve(route.size());
  for (std::size_t i = 0; i < route.size(); ++i) {
    PPO_CHECK_MSG(route[i] < relays_.size(), "relay id out of range");
    const RelayId next = (i + 1 < route.size()) ? route[i + 1] : kFinalHop;
    hops.push_back(HopSpec{next, relays_[route[i]].keys.public_key});
  }
  crypto::Bytes wrapped = onion_wrap(
      hops, crypto::BytesView(payload.data(), payload.size()), rng);
  sim_.schedule_after(hop_latency(),
                      [this, entry = route.front(), msg = std::move(wrapped),
                       deliver = std::move(deliver)]() mutable {
                        forward(entry, std::move(msg), std::move(deliver));
                      });
}

void MixNetwork::forward(RelayId relay, crypto::Bytes message,
                         std::function<void(crypto::Bytes)> deliver) {
  Relay& r = relays_[relay];
  if (!r.alive) {
    ++dropped_;
    return;
  }
  if (options_.replay_protection) {
    const std::uint64_t fp =
        message_fingerprint(crypto::BytesView(message.data(), message.size()));
    if (std::find(r.seen.begin(), r.seen.end(), fp) != r.seen.end()) {
      ++replays_blocked_;
      ++dropped_;
      return;
    }
    r.seen.push_back(fp);
  }
  const auto layer = onion_unwrap(
      r.keys.private_key, crypto::BytesView(message.data(), message.size()));
  if (!layer) {  // tampered or malformed: drop silently
    ++dropped_;
    return;
  }
  ++forwarded_;
  if (layer->next_hop == kFinalHop) {
    crypto::Bytes payload = layer->inner;
    sim_.schedule_after(hop_latency(), [deliver = std::move(deliver),
                                        payload = std::move(payload)]() mutable {
      deliver(std::move(payload));
    });
    return;
  }
  if (layer->next_hop >= relays_.size()) {
    ++dropped_;
    return;
  }
  crypto::Bytes inner = layer->inner;
  const RelayId next = layer->next_hop;
  sim_.schedule_after(hop_latency(), [this, next, inner = std::move(inner),
                                      deliver = std::move(deliver)]() mutable {
    forward(next, std::move(inner), std::move(deliver));
  });
}

void MixNetwork::inject(RelayId relay, crypto::Bytes message,
                        std::function<void(crypto::Bytes)> deliver) {
  PPO_CHECK_MSG(relay < relays_.size(), "relay id out of range");
  sim_.schedule_after(hop_latency(),
                      [this, relay, msg = std::move(message),
                       deliver = std::move(deliver)]() mutable {
                        forward(relay, std::move(msg), std::move(deliver));
                      });
}

void MixNetwork::fail_relay(RelayId r) {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  relays_[r].alive = false;
}

void MixNetwork::revive_relay(RelayId r) {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  relays_[r].alive = true;
}

bool MixNetwork::relay_alive(RelayId r) const {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  return relays_[r].alive;
}

std::size_t MixNetwork::live_relay_count() const {
  std::size_t live = 0;
  for (const Relay& r : relays_) live += r.alive ? 1 : 0;
  return live;
}

}  // namespace ppo::privacylink
