#include "privacylink/mix_network.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "crypto/sha256.hpp"

namespace ppo::privacylink {

namespace {

crypto::X25519Key random_key(Rng& rng) {
  crypto::X25519Key k{};
  for (std::size_t i = 0; i < k.size(); i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j)
      k[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return k;
}

std::uint64_t message_fingerprint(crypto::BytesView message) {
  const auto digest = crypto::sha256(message);
  std::uint64_t fp = 0;
  for (int i = 0; i < 8; ++i) fp |= static_cast<std::uint64_t>(digest[static_cast<std::size_t>(i)]) << (8 * i);
  return fp;
}

}  // namespace

MixNetwork::MixNetwork(sim::SimulatorBackend& sim, MixOptions options, Rng rng)
    : sim_(sim), options_(options), rng_(rng) {
  PPO_CHECK_MSG(options_.num_relays >= 1, "mix needs at least one relay");
  relays_.reserve(options_.num_relays);
  for (std::size_t i = 0; i < options_.num_relays; ++i)
    relays_.push_back(Relay{crypto::x25519_keypair(random_key(rng_)), true, {}, {}});
}

const crypto::X25519Key& MixNetwork::relay_public_key(RelayId r) const {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  return relays_[r].keys.public_key;
}

bool MixNetwork::alive_at(const Relay& r, double t) const {
  if (!r.alive) return false;
  for (const CrashWindow& w : r.crashes)
    if (t >= w.crash_at && (w.revive_at < 0.0 || t < w.revive_at))
      return false;
  return true;
}

std::vector<RelayId> MixNetwork::random_route(std::size_t hops,
                                              Rng& rng) const {
  const double now = sim_.now();
  std::vector<RelayId> alive;
  for (RelayId r = 0; r < relays_.size(); ++r)
    if (alive_at(relays_[r], now)) alive.push_back(r);
  PPO_CHECK_MSG(alive.size() >= hops, "not enough live relays for route");
  return rng.sample(alive, hops);
}

double MixNetwork::hop_latency(Rng& rng) const {
  return rng.uniform_double(options_.min_hop_latency,
                            options_.max_hop_latency);
}

void MixNetwork::send(const std::vector<RelayId>& route, crypto::Bytes payload,
                      std::function<void(crypto::Bytes)> deliver, Rng& rng,
                      sim::ActorId deliver_actor) {
  PPO_CHECK_MSG(!route.empty(), "empty mix route");
  std::vector<HopSpec> hops;
  hops.reserve(route.size());
  for (std::size_t i = 0; i < route.size(); ++i) {
    PPO_CHECK_MSG(route[i] < relays_.size(), "relay id out of range");
    const RelayId next = (i + 1 < route.size()) ? route[i + 1] : kFinalHop;
    hops.push_back(HopSpec{next, relays_[route[i]].keys.public_key});
  }
  crypto::Bytes wrapped = onion_wrap(
      hops, crypto::BytesView(payload.data(), payload.size()), rng);
  // One caller-stream draw seeds every hop latency of this message:
  // the whole trajectory is a function of the sender's send sequence.
  Rng msg_rng(rng.next_u64());
  const double entry_latency = hop_latency(msg_rng);
  sim_.schedule_after(entry_latency,
                      [this, entry = route.front(), msg = std::move(wrapped),
                       deliver = std::move(deliver), msg_rng,
                       deliver_actor]() mutable {
                        forward(entry, std::move(msg), std::move(deliver),
                                msg_rng, deliver_actor);
                      });
}

void MixNetwork::forward(RelayId relay, crypto::Bytes message,
                         std::function<void(crypto::Bytes)> deliver,
                         Rng msg_rng, sim::ActorId deliver_actor) {
  Relay& r = relays_[relay];
  if (!alive_at(r, sim_.now())) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (options_.replay_protection) {
    const std::uint64_t fp =
        message_fingerprint(crypto::BytesView(message.data(), message.size()));
    bool replay;
    {
      const std::lock_guard<std::mutex> lock(seen_mutex_);
      replay = std::find(r.seen.begin(), r.seen.end(), fp) != r.seen.end();
      if (!replay) r.seen.push_back(fp);
    }
    if (replay) {
      replays_blocked_.fetch_add(1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const auto layer = onion_unwrap(
      r.keys.private_key, crypto::BytesView(message.data(), message.size()));
  if (!layer) {  // tampered or malformed: drop silently
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  const double latency = hop_latency(msg_rng);
  if (layer->next_hop == kFinalHop) {
    crypto::Bytes payload = layer->inner;
    auto deliver_fn = [deliver = std::move(deliver),
                       payload = std::move(payload)]() mutable {
      deliver(std::move(payload));
    };
    // The exit hop is the only shard crossing: relay hops stay on the
    // sender's shard, the delivery belongs to the destination actor.
    if (deliver_actor == sim::kExternalActor)
      sim_.schedule_after(latency, std::move(deliver_fn));
    else
      sim_.schedule_for(deliver_actor, latency, std::move(deliver_fn));
    return;
  }
  if (layer->next_hop >= relays_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  crypto::Bytes inner = layer->inner;
  const RelayId next = layer->next_hop;
  sim_.schedule_after(latency,
                      [this, next, inner = std::move(inner),
                       deliver = std::move(deliver), msg_rng,
                       deliver_actor]() mutable {
                        forward(next, std::move(inner), std::move(deliver),
                                msg_rng, deliver_actor);
                      });
}

void MixNetwork::inject(RelayId relay, crypto::Bytes message,
                        std::function<void(crypto::Bytes)> deliver) {
  PPO_CHECK_MSG(relay < relays_.size(), "relay id out of range");
  Rng msg_rng(rng_.next_u64());
  const double latency = hop_latency(msg_rng);
  sim_.schedule_after(latency,
                      [this, relay, msg = std::move(message),
                       deliver = std::move(deliver), msg_rng]() mutable {
                        forward(relay, std::move(msg), std::move(deliver),
                                msg_rng, sim::kExternalActor);
                      });
}

void MixNetwork::fail_relay(RelayId r) {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  relays_[r].alive = false;
}

void MixNetwork::revive_relay(RelayId r) {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  relays_[r].alive = true;
}

void MixNetwork::schedule_crash(RelayId r, double crash_at, double revive_at) {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  PPO_CHECK_MSG(revive_at < 0.0 || revive_at > crash_at,
                "revival must come after the crash");
  relays_[r].crashes.push_back(CrashWindow{crash_at, revive_at});
}

bool MixNetwork::relay_alive(RelayId r) const {
  PPO_CHECK_MSG(r < relays_.size(), "relay id out of range");
  return alive_at(relays_[r], sim_.now());
}

std::size_t MixNetwork::live_relay_count() const {
  const double now = sim_.now();
  std::size_t live = 0;
  for (const Relay& r : relays_) live += alive_at(r, now) ? 1 : 0;
  return live;
}

}  // namespace ppo::privacylink
