// Journal of in-flight link messages, the piece that makes transport
// state checkpointable: scheduled delivery events are type-erased
// closures the snapshot cannot serialize, so while checkpointing is
// enabled every send records (a) a service-encoded payload recipe —
// enough to rebuild the destination handler call — staged just before
// the send, and (b) the delivery event's fire time and ticket,
// committed by the transport right after scheduling. At restore the
// service replays each entry: it rebuilds the payload closure from the
// recipe and re-inserts the delivery at its original canonical
// position.
//
// Threading: one slot per shard; every call except prune/collect/
// restore_entry touches only the calling shard's slot (sends happen on
// the sender's shard). prune/collect/restore_entry run single-threaded
// between windows.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/backend.hpp"

namespace ppo::privacylink {

class DeliveryJournal {
 public:
  struct Entry {
    std::string payload;  // service-encoded rebuild recipe (opaque here)
    graph::NodeId from = 0;
    graph::NodeId to = 0;
    double fire_time = 0.0;
    sim::EventTicket ticket;
    bool dropped = false;  // fault-dropped: delivery carries no payload
    bool faulty = false;   // wrapped by FaultyTransport's delivery counter
  };

  /// `slots`: shard count (1 for the serial backend). `slot_of`
  /// resolves the calling context's slot. `inclusive_prune` matches
  /// the backend's run_until semantics: the serial core executes
  /// events at exactly t == now (prune them), the sharded core leaves
  /// them pending (keep them).
  DeliveryJournal(std::size_t slots, std::function<std::size_t()> slot_of,
                  bool inclusive_prune)
      : slots_(slots == 0 ? 1 : slots),
        slot_of_(std::move(slot_of)),
        inclusive_(inclusive_prune) {}

  /// Service side, immediately before LinkTransport::send: stages the
  /// payload recipe the transport's commit will attach to.
  void stage(std::string payload, graph::NodeId from, graph::NodeId to) {
    Slot& s = slot();
    s.staged = true;
    s.pending.payload = std::move(payload);
    s.pending.from = from;
    s.pending.to = to;
  }

  /// Transport side, right after scheduling a delivery event: records
  /// the event's position. No-op when nothing is staged (sends that do
  /// not originate at the journal-aware seam). Copies rather than
  /// consumes the staged recipe so duplicated copies each commit.
  void commit(double fire_time, sim::EventTicket ticket) {
    Slot& s = slot();
    if (!s.staged) return;
    Entry e = s.pending;
    e.fire_time = fire_time;
    e.ticket = ticket;
    e.dropped = false;
    e.faulty = false;
    s.entries.push_back(std::move(e));
  }

  /// Fault-wrapper side: annotates the entry the inner transport just
  /// committed on this slot.
  void mark_last(bool dropped, bool faulty) {
    Slot& s = slot();
    if (!s.staged || s.entries.empty()) return;
    s.entries.back().dropped = dropped;
    s.entries.back().faulty = faulty;
  }

  /// Service side, after LinkTransport::send returns: closes the
  /// staging window (a refused send leaves no entry behind).
  void finish_send() { slot().staged = false; }

  /// Drops entries whose delivery already executed. Single-threaded.
  void prune(double now) {
    for (Slot& s : slots_) {
      auto dead = [&](const Entry& e) {
        return inclusive_ ? e.fire_time <= now : e.fire_time < now;
      };
      s.entries.erase(
          std::remove_if(s.entries.begin(), s.entries.end(), dead),
          s.entries.end());
    }
  }

  /// Re-registers a restored entry so it survives into the next
  /// checkpoint. Single-threaded (restore path).
  void restore_entry(Entry e) { slots_[0].entries.push_back(std::move(e)); }

  /// All live entries with pending deliveries, in canonical
  /// (time, origin, seq) order. Single-threaded.
  std::vector<Entry> collect(double now) const {
    std::vector<Entry> out;
    for (const Slot& s : slots_)
      for (const Entry& e : s.entries) {
        const bool pending =
            inclusive_ ? e.fire_time > now : e.fire_time >= now;
        if (pending) out.push_back(e);
      }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.fire_time != b.fire_time) return a.fire_time < b.fire_time;
      if (a.ticket.origin != b.ticket.origin)
        return a.ticket.origin < b.ticket.origin;
      return a.ticket.seq < b.ticket.seq;
    });
    return out;
  }

 private:
  struct Slot {
    bool staged = false;
    Entry pending;
    std::vector<Entry> entries;
  };

  Slot& slot() { return slots_[slot_of_ ? slot_of_() : 0]; }

  std::vector<Slot> slots_;
  std::function<std::size_t()> slot_of_;
  bool inclusive_;
};

}  // namespace ppo::privacylink
