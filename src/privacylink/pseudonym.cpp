#include "privacylink/pseudonym.hpp"

#include "common/check.hpp"

namespace ppo::privacylink {

PseudonymValue random_pseudonym_value(Rng& rng, unsigned bits) {
  PPO_CHECK_MSG(bits >= 8 && bits <= 64, "pseudonym width must be 8..64 bits");
  const std::uint64_t raw = rng.next_u64();
  if (bits == 64) return raw;
  return raw >> (64 - bits);
}

std::uint64_t pseudonym_distance(PseudonymValue a, PseudonymValue b) {
  return a > b ? a - b : b - a;
}

}  // namespace ppo::privacylink
