// Pseudonyms (§III): a pseudonym is a random p-bit sequence acting as
// an anonymous address for its owner, valid until an expiry time.
// What circulates in gossip messages is the (value, expiry) pair; the
// owner mapping lives only inside the pseudonym service.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace ppo::privacylink {

/// Node identity — the protected information. Only the (ideal)
/// services ever map pseudonyms back to it.
using NodeId = graph::NodeId;

/// The p-bit pseudonym value. p <= 64; the sampler's closeness metric
/// operates on this integer representation (§III-D assumes pseudonyms
/// are random bit sequences).
using PseudonymValue = std::uint64_t;

/// What peers learn about a pseudonym through gossip: the address and
/// when it stops being routable. The owner is never part of the
/// record.
struct PseudonymRecord {
  PseudonymValue value = 0;
  sim::Time expiry = 0.0;

  bool valid_at(sim::Time now) const { return now < expiry; }

  friend bool operator==(const PseudonymRecord&,
                         const PseudonymRecord&) = default;
};

/// Draws a fresh random p-bit value. `bits` in [8, 64].
PseudonymValue random_pseudonym_value(Rng& rng, unsigned bits);

/// |a - b| on the value line — the sampler's closeness measure.
std::uint64_t pseudonym_distance(PseudonymValue a, PseudonymValue b);

}  // namespace ppo::privacylink
