// Pseudonym-addressed unicast by random walk — the "additional
// routing layer" the paper names as a dissemination option (§I).
//
// A node that wants to message pseudonym P (learned, e.g., from an
// application-level reply address) usually has no link to it. The
// message performs a random walk over overlay links; any intermediate
// node that holds P among its own pseudonym links — or owns P — can
// complete delivery. Because the maintained overlay approximates a
// random graph in which P is sampled by ~S_avg other nodes, short
// walks find a holder with high probability; on the bare trust graph
// the same walk must stumble on the owner itself.
//
// Privacy: the walk carries only the target pseudonym; relays learn
// neither the sender's nor the receiver's identity (§III's link
// guarantees), at the usual cost of TTL-bounded extra traffic.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "overlay/service.hpp"

namespace ppo::routing {

using graph::NodeId;
using privacylink::PseudonymValue;

struct WalkOptions {
  /// Maximum hops per walker before the message is dropped.
  std::size_t ttl = 32;
  /// Independent parallel walkers (duplicate deliveries suppressed).
  std::size_t walkers = 1;
  /// Per-hop latency window (shuffling periods).
  double min_latency = 0.01;
  double max_latency = 0.05;
  /// Baseline mode: walk across trusted links only (what a bare F2F
  /// network could do) instead of all overlay links.
  bool trusted_links_only = false;
};

struct WalkResult {
  bool delivered = false;
  /// Hops of the first successful walker (0 = source held the link).
  std::size_t hops = 0;
  /// Simulated latency of the successful walker.
  double latency = 0.0;
  /// Total messages across all walkers (cost).
  std::uint64_t messages = 0;
};

/// Routes one message from `source` (must be online) toward the node
/// owning `target`. Walks step only across online nodes; delivery
/// succeeds when a current holder of `target` (or its owner) is
/// reached while the owner is online.
WalkResult route_to_pseudonym(overlay::OverlayService& service,
                              NodeId source, PseudonymValue target,
                              const WalkOptions& options, Rng& rng);

}  // namespace ppo::routing
