#include "routing/random_walk.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace ppo::routing {

namespace {

/// True when `node` can complete delivery of `target`: it owns the
/// pseudonym or holds it among its sampled links.
bool holds_target(overlay::OverlayService& service, NodeId node,
                  PseudonymValue target) {
  const auto own = service.node(node).own_pseudonym();
  if (own && own->value == target) return true;
  const auto links = service.node(node).pseudonym_links();
  return std::binary_search(links.begin(), links.end(), target);
}

}  // namespace

WalkResult route_to_pseudonym(overlay::OverlayService& service,
                              NodeId source, PseudonymValue target,
                              const WalkOptions& options, Rng& rng) {
  PPO_CHECK_MSG(source < service.num_nodes(), "source out of range");
  PPO_CHECK_MSG(service.is_online(source), "source must be online");
  PPO_CHECK_MSG(options.ttl >= 1 && options.walkers >= 1,
                "ttl and walkers must be positive");

  // Span id: per-thread sequence — routes never nest, and a
  // thread-local keeps concurrent sweep shards race-free.
  static thread_local std::uint64_t route_seq = 0;
  const std::uint64_t span_id = ++route_seq;
  PPO_TRACE_SPAN_BEGIN(obs::TraceCategory::kRouting, "route_walk",
                       static_cast<std::uint32_t>(source), span_id);

  WalkResult result;
  const auto owner = [&]() -> std::optional<NodeId> {
    // Final-hop check: the pseudonym service resolves the link; the
    // owner must be online to accept (links dark otherwise).
    for (NodeId v = 0; v < service.num_nodes(); ++v) {
      const auto own = service.node(v).own_pseudonym();
      if (own && own->value == target) return v;
    }
    return std::nullopt;
  }();

  for (std::size_t w = 0; w < options.walkers; ++w) {
    NodeId current = source;
    double latency = 0.0;
    for (std::size_t hop = 0; hop <= options.ttl; ++hop) {
      if (holds_target(service, current, target)) {
        if (owner && service.is_online(*owner)) {
          // One more link hop to the owner unless we are the owner.
          std::size_t extra = 0;
          if (current != *owner) {
            ++result.messages;
            latency += rng.uniform_double(options.min_latency,
                                          options.max_latency);
            extra = 1;
          }
          if (!result.delivered) {
            result.delivered = true;
            result.hops = hop + extra;
            result.latency = latency;
          }
        }
        break;  // this walker ends either way (holder reached)
      }
      if (hop == options.ttl) break;  // TTL exhausted

      // Step to a random ONLINE neighbor over current links.
      std::vector<NodeId> peers =
          options.trusted_links_only
              ? service.node(current).trusted_links()
              : service.current_peers(current);
      std::erase_if(peers,
                    [&](NodeId p) { return !service.is_online(p); });
      if (peers.empty()) break;  // stranded
      current = peers[rng.uniform_u64(peers.size())];
      ++result.messages;
      latency +=
          rng.uniform_double(options.min_latency, options.max_latency);
    }
  }
  PPO_TRACE_SPAN_END(
      obs::TraceCategory::kRouting, "route_walk",
      static_cast<std::uint32_t>(source), span_id,
      (obs::TraceArg{"delivered", result.delivered ? 1.0 : 0.0}),
      (obs::TraceArg{"messages", double(result.messages)}));
  return result;
}

}  // namespace ppo::routing
