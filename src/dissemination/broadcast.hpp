// Application-layer data dissemination over an overlay graph — the
// workloads the paper's introduction motivates (micro-news, mailing
// lists, group chat). Two protocols the paper names (§I): controlled
// flooding and epidemic (rumor-style) dissemination.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace ppo::dissem {

using graph::NodeId;

struct BroadcastOptions {
  /// Per-link delivery latency window (shuffling periods).
  double min_latency = 0.01;
  double max_latency = 0.05;

  /// Flooding: 0 = forward to ALL neighbors (controlled flooding via
  /// duplicate suppression). k > 0 = epidemic push to k random
  /// neighbors on first receipt.
  std::size_t fanout = 0;

  /// Messages stop propagating after this many hops (<0 = unlimited).
  int max_hops = -1;
};

struct BroadcastResult {
  std::size_t online_nodes = 0;   // reachable population
  std::size_t reached = 0;        // online nodes that got the message
  double coverage = 0.0;          // reached / online_nodes
  double mean_latency = 0.0;      // over reached nodes (source excluded)
  double max_latency = 0.0;
  std::uint64_t messages_sent = 0;
  std::uint32_t max_hops_used = 0;
};

/// Broadcasts one message from `source` across `g`, where only nodes
/// in `online` participate (offline endpoints drop traffic). Runs its
/// own event simulation to quiescence and reports delivery stats.
/// `source` must be online.
BroadcastResult broadcast(const graph::Graph& g,
                          const graph::NodeMask& online, NodeId source,
                          const BroadcastOptions& options, Rng& rng);

}  // namespace ppo::dissem
