#include "dissemination/broadcast.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "sim/simulator.hpp"

namespace ppo::dissem {

namespace {

struct BroadcastState {
  const graph::Graph& g;
  const graph::NodeMask& online;
  const BroadcastOptions& options;
  Rng& rng;
  sim::Simulator sim;

  std::vector<char> received;
  BroadcastResult result;
  RunningStats latency;

  BroadcastState(const graph::Graph& graph, const graph::NodeMask& mask,
                 const BroadcastOptions& opts, Rng& r)
      : g(graph), online(mask), options(opts), rng(r),
        received(graph.num_nodes(), 0) {}

  void forward_from(NodeId node, std::uint32_t hops) {
    if (options.max_hops >= 0 &&
        hops >= static_cast<std::uint32_t>(options.max_hops))
      return;
    const auto nbrs = g.neighbors(node);
    std::vector<NodeId> targets(nbrs.begin(), nbrs.end());
    if (options.fanout > 0 && targets.size() > options.fanout)
      targets = rng.sample(targets, options.fanout);
    for (const NodeId next : targets) {
      ++result.messages_sent;
      const double latency_draw =
          rng.uniform_double(options.min_latency, options.max_latency);
      sim.schedule_after(latency_draw, [this, next, hops] {
        deliver(next, hops + 1);
      });
    }
  }

  void deliver(NodeId node, std::uint32_t hops) {
    if (!online.contains(node)) return;  // offline endpoint drops it
    if (received[node]) return;          // duplicate suppression
    received[node] = 1;
    ++result.reached;
    latency.add(sim.now());
    result.max_hops_used = std::max(result.max_hops_used, hops);
    forward_from(node, hops);
  }
};

}  // namespace

BroadcastResult broadcast(const graph::Graph& g,
                          const graph::NodeMask& online, NodeId source,
                          const BroadcastOptions& options, Rng& rng) {
  PPO_CHECK_MSG(source < g.num_nodes(), "source out of range");
  PPO_CHECK_MSG(online.contains(source), "source must be online");

  BroadcastState state(g, online, options, rng);
  state.result.online_nodes = online.count(g.num_nodes());

  state.received[source] = 1;
  state.result.reached = 1;
  state.forward_from(source, 0);
  state.sim.run_all();

  state.result.coverage =
      state.result.online_nodes == 0
          ? 0.0
          : static_cast<double>(state.result.reached) /
                static_cast<double>(state.result.online_nodes);
  state.result.mean_latency = state.latency.mean();
  state.result.max_latency = state.latency.max();
  return state.result;
}

}  // namespace ppo::dissem
