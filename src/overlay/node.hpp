// Per-node overlay-maintenance protocol (§III): trusted links from the
// trust graph, pseudonym links chosen by the slot sampler, periodic
// shuffling, and TTL-driven pseudonym renewal. All I/O goes through
// the NodeEnvironment interface implemented by OverlayService.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ckpt/io.hpp"
#include "common/arena.hpp"
#include "common/flat_map.hpp"
#include "overlay/cache.hpp"
#include "overlay/params.hpp"
#include "overlay/sampler.hpp"
#include "privacylink/pseudonym.hpp"

namespace ppo::overlay {

using privacylink::NodeId;

/// Services the node consumes: messaging, the pseudonym service, and
/// the simulator clock. Keeps OverlayNode free of global state and
/// directly unit-testable against a mock environment.
class NodeEnvironment {
 public:
  virtual ~NodeEnvironment() = default;

  virtual sim::Time now() const = 0;
  virtual bool is_online(NodeId node) const = 0;

  /// Mints a pseudonym for `owner` at the pseudonym service.
  virtual PseudonymRecord mint_pseudonym(NodeId owner, double lifetime) = 0;

  /// Resolves a live pseudonym to its owner (ideal service).
  virtual std::optional<NodeId> resolve(PseudonymValue value) = 0;

  /// Ships a shuffle request/response over a privacy-preserving link.
  virtual void send_shuffle_request(NodeId from, NodeId to,
                                    std::vector<PseudonymRecord> set) = 0;
  virtual void send_shuffle_response(NodeId from, NodeId to,
                                     std::vector<PseudonymRecord> set) = 0;

  /// One-shot timer (used for pseudonym-renewal alarms).
  virtual void schedule(double delay, sim::EventFn fn) = 0;

  /// Ticket of the event the most recent schedule() call registered
  /// (checkpoint journaling). Environments that do not checkpoint —
  /// unit-test mocks — keep the default no-op.
  virtual sim::EventTicket last_scheduled() const { return {}; }
};

class OverlayNode {
 public:
  struct Counters {
    std::uint64_t requests_sent = 0;   // retransmissions included
    std::uint64_t responses_sent = 0;
    std::uint64_t shuffles_completed = 0;  // responses received
    std::uint64_t online_ticks = 0;
    std::size_t max_out_degree = 0;

    /// Degradation accounting (fault-tolerance extension): how the
    /// node fares when the network loses or delays its exchanges.
    std::uint64_t request_timeouts = 0;    // timer fired, no response yet
    std::uint64_t request_retries = 0;     // retransmissions sent
    std::uint64_t exchanges_aborted = 0;   // pending exchange given up
    std::uint64_t stale_responses = 0;     // response without a pending
                                           // exchange (late or duplicate)

    /// Byzantine-defense accounting (§III-E extension): records
    /// rejected by expiry/format validation on merge, and shuffle
    /// requests dropped by the per-peer rate limiter.
    std::uint64_t forged_rejected = 0;
    std::uint64_t requests_rate_limited = 0;

    std::uint64_t messages_sent() const {
      return requests_sent + responses_sent;
    }
  };

  OverlayNode(NodeId id, const OverlayParams& params,
              std::vector<NodeId> trusted_neighbors, NodeEnvironment& env,
              Rng rng);

  /// Service mode: the node's hot state (cache entries, sampler slot
  /// arrays, pending-exchange block) is carved from `arena`, which
  /// must outlive the node. Nodes are movable (vector storage in the
  /// services); arena chunks never relocate, so moves keep all spans
  /// valid.
  OverlayNode(Arena& arena, NodeId id, const OverlayParams& params,
              std::vector<NodeId> trusted_neighbors, NodeEnvironment& env,
              Rng rng);

  OverlayNode(OverlayNode&&) = default;
  OverlayNode(const OverlayNode&) = delete;
  OverlayNode& operator=(const OverlayNode&) = delete;

  NodeId id() const { return id_; }
  std::size_t trust_degree() const { return trusted_.size(); }
  std::size_t slot_capacity() const { return sampler_.slot_count(); }

  /// Churn callbacks (driven by OverlayService).
  void handle_online();
  void handle_offline();

  /// Dynamic membership: a newly joined user added `this` to their
  /// trusted peers; the trust edge is mutual (§II-B). Does not shrink
  /// an already-sized sampler — only future nodes see the new degree.
  void add_trusted_neighbor(NodeId neighbor);

  /// One shuffle-period tick: pick a random overlay link, ship own
  /// pseudonym + cache sample to its far end.
  void shuffle_tick();

  /// Incoming shuffle traffic (already gated on this node being
  /// online by the transport).
  void handle_shuffle_request(NodeId from,
                              const std::vector<PseudonymRecord>& received);
  void handle_shuffle_response(const std::vector<PseudonymRecord>& received);

  /// Current pseudonym links: distinct live sampled values.
  std::vector<PseudonymValue> pseudonym_links() const;

  /// The sampler's permanent reference values (immutable after
  /// construction; safe to read across shards). Exposed for the
  /// §III-E eclipse-attack studies and their accounting.
  std::vector<PseudonymValue> sampler_references() const {
    return sampler_.references();
  }
  const std::vector<NodeId>& trusted_links() const { return trusted_; }

  /// Out-degree right now: trusted links + live pseudonym links.
  std::size_t out_degree() const;

  const Counters& counters() const { return counters_; }
  /// An initiated shuffle is awaiting its response (test/diagnostic).
  bool has_pending_exchange() const { return pending_.has_value(); }
  const SlotSampler::ReplacementCounters& replacement_counters() const {
    return sampler_.counters();
  }
  /// Direct sampler access (slot inspection for eclipse accounting).
  const SlotSampler& sampler() const { return sampler_; }
  const PseudonymCache& cache() const { return cache_; }

  /// Own live pseudonym, if any (test/diagnostic use).
  std::optional<PseudonymRecord> own_pseudonym() const;

  /// Instrumentation for the §III-E attack studies: plants a record
  /// in this node's cache as if it had just arrived in a shuffle from
  /// an (adversarial) neighbor.
  void inject_cache_record(const PseudonymRecord& record);

  /// --- checkpoint/restore -------------------------------------------
  /// One journaled one-shot timer: where it sits in the event queue
  /// and the closure key (renewal epoch or exchange id) needed to
  /// rebuild its payload.
  struct TimerRecord {
    double fire_time = 0.0;
    sim::EventTicket ticket;
    std::uint64_t key = 0;
  };

  /// Serializes the node's full mutable state, including the pending
  /// one-shot timers. `now` + `inclusive_fired` define which journal
  /// entries have already fired (serial backend: fire <= now; sharded:
  /// fire < now) and are omitted.
  void save_state(ckpt::Writer& w, sim::Time now, bool inclusive_fired) const;
  void load_state(ckpt::Reader& r);

  /// After load_state: the timers that were pending at save time. The
  /// owning service re-registers them with restore_event_any using
  /// make_renewal_event / make_timeout_event as payloads.
  const std::vector<TimerRecord>& restored_renewal_timers() const {
    return renewal_journal_;
  }
  const std::vector<TimerRecord>& restored_exchange_timers() const {
    return exchange_journal_;
  }

  /// Rebuild the exact closures schedule_renewal_alarm /
  /// arm_exchange_timer originally registered (stale keys included —
  /// they must still fire as no-ops to keep the trajectory identical).
  sim::EventFn make_renewal_event(std::uint64_t epoch);
  sim::EventFn make_timeout_event(std::uint64_t exchange_id);

  /// §III-E-4 extension (requires params.population_estimation):
  /// estimated number of participating nodes = count of distinct live
  /// pseudonyms this node has seen in gossip (every participant owns
  /// exactly one live pseudonym at a time, so in a small system the
  /// count converges to |U| from below). Own pseudonym included.
  std::size_t estimated_population() const;

 private:
  /// Own pseudonym TTL management (§III-C).
  void ensure_own_pseudonym();
  void schedule_renewal_alarm();
  double current_lifetime() const;

  OverlayNode(Arena* arena, NodeId id, const OverlayParams& params,
              std::vector<NodeId> trusted_neighbors, NodeEnvironment& env,
              Rng rng);

  /// Merges a received set into cache + sampler. `sent` is this
  /// node's half of the exchange (CYCLON victim preference).
  void merge_received(const std::vector<PseudonymRecord>& received,
                      std::span<const PseudonymRecord> sent);

  /// Builds this node's half of a shuffle exchange.
  std::vector<PseudonymRecord> compose_shuffle_set();

  /// Defense helpers (§III-E): the longest remaining lifetime a
  /// received record may claim, and the per-peer rate-limit gate.
  double max_accepted_lifetime() const;
  bool admit_request(NodeId from, sim::Time now);

  /// Records a gossiped pseudonym for the population estimator.
  void note_seen(const PseudonymRecord& record, sim::Time now);

  NodeId id_;
  // By value: nodes outlive most callers' params objects (several
  // tests pass temporaries), and the struct is small.
  const OverlayParams params_;
  std::vector<NodeId> trusted_;
  NodeEnvironment& env_;
  Rng rng_;

  PseudonymCache cache_;
  SlotSampler sampler_;

  std::optional<PseudonymRecord> own_;
  /// All values this node has ever owned: received copies of them are
  /// self-addressed and never cached or sampled.
  std::vector<PseudonymValue> own_history_;
  bool online_ = false;
  bool ever_started_ = false;
  std::uint64_t renewal_epoch_ = 0;

  /// The one in-flight initiated exchange. Timeout-scoped: a response
  /// only merges while its exchange is pending, so a lost response
  /// cannot leak the sent set into a later exchange and a duplicated
  /// response cannot merge twice. The sent set itself lives in
  /// `pending_sent_` (one fixed block per node — there is at most one
  /// pending exchange at a time, so no per-exchange allocation).
  struct PendingExchange {
    std::uint64_t id = 0;  // monotone exchange id, guards stale timers
    NodeId target = 0;
    std::size_t retries_used = 0;
    double timeout = 0.0;  // current backoff interval
    /// Sim time the exchange was initiated — feeds the live
    /// shuffle-latency histogram at completion. Part of the
    /// trajectory state regardless of telemetry, so observing it
    /// cannot perturb a run.
    double started = 0.0;
  };

  void begin_exchange(NodeId target, std::vector<PseudonymRecord> set);
  void arm_exchange_timer();
  void handle_exchange_timeout(std::uint64_t exchange_id);
  void abort_pending_exchange();

  std::optional<PendingExchange> pending_;
  /// The pending exchange's sent set (CYCLON victim preference),
  /// re-used verbatim by retransmissions. Capacity shuffle_length —
  /// the most compose_shuffle_set() can produce. Contents stay intact
  /// through merge_received after pending_ is cleared (nothing there
  /// composes a new set), so the merge reads the block directly.
  FixedBlock<PseudonymRecord> pending_sent_;
  std::uint64_t next_exchange_id_ = 0;

  /// Adaptive-lifetime extension state.
  sim::Time offline_since_ = 0.0;
  double offline_ewma_;

  /// §III-E-4 population estimator: live pseudonym values seen in
  /// gossip, with their expiries (purged opportunistically).
  std::vector<PseudonymRecord> seen_pseudonyms_;
  FlatMap64 seen_index_;

  /// Per-peer request-acceptance window (rate-limit defense). Only
  /// populated when params.peer_rate_limit > 0.
  struct RateBucket {
    sim::Time window_start = -1e18;
    std::uint32_t accepted = 0;
  };
  std::unordered_map<NodeId, RateBucket> request_rate_;

  /// Checkpoint journals of the one-shot timers currently in the
  /// event queue (stale-keyed entries stay until they fire). Bounded:
  /// each add prunes entries that have certainly fired.
  void journal_timer(std::vector<TimerRecord>& journal, double fire_time,
                     std::uint64_t key);
  std::vector<TimerRecord> renewal_journal_;
  std::vector<TimerRecord> exchange_journal_;

  Counters counters_;
};

}  // namespace ppo::overlay
