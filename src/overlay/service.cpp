#include "overlay/service.hpp"

#include <string>
#include <utility>

#include "common/check.hpp"
#include "sim/restore.hpp"

namespace ppo::overlay {

OverlayService::OverlayService(sim::Simulator& sim,
                               const graph::Graph& trust_graph,
                               const churn::ChurnModel& churn_model,
                               OverlayServiceOptions options, Rng rng)
    : OverlayService(sim, trust_graph,
                     std::vector<const churn::ChurnModel*>(
                         trust_graph.num_nodes(), &churn_model),
                     options, rng) {}

OverlayService::OverlayService(
    sim::Simulator& sim, const graph::Graph& trust_graph,
    std::vector<const churn::ChurnModel*> churn_models,
    OverlayServiceOptions options, Rng rng)
    : sim_(sim),
      trust_graph_(trust_graph),
      options_(options),
      rng_(rng),
      pseudonyms_(options_.params.pseudonym_bits),
      churn_(sim, std::move(churn_models), rng_.split()) {
  PPO_CHECK_MSG(trust_graph.num_nodes() >= 2, "trust graph too small");
  PPO_CHECK_MSG(churn_.num_nodes() == trust_graph.num_nodes(),
                "one churn model per node required");
  const auto online = [this](NodeId v) { return churn_.is_online(v); };
  if (options_.use_mix_network) {
    mix_ = std::make_unique<privacylink::MixNetwork>(sim, options_.mix,
                                                     rng_.split());
    transport_ = std::make_unique<privacylink::MixTransport>(
        sim, *mix_, options_.mix_transport, rng_.split(), online);
  } else {
    auto bare = std::make_unique<privacylink::Transport>(
        sim, options_.transport, rng_.split(), online);
    bare_ = bare.get();
    transport_ = std::move(bare);
  }
  link_ = transport_.get();
  if (options_.link_faults && options_.link_faults->enabled()) {
    // Seeded from the plan, not from rng_: wrapping never perturbs
    // the protocol's own random draws.
    faulty_ = std::make_unique<fault::FaultyTransport>(
        sim, *transport_, *options_.link_faults);
    link_ = faulty_.get();
  }
  for (NodeId v = 0; v < trust_graph.num_nodes(); ++v) {
    const auto nbrs = trust_graph.neighbors(v);
    nodes_.emplace_back(arena_, v, options_.params,
                        std::vector<NodeId>(nbrs.begin(), nbrs.end()), *this,
                        rng_.split());
  }
  init_adversary();
  if (options_.observer && options_.observer->enabled())
    observer_ = std::make_unique<inference::ObserverAdversary>(
        *options_.observer, nodes_.size());
}

void OverlayService::init_adversary() {
  if (!options_.adversary || !options_.adversary->enabled()) return;
  engine_ = std::make_unique<adversary::AdversaryEngine>(
      *options_.adversary, nodes_.size(),
      adversary::EngineConfig{options_.params.shuffle_length,
                              options_.params.pseudonym_lifetime,
                              options_.params.pseudonym_bits});
  engine_->set_reference_probe(
      [this](NodeId v) { return nodes_[v].sampler_references(); });
  // Polluters concentrate their flood on a fixed trusted neighbour
  // (eclipsers aim at their victim, set by the engine itself).
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (engine_->role_of(v) != adversary::Role::kCachePolluter) continue;
    const auto nbrs = trust_graph_.neighbors(v);
    if (!nbrs.empty()) engine_->set_request_redirect(v, nbrs.front());
  }
}

void OverlayService::start() {
  PPO_CHECK_MSG(!started_, "overlay service already started");
  started_ = true;

  churn_.start(churn::ChurnCallbacks{
      .on_online = [this](NodeId v) { nodes_[v].handle_online(); },
      .on_offline = [this](NodeId v) { nodes_[v].handle_offline(); },
  });

  ticks_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) start_ticks(v);
}

void OverlayService::start_ticks(NodeId v) {
  // Attack tempo: polluters tick polluter_tick_multiplier× faster.
  // The phase draw count per node is unchanged (one draw either way),
  // so honest nodes' streams are unaffected by the multiplier.
  const double period =
      options_.params.shuffle_period /
      (engine_ ? engine_->tick_rate_multiplier(v) : 1.0);
  const double phase = rng_.uniform_double(0.0, period);
  ticks_.push_back(sim::PeriodicTask::start(
      sim_, phase, period, [this, v] { nodes_[v].shuffle_tick(); }));
}

NodeId OverlayService::add_member(
    const std::vector<NodeId>& trusted_neighbors) {
  PPO_CHECK_MSG(started_, "start() the service before adding members");
  PPO_CHECK_MSG(!trusted_neighbors.empty(),
                "a joining user needs at least one inviting peer");
  std::vector<NodeId> inviters = trusted_neighbors;
  std::sort(inviters.begin(), inviters.end());
  inviters.erase(std::unique(inviters.begin(), inviters.end()),
                 inviters.end());
  for (const NodeId nb : inviters)
    PPO_CHECK_MSG(nb < nodes_.size(), "inviter out of range");

  const NodeId v = trust_graph_.add_nodes(1);
  for (const NodeId nb : inviters) {
    trust_graph_.add_edge(v, nb);
    nodes_[nb].add_trusted_neighbor(v);
  }
  trust_graph_.finalize();

  nodes_.emplace_back(arena_, v, options_.params, std::move(inviters), *this,
                      rng_.split());
  start_ticks(v);
  // The churn driver fires on_online immediately (the join moment).
  const NodeId driver_id = churn_.add_node();
  PPO_CHECK(driver_id == v);
  return v;
}

PseudonymRecord OverlayService::mint_pseudonym(NodeId owner,
                                               double lifetime) {
  return pseudonyms_.create(owner, sim_.now(), lifetime, rng_);
}

std::optional<NodeId> OverlayService::resolve(PseudonymValue value) {
  // A blacked-out pseudonym service answers no resolution request;
  // the protocol skips the shuffle round (graceful degradation).
  if (!pseudonym_service_available_) return std::nullopt;
  return pseudonyms_.resolve(value, sim_.now());
}

void OverlayService::send_shuffle_request(NodeId from, NodeId to,
                                          std::vector<PseudonymRecord> set) {
  if (engine_) {
    const auto verdict =
        engine_->transform_outgoing(from, sim_.now(), /*is_response=*/false,
                                    set);
    for (const PseudonymRecord& record : verdict.to_register)
      pseudonyms_.try_register_minted(from, record, sim_.now());
    if (verdict.suppress) return;
    to = engine_->redirect_request_target(from, to);
  }
  // Observer capture is read-only and happens after the adversary
  // transform, so it logs exactly what is on the wire.
  std::optional<inference::PendingObservation> observed;
  if (observer_)
    observed = observer_->capture(from, to, sim_.now(),
                                  /*is_response=*/false,
                                  nodes_[from].own_pseudonym(), set);
  if (journal_)
    journal_->stage(encode_delivery(/*is_response=*/false, from, to, set,
                                    observed),
                    from, to);
  link_->send(from, to, [this, from, to, set = std::move(set),
                         observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_request(from, set);
  });
  if (journal_) journal_->finish_send();
}

void OverlayService::send_shuffle_response(NodeId from, NodeId to,
                                           std::vector<PseudonymRecord> set) {
  if (engine_) {
    const auto verdict =
        engine_->transform_outgoing(from, sim_.now(), /*is_response=*/true,
                                    set);
    for (const PseudonymRecord& record : verdict.to_register)
      pseudonyms_.try_register_minted(from, record, sim_.now());
    if (verdict.suppress) return;  // defector swallows the response
  }
  std::optional<inference::PendingObservation> observed;
  if (observer_)
    observed = observer_->capture(from, to, sim_.now(),
                                  /*is_response=*/true,
                                  nodes_[from].own_pseudonym(), set);
  if (journal_)
    journal_->stage(encode_delivery(/*is_response=*/true, from, to, set,
                                    observed),
                    from, to);
  link_->send(from, to, [this, to, set = std::move(set),
                         observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_response(set);
  });
  if (journal_) journal_->finish_send();
}

void OverlayService::schedule(double delay, sim::EventFn fn) {
  sim_.schedule_after(delay, std::move(fn));
}

graph::Graph OverlayService::overlay_snapshot() {
  graph::Graph overlay(nodes_.size());
  for (const auto& [u, v] : trust_graph_.edges()) overlay.add_edge(u, v);
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    for (const PseudonymValue value : nodes_[u].pseudonym_links()) {
      const auto owner = pseudonyms_.resolve(value, sim_.now());
      if (owner && *owner != u) overlay.add_edge(u, *owner);
    }
  }
  overlay.finalize();
  return overlay;
}

std::span<const std::pair<graph::NodeId, graph::NodeId>>
OverlayService::overlay_edges() {
  const sim::Time now = sim_.now();
  // Omniscient metric view (matches overlay_snapshot): resolve at the
  // registry directly, bypassing the availability gate.
  return edge_view_.collect(
      trust_graph_, now,
      [this](NodeId u) -> const SlotSampler& { return nodes_[u].sampler(); },
      [this, now](PseudonymValue value) {
        return pseudonyms_.lookup_with_expiry(value, now);
      });
}

std::vector<NodeId> OverlayService::current_peers(NodeId v) {
  PPO_CHECK_MSG(v < nodes_.size(), "node out of range");
  std::vector<NodeId> peers(nodes_[v].trusted_links());
  for (const PseudonymValue value : nodes_[v].pseudonym_links()) {
    const auto owner = pseudonyms_.resolve(value, sim_.now());
    if (owner && *owner != v) peers.push_back(*owner);
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

SlotSampler::ReplacementCounters OverlayService::total_replacements() const {
  SlotSampler::ReplacementCounters total;
  for (const OverlayNode& node : nodes_) {
    const auto& c = node.replacement_counters();
    total.refills_after_expiry += c.refills_after_expiry;
    total.better_displacements += c.better_displacements;
    total.initial_fills += c.initial_fills;
    total.displacements_damped += c.displacements_damped;
  }
  return total;
}

OverlayNode::Counters OverlayService::total_counters() const {
  OverlayNode::Counters total;
  for (const OverlayNode& node : nodes_) {
    const auto& c = node.counters();
    total.requests_sent += c.requests_sent;
    total.responses_sent += c.responses_sent;
    total.shuffles_completed += c.shuffles_completed;
    total.online_ticks += c.online_ticks;
    total.max_out_degree = std::max(total.max_out_degree, c.max_out_degree);
    total.request_timeouts += c.request_timeouts;
    total.request_retries += c.request_retries;
    total.exchanges_aborted += c.exchanges_aborted;
    total.stale_responses += c.stale_responses;
    total.forged_rejected += c.forged_rejected;
    total.requests_rate_limited += c.requests_rate_limited;
  }
  return total;
}

std::uint64_t OverlayService::count_eclipsed_slots() const {
  if (!engine_) return 0;
  const sim::Time now = sim_.now();
  std::uint64_t eclipsed = 0;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (engine_->role_of(v) != adversary::Role::kHonest) continue;
    const SlotSampler& sampler = nodes_[v].sampler();
    for (std::size_t i = 0; i < sampler.slot_count(); ++i) {
      const auto [ref, record] = sampler.slot(i);
      (void)ref;
      if (!record || !record->valid_at(now)) continue;
      const auto owner = pseudonyms_.lookup(record->value, now);
      if (owner && engine_->role_of(*owner) != adversary::Role::kHonest)
        ++eclipsed;
    }
  }
  return eclipsed;
}

void OverlayService::enable_checkpointing() {
  if (journal_) return;
  PPO_CHECK_MSG(checkpointable(),
                "configuration not checkpointable: mix transport or a "
                "two-stage (jitter/reorder) fault plan is enabled");
  journal_ = std::make_unique<privacylink::DeliveryJournal>(
      1, nullptr, /*inclusive_prune=*/true);
  bare_->set_journal(journal_.get());
  if (faulty_) faulty_->set_journal(journal_.get());
}

std::string OverlayService::encode_delivery(
    bool is_response, NodeId from, NodeId to,
    const std::vector<PseudonymRecord>& set,
    const std::optional<inference::PendingObservation>& observed) const {
  ckpt::Writer w;
  w.u8(is_response ? 1 : 0);
  w.u32(from);
  w.u32(to);
  w.size(set.size());
  for (const auto& record : set) {
    w.u64(record.value);
    w.f64(record.expiry);
  }
  w.b(observed.has_value());
  if (observed) {
    w.f64(observed->time);
    w.u32(observed->src);
    w.u64(observed->src_pseudo);
    w.f64(observed->src_expiry);
    w.u64(observed->digest);
    w.b(observed->is_response);
  }
  return w.take();
}

sim::EventFn OverlayService::decode_delivery(const std::string& blob) {
  ckpt::Reader r(blob);
  const bool is_response = r.u8() != 0;
  const NodeId from = r.u32();
  const NodeId to = r.u32();
  if (to >= nodes_.size()) throw ckpt::ParseError("delivery target range");
  std::vector<PseudonymRecord> set(r.size());
  for (auto& record : set) {
    record.value = r.u64();
    record.expiry = r.f64();
  }
  std::optional<inference::PendingObservation> observed;
  if (r.b()) {
    if (!observer_) throw ckpt::ParseError("observation without observer");
    inference::PendingObservation p;
    p.time = r.f64();
    p.src = r.u32();
    p.src_pseudo = r.u64();
    p.src_expiry = r.f64();
    p.digest = r.u64();
    p.is_response = r.b();
    observed = p;
  }
  r.done();
  // Rebuild the exact closures the send seams register.
  if (is_response) {
    return [this, to, set = std::move(set), observed = std::move(observed)] {
      if (engine_) engine_->observe_received(to, set);
      if (observed)
        observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
      nodes_[to].handle_shuffle_response(set);
    };
  }
  return [this, from, to, set = std::move(set),
          observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_request(from, set);
  };
}

void OverlayService::save_checkpoint(ckpt::Writer& w) const {
  PPO_CHECK_MSG(started_, "checkpoint requires a started service");
  PPO_CHECK_MSG(journal_ != nullptr,
                "enable_checkpointing() before save_checkpoint()");
  const sim::Time now = sim_.now();
  w.tag(0x53455256u);  // 'SERV'
  // Simulator core: clock, sequence counter, executed-event count.
  w.f64(now);
  w.u64(sim_.next_seq());
  w.u64(sim_.events_executed());
  w.rng(rng_);
  w.b(pseudonym_service_available_);
  pseudonyms_.save_state(w);
  churn_.save_state(w);
  bare_->save_state(w);
  w.b(faulty_ != nullptr);
  if (faulty_) faulty_->save_state(w);
  w.b(engine_ != nullptr);
  if (engine_) engine_->save_state(w);
  w.b(observer_ != nullptr);
  if (observer_) observer_->save_state(w);
  // Periodic shuffle ticks: absolute next fire + queue position.
  w.size(ticks_.size());
  for (const sim::PeriodicTask& tick : ticks_) {
    w.f64(tick.next_fire());
    w.u32(tick.ticket().origin);
    w.u64(tick.ticket().seq);
  }
  // Per-node protocol state, one-shot timers included. The serial
  // backend runs events at exactly t == now before returning, so
  // journal entries at the checkpoint instant have already fired.
  w.size(nodes_.size());
  for (const OverlayNode& node : nodes_)
    node.save_state(w, now, /*inclusive_fired=*/true);
  // In-flight link messages, canonical order.
  const auto entries = journal_->collect(now);
  w.size(entries.size());
  for (const auto& e : entries) {
    w.u32(e.from);
    w.u32(e.to);
    w.f64(e.fire_time);
    w.u32(e.ticket.origin);
    w.u64(e.ticket.seq);
    w.b(e.dropped);
    w.b(e.faulty);
    w.str(e.payload);
  }
}

void OverlayService::restore_from_checkpoint(ckpt::Reader& r) {
  PPO_CHECK_MSG(!started_,
                "restore_from_checkpoint replaces start() on a fresh service");
  PPO_CHECK_MSG(journal_ != nullptr,
                "enable_checkpointing() before restore_from_checkpoint()");
  r.tag(0x53455256u);
  const double now = r.f64();
  const std::uint64_t next_seq = r.u64();
  const std::uint64_t executed = r.u64();
  sim_.restore_state(now, next_seq, executed);
  rng_ = r.rng();
  pseudonym_service_available_ = r.b();
  pseudonyms_.load_state(r);
  churn_.load_state(r);
  bare_->load_state(r);
  if (r.b() != (faulty_ != nullptr))
    throw ckpt::ParseError("fault-plan presence mismatch");
  if (faulty_) faulty_->load_state(r);
  if (r.b() != (engine_ != nullptr))
    throw ckpt::ParseError("adversary presence mismatch");
  if (engine_) engine_->load_state(r);
  if (r.b() != (observer_ != nullptr))
    throw ckpt::ParseError("observer presence mismatch");
  if (observer_) observer_->load_state(r);
  if (r.size() != nodes_.size())
    throw ckpt::ParseError("tick count mismatch");
  ticks_.clear();
  ticks_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const double next_fire = r.f64();
    sim::EventTicket ticket;
    ticket.origin = r.u32();
    ticket.seq = r.u64();
    const double period =
        options_.params.shuffle_period /
        (engine_ ? engine_->tick_rate_multiplier(v) : 1.0);
    ticks_.push_back(sim::PeriodicTask::restore(
        sim_, next_fire, ticket, period,
        [this, v] { nodes_[v].shuffle_tick(); }, v));
  }
  if (r.size() != nodes_.size())
    throw ckpt::ParseError("node count mismatch");
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    nodes_[v].load_state(r);
    for (const auto& t : nodes_[v].restored_renewal_timers())
      sim::restore_event_any(sim_, t.fire_time, t.ticket, v,
                             nodes_[v].make_renewal_event(t.key));
    for (const auto& t : nodes_[v].restored_exchange_timers())
      sim::restore_event_any(sim_, t.fire_time, t.ticket, v,
                             nodes_[v].make_timeout_event(t.key));
  }
  const std::size_t in_flight = r.size();
  for (std::size_t i = 0; i < in_flight; ++i) {
    privacylink::DeliveryJournal::Entry e;
    e.from = r.u32();
    e.to = r.u32();
    e.fire_time = r.f64();
    e.ticket.origin = r.u32();
    e.ticket.seq = r.u64();
    e.dropped = r.b();
    e.faulty = r.b();
    e.payload = r.str();
    sim::EventFn payload;
    if (!e.dropped) {
      payload = decode_delivery(e.payload);
      if (e.faulty) {
        if (!faulty_)
          throw ckpt::ParseError("fault-wrapped delivery without fault plan");
        payload = faulty_->wrap_restored(std::move(payload));
      }
    }
    bare_->restore_delivery(e.to, e.fire_time, e.ticket, std::move(payload));
    journal_->restore_entry(std::move(e));
  }
  // Re-arm the churn callbacks and its pending transitions last: the
  // load_state above already placed per-node epochs/flags.
  churn_.restore_start(churn::ChurnCallbacks{
      .on_online = [this](NodeId v) { nodes_[v].handle_online(); },
      .on_offline = [this](NodeId v) { nodes_[v].handle_offline(); },
  });
  started_ = true;
}

metrics::ProtocolHealth OverlayService::protocol_health() const {
  const OverlayNode::Counters c = total_counters();
  metrics::ProtocolHealth health;
  health.requests_sent = c.requests_sent;
  health.responses_sent = c.responses_sent;
  health.exchanges_completed = c.shuffles_completed;
  health.request_timeouts = c.request_timeouts;
  health.request_retries = c.request_retries;
  health.exchanges_aborted = c.exchanges_aborted;
  health.stale_responses = c.stale_responses;
  health.messages_sent = link_->messages_sent();
  health.messages_delivered = link_->messages_delivered();
  health.messages_dropped = link_->messages_dropped();
  health.forged_rejected = c.forged_rejected;
  health.requests_rate_limited = c.requests_rate_limited;
  health.displacements_damped = total_replacements().displacements_damped;
  health.honest_requests_sent = c.requests_sent;
  health.honest_request_retries = c.request_retries;
  health.honest_exchanges_completed = c.shuffles_completed;
  if (engine_) {
    const auto attack = engine_->total_counters();
    health.forged_injected = attack.forged_injected;
    health.replays_injected = attack.replays_injected;
    health.eclipse_records_injected = attack.eclipse_records_injected;
    health.responses_suppressed = attack.responses_suppressed;
    health.slots_eclipsed = count_eclipsed_slots();
    health.honest_requests_sent = 0;
    health.honest_request_retries = 0;
    health.honest_exchanges_completed = 0;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      if (engine_->role_of(v) != adversary::Role::kHonest) continue;
      const auto& nc = nodes_[v].counters();
      health.honest_requests_sent += nc.requests_sent;
      health.honest_request_retries += nc.request_retries;
      health.honest_exchanges_completed += nc.shuffles_completed;
    }
  }
  return health;
}

}  // namespace ppo::overlay
