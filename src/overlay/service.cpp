#include "overlay/service.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::overlay {

OverlayService::OverlayService(sim::Simulator& sim,
                               const graph::Graph& trust_graph,
                               const churn::ChurnModel& churn_model,
                               OverlayServiceOptions options, Rng rng)
    : OverlayService(sim, trust_graph,
                     std::vector<const churn::ChurnModel*>(
                         trust_graph.num_nodes(), &churn_model),
                     options, rng) {}

OverlayService::OverlayService(
    sim::Simulator& sim, const graph::Graph& trust_graph,
    std::vector<const churn::ChurnModel*> churn_models,
    OverlayServiceOptions options, Rng rng)
    : sim_(sim),
      trust_graph_(trust_graph),
      options_(options),
      rng_(rng),
      pseudonyms_(options_.params.pseudonym_bits),
      churn_(sim, std::move(churn_models), rng_.split()) {
  PPO_CHECK_MSG(trust_graph.num_nodes() >= 2, "trust graph too small");
  PPO_CHECK_MSG(churn_.num_nodes() == trust_graph.num_nodes(),
                "one churn model per node required");
  const auto online = [this](NodeId v) { return churn_.is_online(v); };
  if (options_.use_mix_network) {
    mix_ = std::make_unique<privacylink::MixNetwork>(sim, options_.mix,
                                                     rng_.split());
    transport_ = std::make_unique<privacylink::MixTransport>(
        sim, *mix_, options_.mix_transport, rng_.split(), online);
  } else {
    transport_ = std::make_unique<privacylink::Transport>(
        sim, options_.transport, rng_.split(), online);
  }
  link_ = transport_.get();
  if (options_.link_faults && options_.link_faults->enabled()) {
    // Seeded from the plan, not from rng_: wrapping never perturbs
    // the protocol's own random draws.
    faulty_ = std::make_unique<fault::FaultyTransport>(
        sim, *transport_, *options_.link_faults);
    link_ = faulty_.get();
  }
  for (NodeId v = 0; v < trust_graph.num_nodes(); ++v) {
    const auto nbrs = trust_graph.neighbors(v);
    nodes_.emplace_back(arena_, v, options_.params,
                        std::vector<NodeId>(nbrs.begin(), nbrs.end()), *this,
                        rng_.split());
  }
  init_adversary();
  if (options_.observer && options_.observer->enabled())
    observer_ = std::make_unique<inference::ObserverAdversary>(
        *options_.observer, nodes_.size());
}

void OverlayService::init_adversary() {
  if (!options_.adversary || !options_.adversary->enabled()) return;
  engine_ = std::make_unique<adversary::AdversaryEngine>(
      *options_.adversary, nodes_.size(),
      adversary::EngineConfig{options_.params.shuffle_length,
                              options_.params.pseudonym_lifetime,
                              options_.params.pseudonym_bits});
  engine_->set_reference_probe(
      [this](NodeId v) { return nodes_[v].sampler_references(); });
  // Polluters concentrate their flood on a fixed trusted neighbour
  // (eclipsers aim at their victim, set by the engine itself).
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (engine_->role_of(v) != adversary::Role::kCachePolluter) continue;
    const auto nbrs = trust_graph_.neighbors(v);
    if (!nbrs.empty()) engine_->set_request_redirect(v, nbrs.front());
  }
}

void OverlayService::start() {
  PPO_CHECK_MSG(!started_, "overlay service already started");
  started_ = true;

  churn_.start(churn::ChurnCallbacks{
      .on_online = [this](NodeId v) { nodes_[v].handle_online(); },
      .on_offline = [this](NodeId v) { nodes_[v].handle_offline(); },
  });

  ticks_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) start_ticks(v);
}

void OverlayService::start_ticks(NodeId v) {
  // Attack tempo: polluters tick polluter_tick_multiplier× faster.
  // The phase draw count per node is unchanged (one draw either way),
  // so honest nodes' streams are unaffected by the multiplier.
  const double period =
      options_.params.shuffle_period /
      (engine_ ? engine_->tick_rate_multiplier(v) : 1.0);
  const double phase = rng_.uniform_double(0.0, period);
  ticks_.push_back(sim::PeriodicTask::start(
      sim_, phase, period, [this, v] { nodes_[v].shuffle_tick(); }));
}

NodeId OverlayService::add_member(
    const std::vector<NodeId>& trusted_neighbors) {
  PPO_CHECK_MSG(started_, "start() the service before adding members");
  PPO_CHECK_MSG(!trusted_neighbors.empty(),
                "a joining user needs at least one inviting peer");
  std::vector<NodeId> inviters = trusted_neighbors;
  std::sort(inviters.begin(), inviters.end());
  inviters.erase(std::unique(inviters.begin(), inviters.end()),
                 inviters.end());
  for (const NodeId nb : inviters)
    PPO_CHECK_MSG(nb < nodes_.size(), "inviter out of range");

  const NodeId v = trust_graph_.add_nodes(1);
  for (const NodeId nb : inviters) {
    trust_graph_.add_edge(v, nb);
    nodes_[nb].add_trusted_neighbor(v);
  }
  trust_graph_.finalize();

  nodes_.emplace_back(arena_, v, options_.params, std::move(inviters), *this,
                      rng_.split());
  start_ticks(v);
  // The churn driver fires on_online immediately (the join moment).
  const NodeId driver_id = churn_.add_node();
  PPO_CHECK(driver_id == v);
  return v;
}

PseudonymRecord OverlayService::mint_pseudonym(NodeId owner,
                                               double lifetime) {
  return pseudonyms_.create(owner, sim_.now(), lifetime, rng_);
}

std::optional<NodeId> OverlayService::resolve(PseudonymValue value) {
  // A blacked-out pseudonym service answers no resolution request;
  // the protocol skips the shuffle round (graceful degradation).
  if (!pseudonym_service_available_) return std::nullopt;
  return pseudonyms_.resolve(value, sim_.now());
}

void OverlayService::send_shuffle_request(NodeId from, NodeId to,
                                          std::vector<PseudonymRecord> set) {
  if (engine_) {
    const auto verdict =
        engine_->transform_outgoing(from, sim_.now(), /*is_response=*/false,
                                    set);
    for (const PseudonymRecord& record : verdict.to_register)
      pseudonyms_.try_register_minted(from, record, sim_.now());
    if (verdict.suppress) return;
    to = engine_->redirect_request_target(from, to);
  }
  // Observer capture is read-only and happens after the adversary
  // transform, so it logs exactly what is on the wire.
  std::optional<inference::PendingObservation> observed;
  if (observer_)
    observed = observer_->capture(from, to, sim_.now(),
                                  /*is_response=*/false,
                                  nodes_[from].own_pseudonym(), set);
  link_->send(from, to, [this, from, to, set = std::move(set),
                         observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_request(from, set);
  });
}

void OverlayService::send_shuffle_response(NodeId from, NodeId to,
                                           std::vector<PseudonymRecord> set) {
  if (engine_) {
    const auto verdict =
        engine_->transform_outgoing(from, sim_.now(), /*is_response=*/true,
                                    set);
    for (const PseudonymRecord& record : verdict.to_register)
      pseudonyms_.try_register_minted(from, record, sim_.now());
    if (verdict.suppress) return;  // defector swallows the response
  }
  std::optional<inference::PendingObservation> observed;
  if (observer_)
    observed = observer_->capture(from, to, sim_.now(),
                                  /*is_response=*/true,
                                  nodes_[from].own_pseudonym(), set);
  link_->send(from, to, [this, to, set = std::move(set),
                         observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_response(set);
  });
}

void OverlayService::schedule(double delay, sim::EventFn fn) {
  sim_.schedule_after(delay, std::move(fn));
}

graph::Graph OverlayService::overlay_snapshot() {
  graph::Graph overlay(nodes_.size());
  for (const auto& [u, v] : trust_graph_.edges()) overlay.add_edge(u, v);
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    for (const PseudonymValue value : nodes_[u].pseudonym_links()) {
      const auto owner = pseudonyms_.resolve(value, sim_.now());
      if (owner && *owner != u) overlay.add_edge(u, *owner);
    }
  }
  overlay.finalize();
  return overlay;
}

std::span<const std::pair<graph::NodeId, graph::NodeId>>
OverlayService::overlay_edges() {
  const sim::Time now = sim_.now();
  // Omniscient metric view (matches overlay_snapshot): resolve at the
  // registry directly, bypassing the availability gate.
  return edge_view_.collect(
      trust_graph_, now,
      [this](NodeId u) -> const SlotSampler& { return nodes_[u].sampler(); },
      [this, now](PseudonymValue value) {
        return pseudonyms_.lookup_with_expiry(value, now);
      });
}

std::vector<NodeId> OverlayService::current_peers(NodeId v) {
  PPO_CHECK_MSG(v < nodes_.size(), "node out of range");
  std::vector<NodeId> peers(nodes_[v].trusted_links());
  for (const PseudonymValue value : nodes_[v].pseudonym_links()) {
    const auto owner = pseudonyms_.resolve(value, sim_.now());
    if (owner && *owner != v) peers.push_back(*owner);
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

SlotSampler::ReplacementCounters OverlayService::total_replacements() const {
  SlotSampler::ReplacementCounters total;
  for (const OverlayNode& node : nodes_) {
    const auto& c = node.replacement_counters();
    total.refills_after_expiry += c.refills_after_expiry;
    total.better_displacements += c.better_displacements;
    total.initial_fills += c.initial_fills;
    total.displacements_damped += c.displacements_damped;
  }
  return total;
}

OverlayNode::Counters OverlayService::total_counters() const {
  OverlayNode::Counters total;
  for (const OverlayNode& node : nodes_) {
    const auto& c = node.counters();
    total.requests_sent += c.requests_sent;
    total.responses_sent += c.responses_sent;
    total.shuffles_completed += c.shuffles_completed;
    total.online_ticks += c.online_ticks;
    total.max_out_degree = std::max(total.max_out_degree, c.max_out_degree);
    total.request_timeouts += c.request_timeouts;
    total.request_retries += c.request_retries;
    total.exchanges_aborted += c.exchanges_aborted;
    total.stale_responses += c.stale_responses;
    total.forged_rejected += c.forged_rejected;
    total.requests_rate_limited += c.requests_rate_limited;
  }
  return total;
}

std::uint64_t OverlayService::count_eclipsed_slots() const {
  if (!engine_) return 0;
  const sim::Time now = sim_.now();
  std::uint64_t eclipsed = 0;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (engine_->role_of(v) != adversary::Role::kHonest) continue;
    const SlotSampler& sampler = nodes_[v].sampler();
    for (std::size_t i = 0; i < sampler.slot_count(); ++i) {
      const auto [ref, record] = sampler.slot(i);
      (void)ref;
      if (!record || !record->valid_at(now)) continue;
      const auto owner = pseudonyms_.lookup(record->value, now);
      if (owner && engine_->role_of(*owner) != adversary::Role::kHonest)
        ++eclipsed;
    }
  }
  return eclipsed;
}

metrics::ProtocolHealth OverlayService::protocol_health() const {
  const OverlayNode::Counters c = total_counters();
  metrics::ProtocolHealth health;
  health.requests_sent = c.requests_sent;
  health.responses_sent = c.responses_sent;
  health.exchanges_completed = c.shuffles_completed;
  health.request_timeouts = c.request_timeouts;
  health.request_retries = c.request_retries;
  health.exchanges_aborted = c.exchanges_aborted;
  health.stale_responses = c.stale_responses;
  health.messages_sent = link_->messages_sent();
  health.messages_delivered = link_->messages_delivered();
  health.messages_dropped = link_->messages_dropped();
  health.forged_rejected = c.forged_rejected;
  health.requests_rate_limited = c.requests_rate_limited;
  health.displacements_damped = total_replacements().displacements_damped;
  health.honest_requests_sent = c.requests_sent;
  health.honest_request_retries = c.request_retries;
  health.honest_exchanges_completed = c.shuffles_completed;
  if (engine_) {
    const auto attack = engine_->total_counters();
    health.forged_injected = attack.forged_injected;
    health.replays_injected = attack.replays_injected;
    health.eclipse_records_injected = attack.eclipse_records_injected;
    health.responses_suppressed = attack.responses_suppressed;
    health.slots_eclipsed = count_eclipsed_slots();
    health.honest_requests_sent = 0;
    health.honest_request_retries = 0;
    health.honest_exchanges_completed = 0;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      if (engine_->role_of(v) != adversary::Role::kHonest) continue;
      const auto& nc = nodes_[v].counters();
      health.honest_requests_sent += nc.requests_sent;
      health.honest_request_retries += nc.request_retries;
      health.honest_exchanges_completed += nc.shuffles_completed;
    }
  }
  return health;
}

}  // namespace ppo::overlay
