#include "overlay/sharded_service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "sim/restore.hpp"

namespace ppo::overlay {

namespace {

/// derive_seed subsystem tags. Stable constants: changing one changes
/// every sharded trajectory.
constexpr std::uint64_t kChurnStream = 1;
constexpr std::uint64_t kTransportStream = 2;
constexpr std::uint64_t kNodeProtocolStream = 3;
constexpr std::uint64_t kMintStream = 4;
constexpr std::uint64_t kTickPhaseStream = 5;
constexpr std::uint64_t kMixStream = 6;
constexpr std::uint64_t kMixTransportStream = 7;

constexpr NodeId kNoExternalNode = static_cast<NodeId>(-1);

}  // namespace

ShardedOverlayService::ShardedOverlayService(
    sim::ShardedSimulator& sim, const graph::Graph& trust_graph,
    const churn::ChurnModel& churn_model, OverlayServiceOptions options,
    std::uint64_t seed)
    : ShardedOverlayService(sim, trust_graph,
                            std::vector<const churn::ChurnModel*>(
                                trust_graph.num_nodes(), &churn_model),
                            options, seed) {}

ShardedOverlayService::ShardedOverlayService(
    sim::ShardedSimulator& sim, const graph::Graph& trust_graph,
    std::vector<const churn::ChurnModel*> churn_models,
    OverlayServiceOptions options, std::uint64_t seed)
    : sim_(sim),
      trust_graph_(trust_graph),
      options_(options),
      seed_(seed),
      pseudonyms_(options_.params.pseudonym_bits),
      churn_(sim, std::move(churn_models), Rng(derive_seed(seed, kChurnStream)),
             /*per_node_streams=*/true),
      external_node_(kNoExternalNode) {
  const std::size_t n = trust_graph.num_nodes();
  PPO_CHECK_MSG(n >= 2, "trust graph too small");
  PPO_CHECK_MSG(churn_.num_nodes() == n, "one churn model per node required");
  PPO_CHECK_MSG(sim_.num_actors() == n,
                "simulator actor count must equal the node count");
  // Barrier-published mints cannot see collisions with mints from
  // other shards in the same window; a wide value space makes them
  // vanishingly unlikely (and publish still checks).
  PPO_CHECK_MSG(options_.params.pseudonym_bits >= 48,
                "sharded runs need >= 48 pseudonym bits");
  const auto online = [this](NodeId v) { return churn_.is_online(v); };
  if (options_.use_mix_network) {
    // Relay hops stay on the sender's shard; only the exit hop
    // crosses shards, so it must clear the lookahead window.
    PPO_CHECK_MSG(options_.mix.min_hop_latency >= sim_.lookahead(),
                  "mix min hop latency below the lookahead window");
    mix_ = std::make_unique<privacylink::MixNetwork>(
        sim, options_.mix, Rng(derive_seed(seed, kMixStream)));
    transport_ = std::make_unique<privacylink::MixTransport>(
        sim, *mix_, options_.mix_transport,
        Rng(derive_seed(seed, kMixTransportStream)), online,
        /*per_sender_streams=*/n);
  } else {
    PPO_CHECK_MSG(options_.transport.min_latency >= sim_.lookahead(),
                  "transport min latency below the lookahead window");
    auto bare = std::make_unique<privacylink::Transport>(
        sim, options_.transport, Rng(derive_seed(seed, kTransportStream)),
        online, /*per_sender_streams=*/n);
    bare_ = bare.get();
    transport_ = std::move(bare);
  }
  link_ = transport_.get();
  if (options_.link_faults && options_.link_faults->enabled()) {
    PPO_CHECK_MSG(options_.link_faults->per_link_streams,
                  "sharded runs need per_link_streams fault plans");
    faulty_ = std::make_unique<fault::FaultyTransport>(
        sim, *transport_, *options_.link_faults, n);
    link_ = faulty_.get();
  }
  nodes_.reserve(n);
  mint_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = trust_graph.neighbors(v);
    nodes_.emplace_back(arena_, v, options_.params,
                        std::vector<NodeId>(nbrs.begin(), nbrs.end()), *this,
                        Rng(derive_seed(seed, kNodeProtocolStream, v)));
    mint_rngs_.push_back(Rng(derive_seed(seed, kMintStream, v)));
  }
  pending_mints_.resize(sim_.num_shards());
  pending_adversary_mints_.resize(sim_.num_shards());
  sim_.set_barrier_hook([this] { publish_pending_mints(); });
  init_adversary();
  if (options_.observer && options_.observer->enabled())
    observer_ = std::make_unique<inference::ObserverAdversary>(
        *options_.observer, nodes_.size());
}

void ShardedOverlayService::init_adversary() {
  if (!options_.adversary || !options_.adversary->enabled()) return;
  engine_ = std::make_unique<adversary::AdversaryEngine>(
      *options_.adversary, nodes_.size(),
      adversary::EngineConfig{options_.params.shuffle_length,
                              options_.params.pseudonym_lifetime,
                              options_.params.pseudonym_bits});
  // Sampler references are immutable after node construction, so the
  // probe is safe to run from any shard worker (the engine caches the
  // result on first use).
  engine_->set_reference_probe(
      [this](NodeId v) { return nodes_[v].sampler_references(); });
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (engine_->role_of(v) != adversary::Role::kCachePolluter) continue;
    const auto nbrs = trust_graph_.neighbors(v);
    if (!nbrs.empty()) engine_->set_request_redirect(v, nbrs.front());
  }
}

churn::ChurnCallbacks ShardedOverlayService::make_churn_callbacks() {
  // Initial on_online callbacks fire in external context (setup);
  // later transitions are events targeted at their node. The wrapper
  // attributes external callbacks so schedule() can route timers.
  const auto run_as = [this](NodeId v, auto&& fn) {
    if (sim_.current_shard() == sim::ShardedSimulator::kNoShard) {
      external_node_ = v;
      fn();
      external_node_ = kNoExternalNode;
    } else {
      fn();
    }
  };
  return churn::ChurnCallbacks{
      .on_online =
          [this, run_as](NodeId v) {
            run_as(v, [this, v] { nodes_[v].handle_online(); });
          },
      .on_offline =
          [this, run_as](NodeId v) {
            run_as(v, [this, v] { nodes_[v].handle_offline(); });
          },
  };
}

void ShardedOverlayService::start() {
  PPO_CHECK_MSG(!started_, "overlay service already started");
  started_ = true;

  churn_.start(make_churn_callbacks());

  ticks_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    // Attack tempo: polluters tick polluter_tick_multiplier× faster.
    // Phase streams are node-keyed, so the multiplier cannot perturb
    // any other node's draws.
    const double period =
        options_.params.shuffle_period /
        (engine_ ? engine_->tick_rate_multiplier(v) : 1.0);
    Rng phase_rng(derive_seed(seed_, kTickPhaseStream, v));
    const double phase = phase_rng.uniform_double(0.0, period);
    ticks_.push_back(sim::PeriodicTask::start(
        sim_, phase, period, [this, v] { nodes_[v].shuffle_tick(); }, v));
  }
}

PseudonymRecord ShardedOverlayService::mint_pseudonym(NodeId owner,
                                                      double lifetime) {
  PPO_CHECK_MSG(lifetime > 0.0, "pseudonym lifetime must be positive");
  Rng& rng = mint_rngs_[owner];
  const sim::Time t = sim_.now();
  PseudonymValue value = 0;
  for (int attempt = 0;; ++attempt) {
    PPO_CHECK_MSG(attempt < 1000, "pseudonym space exhausted — widen `bits`");
    value = privacylink::random_pseudonym_value(rng, pseudonyms_.bits());
    if (!pseudonyms_.alive(value, t)) break;
  }
  const PseudonymRecord record{value, t + lifetime};
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kPseudonym, "mint", owner,
                  (ppo::obs::TraceArg{"lifetime", lifetime}));
  const std::size_t shard = sim_.current_shard();
  if (shard == sim::ShardedSimulator::kNoShard) {
    pseudonyms_.register_minted(owner, record, t);  // setup: no window
  } else {
    pending_mints_[shard].push_back(PendingMint{owner, record});
  }
  return record;
}

void ShardedOverlayService::publish_pending_mints() {
  const sim::Time t = sim_.now();
  for (std::vector<PendingMint>& mints : pending_mints_) {
    for (const PendingMint& m : mints)
      pseudonyms_.register_minted(m.owner, m.record, t);
    mints.clear();
  }
  // Adversary mints second, in (owner, value) order: the first writer
  // of a value keeps it while live (try_register_minted), and sorting
  // makes "first" a function of the window's contents, not of how the
  // contents were split across shards.
  std::vector<PendingMint> adversarial;
  for (std::vector<PendingMint>& mints : pending_adversary_mints_) {
    adversarial.insert(adversarial.end(), mints.begin(), mints.end());
    mints.clear();
  }
  if (!adversarial.empty()) {
    std::sort(adversarial.begin(), adversarial.end(),
              [](const PendingMint& a, const PendingMint& b) {
                if (a.owner != b.owner) return a.owner < b.owner;
                return a.record.value < b.record.value;
              });
    for (const PendingMint& m : adversarial)
      pseudonyms_.try_register_minted(m.owner, m.record, t);
  }
  // lookup() never erases, so reclaim expired registrations here
  // (behaviour-neutral: expired values are unroutable either way).
  if (t - last_gc_ >= 50.0) {
    pseudonyms_.collect_garbage(t);
    last_gc_ = t;
  }
}

std::optional<NodeId> ShardedOverlayService::resolve(PseudonymValue value) {
  // A blacked-out pseudonym service answers no resolution request;
  // the protocol skips the shuffle round (graceful degradation).
  if (!pseudonym_service_available_) return std::nullopt;
  const sim::Time t = sim_.now();
  for (const fault::Window& w : pseudonym_blackouts_)
    if (w.contains(t)) return std::nullopt;
  return pseudonyms_.lookup(value, t);
}

void ShardedOverlayService::send_shuffle_request(
    NodeId from, NodeId to, std::vector<PseudonymRecord> set) {
  if (engine_) {
    const auto verdict =
        engine_->transform_outgoing(from, sim_.now(), /*is_response=*/false,
                                    set);
    for (const PseudonymRecord& record : verdict.to_register) {
      const std::size_t shard = sim_.current_shard();
      if (shard == sim::ShardedSimulator::kNoShard) {
        pseudonyms_.try_register_minted(from, record, sim_.now());
      } else {
        pending_adversary_mints_[shard].push_back(PendingMint{from, record});
      }
    }
    if (verdict.suppress) return;
    to = engine_->redirect_request_target(from, to);
  }
  // Sender-context capture (reads only the sender's own state), then
  // receiver-context completion inside the delivery event: each
  // observation lands in the destination node's buffer, touched only
  // from that node's shard — the K-invariance contract.
  std::optional<inference::PendingObservation> observed;
  if (observer_)
    observed = observer_->capture(from, to, sim_.now(),
                                  /*is_response=*/false,
                                  nodes_[from].own_pseudonym(), set);
  if (journal_)
    journal_->stage(encode_delivery(/*is_response=*/false, from, to, set,
                                    observed),
                    from, to);
  link_->send(from, to, [this, from, to, set = std::move(set),
                         observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_request(from, set);
  });
  if (journal_) journal_->finish_send();
}

void ShardedOverlayService::send_shuffle_response(
    NodeId from, NodeId to, std::vector<PseudonymRecord> set) {
  if (engine_) {
    const auto verdict =
        engine_->transform_outgoing(from, sim_.now(), /*is_response=*/true,
                                    set);
    for (const PseudonymRecord& record : verdict.to_register) {
      const std::size_t shard = sim_.current_shard();
      if (shard == sim::ShardedSimulator::kNoShard) {
        pseudonyms_.try_register_minted(from, record, sim_.now());
      } else {
        pending_adversary_mints_[shard].push_back(PendingMint{from, record});
      }
    }
    if (verdict.suppress) return;  // defector swallows the response
  }
  std::optional<inference::PendingObservation> observed;
  if (observer_)
    observed = observer_->capture(from, to, sim_.now(),
                                  /*is_response=*/true,
                                  nodes_[from].own_pseudonym(), set);
  if (journal_)
    journal_->stage(encode_delivery(/*is_response=*/true, from, to, set,
                                    observed),
                    from, to);
  link_->send(from, to, [this, to, set = std::move(set),
                         observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_response(set);
  });
  if (journal_) journal_->finish_send();
}

void ShardedOverlayService::schedule(double delay, sim::EventFn fn) {
  if (sim_.current_shard() == sim::ShardedSimulator::kNoShard) {
    PPO_CHECK_MSG(external_node_ != kNoExternalNode,
                  "external timer without a node to attribute it to");
    sim_.schedule_for(external_node_, delay, std::move(fn));
  } else {
    sim_.schedule_after(delay, std::move(fn));
  }
}

graph::Graph ShardedOverlayService::overlay_snapshot() const {
  graph::Graph overlay(nodes_.size());
  for (const auto& [u, v] : trust_graph_.edges()) overlay.add_edge(u, v);
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    for (const PseudonymValue value : nodes_[u].pseudonym_links()) {
      const auto owner = pseudonyms_.lookup(value, sim_.now());
      if (owner && *owner != u) overlay.add_edge(u, *owner);
    }
  }
  overlay.finalize();
  return overlay;
}

std::span<const std::pair<graph::NodeId, graph::NodeId>>
ShardedOverlayService::overlay_edges() {
  const sim::Time now = sim_.now();
  return edge_view_.collect(
      trust_graph_, now,
      [this](NodeId u) -> const SlotSampler& { return nodes_[u].sampler(); },
      [this, now](PseudonymValue value) {
        return pseudonyms_.lookup_with_expiry(value, now);
      });
}

std::vector<NodeId> ShardedOverlayService::current_peers(NodeId v) const {
  PPO_CHECK_MSG(v < nodes_.size(), "node out of range");
  std::vector<NodeId> peers(nodes_[v].trusted_links());
  for (const PseudonymValue value : nodes_[v].pseudonym_links()) {
    const auto owner = pseudonyms_.lookup(value, sim_.now());
    if (owner && *owner != v) peers.push_back(*owner);
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

SlotSampler::ReplacementCounters ShardedOverlayService::total_replacements()
    const {
  SlotSampler::ReplacementCounters total;
  for (const OverlayNode& node : nodes_) {
    const auto& c = node.replacement_counters();
    total.refills_after_expiry += c.refills_after_expiry;
    total.better_displacements += c.better_displacements;
    total.initial_fills += c.initial_fills;
    total.displacements_damped += c.displacements_damped;
  }
  return total;
}

OverlayNode::Counters ShardedOverlayService::total_counters() const {
  OverlayNode::Counters total;
  for (const OverlayNode& node : nodes_) {
    const auto& c = node.counters();
    total.requests_sent += c.requests_sent;
    total.responses_sent += c.responses_sent;
    total.shuffles_completed += c.shuffles_completed;
    total.online_ticks += c.online_ticks;
    total.max_out_degree = std::max(total.max_out_degree, c.max_out_degree);
    total.request_timeouts += c.request_timeouts;
    total.request_retries += c.request_retries;
    total.exchanges_aborted += c.exchanges_aborted;
    total.stale_responses += c.stale_responses;
    total.forged_rejected += c.forged_rejected;
    total.requests_rate_limited += c.requests_rate_limited;
  }
  return total;
}

std::uint64_t ShardedOverlayService::count_eclipsed_slots() const {
  if (!engine_) return 0;
  const sim::Time now = sim_.now();
  std::uint64_t eclipsed = 0;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (engine_->role_of(v) != adversary::Role::kHonest) continue;
    const SlotSampler& sampler = nodes_[v].sampler();
    for (std::size_t i = 0; i < sampler.slot_count(); ++i) {
      const auto [ref, record] = sampler.slot(i);
      (void)ref;
      if (!record || !record->valid_at(now)) continue;
      const auto owner = pseudonyms_.lookup(record->value, now);
      if (owner && engine_->role_of(*owner) != adversary::Role::kHonest)
        ++eclipsed;
    }
  }
  return eclipsed;
}

void ShardedOverlayService::enable_checkpointing() {
  if (journal_) return;
  PPO_CHECK_MSG(checkpointable(),
                "configuration not checkpointable: mix transport or a "
                "two-stage (jitter/reorder) fault plan is enabled");
  journal_ = std::make_unique<privacylink::DeliveryJournal>(
      sim_.num_shards(),
      [this] {
        const std::size_t s = sim_.current_shard();
        return s == sim::ShardedSimulator::kNoShard ? 0 : s;
      },
      /*inclusive_prune=*/false);
  bare_->set_journal(journal_.get());
  if (faulty_) faulty_->set_journal(journal_.get());
}

std::string ShardedOverlayService::encode_delivery(
    bool is_response, NodeId from, NodeId to,
    const std::vector<PseudonymRecord>& set,
    const std::optional<inference::PendingObservation>& observed) const {
  ckpt::Writer w;
  w.u8(is_response ? 1 : 0);
  w.u32(from);
  w.u32(to);
  w.size(set.size());
  for (const auto& record : set) {
    w.u64(record.value);
    w.f64(record.expiry);
  }
  w.b(observed.has_value());
  if (observed) {
    w.f64(observed->time);
    w.u32(observed->src);
    w.u64(observed->src_pseudo);
    w.f64(observed->src_expiry);
    w.u64(observed->digest);
    w.b(observed->is_response);
  }
  return w.take();
}

sim::EventFn ShardedOverlayService::decode_delivery(const std::string& blob) {
  ckpt::Reader r(blob);
  const bool is_response = r.u8() != 0;
  const NodeId from = r.u32();
  const NodeId to = r.u32();
  if (to >= nodes_.size()) throw ckpt::ParseError("delivery target range");
  std::vector<PseudonymRecord> set(r.size());
  for (auto& record : set) {
    record.value = r.u64();
    record.expiry = r.f64();
  }
  std::optional<inference::PendingObservation> observed;
  if (r.b()) {
    if (!observer_) throw ckpt::ParseError("observation without observer");
    inference::PendingObservation p;
    p.time = r.f64();
    p.src = r.u32();
    p.src_pseudo = r.u64();
    p.src_expiry = r.f64();
    p.digest = r.u64();
    p.is_response = r.b();
    observed = p;
  }
  r.done();
  if (is_response) {
    return [this, to, set = std::move(set), observed = std::move(observed)] {
      if (engine_) engine_->observe_received(to, set);
      if (observed)
        observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
      nodes_[to].handle_shuffle_response(set);
    };
  }
  return [this, from, to, set = std::move(set),
          observed = std::move(observed)] {
    if (engine_) engine_->observe_received(to, set);
    if (observed)
      observer_->deliver(*observed, to, nodes_[to].own_pseudonym());
    nodes_[to].handle_shuffle_request(from, set);
  };
}

void ShardedOverlayService::save_checkpoint(ckpt::Writer& w) const {
  PPO_CHECK_MSG(started_, "checkpoint requires a started service");
  PPO_CHECK_MSG(journal_ != nullptr,
                "enable_checkpointing() before save_checkpoint()");
  for (const auto& mints : pending_mints_)
    PPO_CHECK_MSG(mints.empty(),
                  "checkpoint with unpublished mints — not at a barrier");
  for (const auto& mints : pending_adversary_mints_)
    PPO_CHECK_MSG(mints.empty(),
                  "checkpoint with unpublished adversary mints");
  const sim::Time now = sim_.now();
  w.tag(0x53485256u);  // 'SHRV'
  // Simulator core: clock, executed-event count, per-actor + external
  // sequence counters (actor-keyed, hence K-portable).
  w.f64(now);
  w.u64(sim_.events_executed());
  w.u64_vec(sim_.actor_seqs());
  w.u64(sim_.external_seq());
  w.b(pseudonym_service_available_);
  w.f64(last_gc_);
  pseudonyms_.save_state(w);
  churn_.save_state(w);
  bare_->save_state(w);
  w.b(faulty_ != nullptr);
  if (faulty_) faulty_->save_state(w);
  w.b(engine_ != nullptr);
  if (engine_) engine_->save_state(w);
  w.b(observer_ != nullptr);
  if (observer_) observer_->save_state(w);
  w.size(mint_rngs_.size());
  for (const Rng& rng : mint_rngs_) w.rng(rng);
  w.size(ticks_.size());
  for (const sim::PeriodicTask& tick : ticks_) {
    w.f64(tick.next_fire());
    w.u32(tick.ticket().origin);
    w.u64(tick.ticket().seq);
  }
  // The sharded run_until is exclusive of its end time: events at
  // exactly t == now are still pending, so they are NOT fired yet.
  w.size(nodes_.size());
  for (const OverlayNode& node : nodes_)
    node.save_state(w, now, /*inclusive_fired=*/false);
  const auto entries = journal_->collect(now);
  w.size(entries.size());
  for (const auto& e : entries) {
    w.u32(e.from);
    w.u32(e.to);
    w.f64(e.fire_time);
    w.u32(e.ticket.origin);
    w.u64(e.ticket.seq);
    w.b(e.dropped);
    w.b(e.faulty);
    w.str(e.payload);
  }
}

void ShardedOverlayService::restore_from_checkpoint(ckpt::Reader& r) {
  PPO_CHECK_MSG(!started_,
                "restore_from_checkpoint replaces start() on a fresh service");
  PPO_CHECK_MSG(journal_ != nullptr,
                "enable_checkpointing() before restore_from_checkpoint()");
  r.tag(0x53485256u);
  const double now = r.f64();
  const std::uint64_t executed = r.u64();
  const std::vector<std::uint64_t> actor_seqs = r.u64_vec();
  const std::uint64_t external_seq = r.u64();
  sim_.restore_state(now, executed, actor_seqs, external_seq);
  pseudonym_service_available_ = r.b();
  last_gc_ = r.f64();
  pseudonyms_.load_state(r);
  churn_.load_state(r);
  bare_->load_state(r);
  if (r.b() != (faulty_ != nullptr))
    throw ckpt::ParseError("fault-plan presence mismatch");
  if (faulty_) faulty_->load_state(r);
  if (r.b() != (engine_ != nullptr))
    throw ckpt::ParseError("adversary presence mismatch");
  if (engine_) engine_->load_state(r);
  if (r.b() != (observer_ != nullptr))
    throw ckpt::ParseError("observer presence mismatch");
  if (observer_) observer_->load_state(r);
  if (r.size() != mint_rngs_.size())
    throw ckpt::ParseError("mint stream count mismatch");
  for (Rng& rng : mint_rngs_) rng = r.rng();
  if (r.size() != nodes_.size())
    throw ckpt::ParseError("tick count mismatch");
  ticks_.clear();
  ticks_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const double next_fire = r.f64();
    sim::EventTicket ticket;
    ticket.origin = r.u32();
    ticket.seq = r.u64();
    const double period =
        options_.params.shuffle_period /
        (engine_ ? engine_->tick_rate_multiplier(v) : 1.0);
    ticks_.push_back(sim::PeriodicTask::restore(
        sim_, next_fire, ticket, period,
        [this, v] { nodes_[v].shuffle_tick(); }, v));
  }
  if (r.size() != nodes_.size())
    throw ckpt::ParseError("node count mismatch");
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    nodes_[v].load_state(r);
    for (const auto& t : nodes_[v].restored_renewal_timers())
      sim::restore_event_any(sim_, t.fire_time, t.ticket, v,
                             nodes_[v].make_renewal_event(t.key));
    for (const auto& t : nodes_[v].restored_exchange_timers())
      sim::restore_event_any(sim_, t.fire_time, t.ticket, v,
                             nodes_[v].make_timeout_event(t.key));
  }
  const std::size_t in_flight = r.size();
  for (std::size_t i = 0; i < in_flight; ++i) {
    privacylink::DeliveryJournal::Entry e;
    e.from = r.u32();
    e.to = r.u32();
    e.fire_time = r.f64();
    e.ticket.origin = r.u32();
    e.ticket.seq = r.u64();
    e.dropped = r.b();
    e.faulty = r.b();
    e.payload = r.str();
    sim::EventFn payload;
    if (!e.dropped) {
      payload = decode_delivery(e.payload);
      if (e.faulty) {
        if (!faulty_)
          throw ckpt::ParseError("fault-wrapped delivery without fault plan");
        payload = faulty_->wrap_restored(std::move(payload));
      }
    }
    bare_->restore_delivery(e.to, e.fire_time, e.ticket, std::move(payload));
    journal_->restore_entry(std::move(e));
  }
  churn_.restore_start(make_churn_callbacks());
  started_ = true;
}

metrics::ProtocolHealth ShardedOverlayService::protocol_health() const {
  const OverlayNode::Counters c = total_counters();
  metrics::ProtocolHealth health;
  health.requests_sent = c.requests_sent;
  health.responses_sent = c.responses_sent;
  health.exchanges_completed = c.shuffles_completed;
  health.request_timeouts = c.request_timeouts;
  health.request_retries = c.request_retries;
  health.exchanges_aborted = c.exchanges_aborted;
  health.stale_responses = c.stale_responses;
  health.messages_sent = link_->messages_sent();
  health.messages_delivered = link_->messages_delivered();
  health.messages_dropped = link_->messages_dropped();
  health.forged_rejected = c.forged_rejected;
  health.requests_rate_limited = c.requests_rate_limited;
  health.displacements_damped = total_replacements().displacements_damped;
  health.honest_requests_sent = c.requests_sent;
  health.honest_request_retries = c.request_retries;
  health.honest_exchanges_completed = c.shuffles_completed;
  if (engine_) {
    const auto attack = engine_->total_counters();
    health.forged_injected = attack.forged_injected;
    health.replays_injected = attack.replays_injected;
    health.eclipse_records_injected = attack.eclipse_records_injected;
    health.responses_suppressed = attack.responses_suppressed;
    health.slots_eclipsed = count_eclipsed_slots();
    health.honest_requests_sent = 0;
    health.honest_request_retries = 0;
    health.honest_exchanges_completed = 0;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      if (engine_->role_of(v) != adversary::Role::kHonest) continue;
      const auto& nc = nodes_[v].counters();
      health.honest_requests_sent += nc.requests_sent;
      health.honest_request_retries += nc.request_retries;
      health.honest_exchanges_completed += nc.shuffles_completed;
    }
  }
  return health;
}

}  // namespace ppo::overlay
