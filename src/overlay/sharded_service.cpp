#include "overlay/sharded_service.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace ppo::overlay {

namespace {

/// derive_seed subsystem tags. Stable constants: changing one changes
/// every sharded trajectory.
constexpr std::uint64_t kChurnStream = 1;
constexpr std::uint64_t kTransportStream = 2;
constexpr std::uint64_t kNodeProtocolStream = 3;
constexpr std::uint64_t kMintStream = 4;
constexpr std::uint64_t kTickPhaseStream = 5;
constexpr std::uint64_t kMixStream = 6;
constexpr std::uint64_t kMixTransportStream = 7;

constexpr NodeId kNoExternalNode = static_cast<NodeId>(-1);

}  // namespace

ShardedOverlayService::ShardedOverlayService(
    sim::ShardedSimulator& sim, const graph::Graph& trust_graph,
    const churn::ChurnModel& churn_model, OverlayServiceOptions options,
    std::uint64_t seed)
    : ShardedOverlayService(sim, trust_graph,
                            std::vector<const churn::ChurnModel*>(
                                trust_graph.num_nodes(), &churn_model),
                            options, seed) {}

ShardedOverlayService::ShardedOverlayService(
    sim::ShardedSimulator& sim, const graph::Graph& trust_graph,
    std::vector<const churn::ChurnModel*> churn_models,
    OverlayServiceOptions options, std::uint64_t seed)
    : sim_(sim),
      trust_graph_(trust_graph),
      options_(options),
      seed_(seed),
      pseudonyms_(options_.params.pseudonym_bits),
      churn_(sim, std::move(churn_models), Rng(derive_seed(seed, kChurnStream)),
             /*per_node_streams=*/true),
      external_node_(kNoExternalNode) {
  const std::size_t n = trust_graph.num_nodes();
  PPO_CHECK_MSG(n >= 2, "trust graph too small");
  PPO_CHECK_MSG(churn_.num_nodes() == n, "one churn model per node required");
  PPO_CHECK_MSG(sim_.num_actors() == n,
                "simulator actor count must equal the node count");
  // Barrier-published mints cannot see collisions with mints from
  // other shards in the same window; a wide value space makes them
  // vanishingly unlikely (and publish still checks).
  PPO_CHECK_MSG(options_.params.pseudonym_bits >= 48,
                "sharded runs need >= 48 pseudonym bits");
  const auto online = [this](NodeId v) { return churn_.is_online(v); };
  if (options_.use_mix_network) {
    // The relay pool (keys, replay history, liveness) is global
    // mutable state — it cannot be partitioned across shard workers.
    PPO_CHECK_MSG(sim_.num_shards() == 1,
                  "mix mode requires a single shard");
    mix_ = std::make_unique<privacylink::MixNetwork>(
        sim, options_.mix, Rng(derive_seed(seed, kMixStream)));
    transport_ = std::make_unique<privacylink::MixTransport>(
        sim, *mix_, options_.mix_transport,
        Rng(derive_seed(seed, kMixTransportStream)), online);
  } else {
    PPO_CHECK_MSG(options_.transport.min_latency >= sim_.lookahead(),
                  "transport min latency below the lookahead window");
    transport_ = std::make_unique<privacylink::Transport>(
        sim, options_.transport, Rng(derive_seed(seed, kTransportStream)),
        online, /*per_sender_streams=*/n);
  }
  link_ = transport_.get();
  if (options_.link_faults && options_.link_faults->enabled()) {
    PPO_CHECK_MSG(options_.link_faults->per_link_streams,
                  "sharded runs need per_link_streams fault plans");
    faulty_ = std::make_unique<fault::FaultyTransport>(
        sim, *transport_, *options_.link_faults, n);
    link_ = faulty_.get();
  }
  nodes_.reserve(n);
  mint_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = trust_graph.neighbors(v);
    nodes_.push_back(std::make_unique<OverlayNode>(
        v, options_.params, std::vector<NodeId>(nbrs.begin(), nbrs.end()),
        *this, Rng(derive_seed(seed, kNodeProtocolStream, v))));
    mint_rngs_.push_back(Rng(derive_seed(seed, kMintStream, v)));
  }
  pending_mints_.resize(sim_.num_shards());
  sim_.set_barrier_hook([this] { publish_pending_mints(); });
}

void ShardedOverlayService::start() {
  PPO_CHECK_MSG(!started_, "overlay service already started");
  started_ = true;

  // Initial on_online callbacks fire in external context (setup);
  // later transitions are events targeted at their node. The wrapper
  // attributes external callbacks so schedule() can route timers.
  const auto run_as = [this](NodeId v, auto&& fn) {
    if (sim_.current_shard() == sim::ShardedSimulator::kNoShard) {
      external_node_ = v;
      fn();
      external_node_ = kNoExternalNode;
    } else {
      fn();
    }
  };
  churn_.start(churn::ChurnCallbacks{
      .on_online =
          [this, run_as](NodeId v) {
            run_as(v, [this, v] { nodes_[v]->handle_online(); });
          },
      .on_offline =
          [this, run_as](NodeId v) {
            run_as(v, [this, v] { nodes_[v]->handle_offline(); });
          },
  });

  const double period = options_.params.shuffle_period;
  ticks_.reserve(nodes_.size());
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    Rng phase_rng(derive_seed(seed_, kTickPhaseStream, v));
    const double phase = phase_rng.uniform_double(0.0, period);
    ticks_.push_back(sim::PeriodicTask::start(
        sim_, phase, period, [this, v] { nodes_[v]->shuffle_tick(); }, v));
  }
}

PseudonymRecord ShardedOverlayService::mint_pseudonym(NodeId owner,
                                                      double lifetime) {
  PPO_CHECK_MSG(lifetime > 0.0, "pseudonym lifetime must be positive");
  Rng& rng = mint_rngs_[owner];
  const sim::Time t = sim_.now();
  PseudonymValue value = 0;
  for (int attempt = 0;; ++attempt) {
    PPO_CHECK_MSG(attempt < 1000, "pseudonym space exhausted — widen `bits`");
    value = privacylink::random_pseudonym_value(rng, pseudonyms_.bits());
    if (!pseudonyms_.alive(value, t)) break;
  }
  const PseudonymRecord record{value, t + lifetime};
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kPseudonym, "mint", owner,
                  (ppo::obs::TraceArg{"lifetime", lifetime}));
  const std::size_t shard = sim_.current_shard();
  if (shard == sim::ShardedSimulator::kNoShard) {
    pseudonyms_.register_minted(owner, record, t);  // setup: no window
  } else {
    pending_mints_[shard].push_back(PendingMint{owner, record});
  }
  return record;
}

void ShardedOverlayService::publish_pending_mints() {
  const sim::Time t = sim_.now();
  for (std::vector<PendingMint>& mints : pending_mints_) {
    for (const PendingMint& m : mints)
      pseudonyms_.register_minted(m.owner, m.record, t);
    mints.clear();
  }
  // lookup() never erases, so reclaim expired registrations here
  // (behaviour-neutral: expired values are unroutable either way).
  if (t - last_gc_ >= 50.0) {
    pseudonyms_.collect_garbage(t);
    last_gc_ = t;
  }
}

std::optional<NodeId> ShardedOverlayService::resolve(PseudonymValue value) {
  // A blacked-out pseudonym service answers no resolution request;
  // the protocol skips the shuffle round (graceful degradation).
  if (!pseudonym_service_available_) return std::nullopt;
  return pseudonyms_.lookup(value, sim_.now());
}

void ShardedOverlayService::send_shuffle_request(
    NodeId from, NodeId to, std::vector<PseudonymRecord> set) {
  link_->send(from, to, [this, from, to, set = std::move(set)] {
    nodes_[to]->handle_shuffle_request(from, set);
  });
}

void ShardedOverlayService::send_shuffle_response(
    NodeId from, NodeId to, std::vector<PseudonymRecord> set) {
  link_->send(from, to, [this, to, set = std::move(set)] {
    nodes_[to]->handle_shuffle_response(set);
  });
}

void ShardedOverlayService::schedule(double delay, sim::EventFn fn) {
  if (sim_.current_shard() == sim::ShardedSimulator::kNoShard) {
    PPO_CHECK_MSG(external_node_ != kNoExternalNode,
                  "external timer without a node to attribute it to");
    sim_.schedule_for(external_node_, delay, std::move(fn));
  } else {
    sim_.schedule_after(delay, std::move(fn));
  }
}

graph::Graph ShardedOverlayService::overlay_snapshot() const {
  graph::Graph overlay(nodes_.size());
  for (const auto& [u, v] : trust_graph_.edges()) overlay.add_edge(u, v);
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    for (const PseudonymValue value : nodes_[u]->pseudonym_links()) {
      const auto owner = pseudonyms_.lookup(value, sim_.now());
      if (owner && *owner != u) overlay.add_edge(u, *owner);
    }
  }
  overlay.finalize();
  return overlay;
}

std::vector<NodeId> ShardedOverlayService::current_peers(NodeId v) const {
  PPO_CHECK_MSG(v < nodes_.size(), "node out of range");
  std::vector<NodeId> peers(nodes_[v]->trusted_links());
  for (const PseudonymValue value : nodes_[v]->pseudonym_links()) {
    const auto owner = pseudonyms_.lookup(value, sim_.now());
    if (owner && *owner != v) peers.push_back(*owner);
  }
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers;
}

SlotSampler::ReplacementCounters ShardedOverlayService::total_replacements()
    const {
  SlotSampler::ReplacementCounters total;
  for (const auto& node : nodes_) {
    const auto& c = node->replacement_counters();
    total.refills_after_expiry += c.refills_after_expiry;
    total.better_displacements += c.better_displacements;
    total.initial_fills += c.initial_fills;
  }
  return total;
}

OverlayNode::Counters ShardedOverlayService::total_counters() const {
  OverlayNode::Counters total;
  for (const auto& node : nodes_) {
    const auto& c = node->counters();
    total.requests_sent += c.requests_sent;
    total.responses_sent += c.responses_sent;
    total.shuffles_completed += c.shuffles_completed;
    total.online_ticks += c.online_ticks;
    total.max_out_degree = std::max(total.max_out_degree, c.max_out_degree);
    total.request_timeouts += c.request_timeouts;
    total.request_retries += c.request_retries;
    total.exchanges_aborted += c.exchanges_aborted;
    total.stale_responses += c.stale_responses;
  }
  return total;
}

metrics::ProtocolHealth ShardedOverlayService::protocol_health() const {
  const OverlayNode::Counters c = total_counters();
  metrics::ProtocolHealth health;
  health.requests_sent = c.requests_sent;
  health.responses_sent = c.responses_sent;
  health.exchanges_completed = c.shuffles_completed;
  health.request_timeouts = c.request_timeouts;
  health.request_retries = c.request_retries;
  health.exchanges_aborted = c.exchanges_aborted;
  health.stale_responses = c.stale_responses;
  health.messages_sent = link_->messages_sent();
  health.messages_delivered = link_->messages_delivered();
  health.messages_dropped = link_->messages_dropped();
  return health;
}

}  // namespace ppo::overlay
