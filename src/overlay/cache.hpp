// Bounded pseudonym cache with a CYCLON-style replacement policy
// (§III-D-1): a shuffle partner's entries first fill free space, then
// overwrite the entries we just sent to that partner, then random
// victims. Expired pseudonyms are purged on access.
//
// Entry storage is a fixed-capacity block carved from a caller-owned
// Arena in service mode (one pool for all nodes, no per-node heap
// churn), or self-owned when constructed standalone (tests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ckpt/io.hpp"
#include "common/arena.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "privacylink/pseudonym.hpp"

namespace ppo::overlay {

using privacylink::PseudonymRecord;
using privacylink::PseudonymValue;

class PseudonymCache {
 public:
  explicit PseudonymCache(std::size_t capacity);
  PseudonymCache(Arena& arena, std::size_t capacity);

  PseudonymCache(PseudonymCache&&) noexcept = default;
  PseudonymCache& operator=(PseudonymCache&&) noexcept = default;
  PseudonymCache(const PseudonymCache&) = delete;
  PseudonymCache& operator=(const PseudonymCache&) = delete;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return entries_.capacity(); }
  bool contains(PseudonymValue value) const;

  /// Selects up to `k` random distinct live entries (a shuffle
  /// message body). Expired entries encountered are dropped.
  std::vector<PseudonymRecord> select_random(std::size_t k, sim::Time now,
                                             Rng& rng);

  /// Merges a received shuffle set. `own` is this node's current
  /// pseudonym (never cached). `sent` is the set this node sent in
  /// the same exchange — the preferred victims when full.
  void merge(const std::vector<PseudonymRecord>& received,
             PseudonymValue own, std::span<const PseudonymRecord> sent,
             sim::Time now, Rng& rng);

  /// Drops all expired entries.
  void purge_expired(sim::Time now);

  /// Rate-limited purge used on the hot path.
  void maybe_purge(sim::Time now);

  /// Live entries (test/diagnostic use).
  std::vector<PseudonymRecord> snapshot(sim::Time now) const;

  /// Checkpoint/restore: every entry — expired ones included, since
  /// purge timing is part of the trajectory — plus the purge clock.
  /// The value index is rebuilt on load.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  void insert_entry(const PseudonymRecord& record);
  void erase_at(std::size_t index);

  sim::Time last_purge_ = -1.0;
  FixedBlock<PseudonymRecord> entries_;
  /// value -> position in entries_; flat table, no node allocation.
  FlatMap64 index_;
  /// Reused by select_random to avoid per-call allocation.
  std::vector<std::size_t> scratch_;
};

}  // namespace ppo::overlay
