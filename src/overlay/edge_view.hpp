// Snapshot-free overlay edge enumeration for the measurement loop.
//
// The old path rebuilt a full adjacency-list `Graph` every sample:
// one allocation per node, one hash-probed `add_edge` per trust edge,
// and one registry resolution per live sampled pseudonym per node —
// even though between consecutive samples most nodes' links have not
// changed at all. This view keeps a memoized resolved-target slice
// per node and re-derives it only when it can have changed:
//
//  * the node's sampler reports a new mutation_epoch() (some slot was
//    written: fill, displacement, expiry refresh, vacation), or
//  * `now` has crossed the slice's validity horizon
//        valid_until = min(sampler earliest live expiry,
//                          min registry expiry of resolved values),
//    the earliest instant at which a live value can silently die or a
//    registration can lapse without any slot write.
//
// A value that FAILS to resolve (gossiped but expired at the
// registry, or forged and never registered) makes the slice
// non-cacheable (valid_until = now): an adversary may re-register an
// aimed value at any moment, turning the failure into a success with
// no sampler write, so failed resolutions must be retried every
// sample. Successful resolutions are stable until their expiry — a
// live value cannot be re-registered to a different owner, and every
// registration path stamps `now + lifetime`, so re-registration only
// ever extends an expiry (see PseudonymService::lookup_with_expiry).
//
// The produced edge set — trust edges plus an edge {u, owner(P)} for
// every live sampled pseudonym P of u — is exactly what
// overlay_snapshot() builds, normalized to u < v, sorted and
// deduplicated, ready for CsrGraph::assign_from_edges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "overlay/sampler.hpp"

namespace ppo::overlay {

class OverlayEdgeView {
 public:
  /// Enumerates the current overlay edges. `sampler_of(v)` must yield
  /// `const SlotSampler&` for node v; `resolve(value)` must yield
  /// `std::optional<std::pair<NodeId, sim::Time>>` — the owner and
  /// registry expiry of a live value (the omniscient metric view, not
  /// the availability-gated protocol path). The returned span is
  /// valid until the next collect() call.
  template <typename SamplerFn, typename ResolveFn>
  std::span<const std::pair<graph::NodeId, graph::NodeId>> collect(
      graph::GraphView trust, sim::Time now, SamplerFn&& sampler_of,
      ResolveFn&& resolve) {
    const std::size_t n = trust.num_nodes();
    // Late joiners (add_member): size each newcomer's target slice to
    // its sampler — slot counts never change after node construction,
    // so the capacity is final.
    while (state_.size() < n) {
      const graph::NodeId v = static_cast<graph::NodeId>(state_.size());
      NodeState st;
      st.offset = targets_.size();
      st.cap = static_cast<std::uint32_t>(sampler_of(v).slot_count());
      targets_.resize(targets_.size() + st.cap);
      state_.push_back(st);
    }

    edges_.clear();
    for (graph::NodeId u = 0; u < n; ++u) {
      for (const graph::NodeId v : trust.neighbors(u))
        if (u < v) edges_.emplace_back(u, v);

      NodeState& st = state_[u];
      const SlotSampler& sampler = sampler_of(u);
      if (st.epoch != sampler.mutation_epoch() || !(now < st.valid_until)) {
        scratch_.clear();
        sampler.live_values_into(now, scratch_);
        double valid_until = sampler.earliest_live_expiry(now);
        st.len = 0;
        for (const PseudonymValue value : scratch_) {
          const auto owner = resolve(value);
          if (!owner) {
            valid_until = now;  // non-cacheable: retry next sample
            continue;
          }
          valid_until = std::min(valid_until, owner->second);
          // Distinct live values <= slots, so len can never reach cap.
          if (owner->first != u) targets_[st.offset + st.len++] = owner->first;
        }
        st.epoch = sampler.mutation_epoch();
        st.valid_until = valid_until;
        ++slices_recomputed_;
      } else {
        ++slices_reused_;
      }
      for (std::uint32_t i = 0; i < st.len; ++i) {
        const graph::NodeId t = targets_[st.offset + i];
        edges_.emplace_back(std::min(u, t), std::max(u, t));
      }
    }
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
    return {edges_.data(), edges_.size()};
  }

  /// Memoization effectiveness counters (telemetry).
  std::uint64_t slices_reused() const { return slices_reused_; }
  std::uint64_t slices_recomputed() const { return slices_recomputed_; }

  /// Heap bytes held by the view (capacity) — feeds the bytes-per-node
  /// telemetry of the crawl-scale reports.
  std::size_t memory_bytes() const {
    return state_.capacity() * sizeof(NodeState) +
           targets_.capacity() * sizeof(graph::NodeId) +
           edges_.capacity() * sizeof(edges_[0]) +
           scratch_.capacity() * sizeof(PseudonymValue);
  }

 private:
  static constexpr std::uint64_t kNeverCached = ~std::uint64_t{0};

  struct NodeState {
    std::uint64_t epoch = kNeverCached;
    double valid_until = -std::numeric_limits<double>::infinity();
    std::uint64_t offset = 0;  // into targets_
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  std::vector<NodeState> state_;
  /// Pooled per-node resolved-target slices (fixed capacity = the
  /// node's slot count; distinct live values never exceed slots).
  std::vector<graph::NodeId> targets_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges_;
  std::vector<PseudonymValue> scratch_;
  std::uint64_t slices_reused_ = 0;
  std::uint64_t slices_recomputed_ = 0;
};

}  // namespace ppo::overlay
