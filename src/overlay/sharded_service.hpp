// Shard-aware variant of OverlayService: the same protocol nodes, but
// orchestrated on a sim::ShardedSimulator so independent nodes run on
// parallel shard workers. The service's job is to keep every source
// of randomness and every mutable structure *node-keyed*, which is
// what makes the trajectory bit-identical across shard counts:
//
//  - every RNG stream is derived statelessly from (seed, subsystem
//    tag, node id) via derive_seed() — churn dwell times, protocol
//    draws, pseudonym values and tick phases belong to their node, not
//    to a global draw order;
//  - the transport runs per-sender latency streams, and an enabled
//    fault plan must use per-link fate streams;
//  - the pseudonym registry is read-only while a window runs: nodes
//    resolve through the const lookup() path, and freshly minted
//    pseudonyms are buffered per shard and published at the window
//    barrier (safe because a mint gossiped at time t cannot be
//    resolved by a remote node before t + min_latency, which is at
//    least one window away).
//
// Differences from the serial OverlayService: run the simulation via
// ShardedSimulator::run_until (exclusive of its end time); dynamic
// membership (add_member) is not supported. Service-level faults ARE
// supported, but data-driven instead of event-driven: node-crash
// bursts run via FaultInjector's per-victim events, and pseudonym
// blackouts are installed up front as windows
// (set_pseudonym_blackout_windows) that resolve() consults — no
// shared mutable toggle, so shard workers stay race-free.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "churn/churn_driver.hpp"
#include "churn/churn_model.hpp"
#include "common/arena.hpp"
#include "fault/faulty_transport.hpp"
#include "graph/graph.hpp"
#include "metrics/protocol_health.hpp"
#include "overlay/edge_view.hpp"
#include "overlay/node.hpp"
#include "overlay/service.hpp"
#include "privacylink/mix_transport.hpp"
#include "privacylink/pseudonym_service.hpp"
#include "privacylink/transport.hpp"
#include "sim/periodic.hpp"
#include "sim/sharded_simulator.hpp"

namespace ppo::overlay {

class ShardedOverlayService final : public NodeEnvironment {
 public:
  /// `sim.num_actors()` must equal the trust graph's node count.
  /// Mix mode additionally requires min_hop_latency to clear the
  /// lookahead window (the exit hop crosses shards). An enabled
  /// link-fault plan must set per_link_streams.
  ShardedOverlayService(sim::ShardedSimulator& sim,
                        const graph::Graph& trust_graph,
                        const churn::ChurnModel& churn_model,
                        OverlayServiceOptions options, std::uint64_t seed);

  ShardedOverlayService(sim::ShardedSimulator& sim,
                        const graph::Graph& trust_graph,
                        std::vector<const churn::ChurnModel*> churn_models,
                        OverlayServiceOptions options, std::uint64_t seed);

  /// Samples initial online states and schedules churn + shuffle
  /// ticks. Each node's tick phase comes from its own derived stream.
  void start();

  // --- NodeEnvironment ---
  sim::Time now() const override { return sim_.now(); }
  bool is_online(NodeId node) const override {
    return churn_.is_online(node);
  }
  PseudonymRecord mint_pseudonym(NodeId owner, double lifetime) override;
  std::optional<NodeId> resolve(PseudonymValue value) override;
  void send_shuffle_request(NodeId from, NodeId to,
                            std::vector<PseudonymRecord> set) override;
  void send_shuffle_response(NodeId from, NodeId to,
                             std::vector<PseudonymRecord> set) override;
  void schedule(double delay, sim::EventFn fn) override;
  /// Real ticket of the most recent schedule() (timer journaling —
  /// restored one-shot timers must keep their original (origin, seq)
  /// so ties at equal fire time replay in the original order).
  sim::EventTicket last_scheduled() const override {
    return sim_.last_ticket();
  }

  void set_pseudonym_service_available(bool available) {
    pseudonym_service_available_ = available;
  }
  bool pseudonym_service_available() const {
    return pseudonym_service_available_;
  }

  /// Sharded replacement for FaultInjector's blackout events: install
  /// the full blackout schedule before start(). resolve() fails while
  /// any window contains now(). Read-only during windows, so it is
  /// safe under parallel shard workers and K-invariant by
  /// construction. Call before running the simulation.
  void set_pseudonym_blackout_windows(std::vector<fault::Window> windows) {
    pseudonym_blackouts_ = std::move(windows);
  }

  // --- inspection (mirrors OverlayService; call between windows) ---
  std::size_t num_nodes() const { return nodes_.size(); }
  const graph::Graph& trust_graph() const { return trust_graph_; }
  const graph::NodeMask& online_mask() const { return churn_.online_mask(); }
  std::size_t online_count() const { return churn_.online_count(); }
  OverlayNode& node(NodeId id) { return nodes_[id]; }
  const OverlayNode& node(NodeId id) const { return nodes_[id]; }
  churn::ChurnDriver& churn_driver() { return churn_; }
  const privacylink::LinkTransport& transport() const { return *link_; }
  const privacylink::PseudonymService& pseudonym_service() const {
    return pseudonyms_;
  }
  const privacylink::MixNetwork* mix_network() const { return mix_.get(); }
  const fault::FaultyTransport* fault_transport() const {
    return faulty_.get();
  }
  /// Mutable access for fault-injection hooks (relay crash/revive).
  privacylink::MixNetwork* mutable_mix_network() { return mix_.get(); }
  /// The adversary engine, if an enabled plan was set.
  const adversary::AdversaryEngine* adversary_engine() const {
    return engine_.get();
  }
  /// The passive observer, if an enabled plan was set.
  const inference::ObserverAdversary* observer() const {
    return observer_.get();
  }

  graph::Graph overlay_snapshot() const;
  /// Snapshot-free edge enumeration (see OverlayService::overlay_edges
  /// and edge_view.hpp). Call between windows, like overlay_snapshot.
  std::span<const std::pair<graph::NodeId, graph::NodeId>> overlay_edges();
  const OverlayEdgeView& edge_view() const { return edge_view_; }
  std::vector<NodeId> current_peers(NodeId v) const;
  SlotSampler::ReplacementCounters total_replacements() const;
  OverlayNode::Counters total_counters() const;
  metrics::ProtocolHealth protocol_health() const;

  /// Arena bytes reserved for all per-node hot state (see
  /// OverlayService::node_state_bytes).
  std::size_t node_state_bytes() const { return arena_.bytes_reserved(); }

  /// --- checkpoint/restore (mirrors OverlayService) ------------------
  bool checkpointable() const {
    return !options_.use_mix_network &&
           (faulty_ == nullptr || faulty_->plan_checkpointable());
  }
  void enable_checkpointing();
  /// Call only at the quiescent point after run_until returned: all
  /// mailboxes drained, no window in flight, pending mint buffers
  /// published at the last barrier.
  void save_checkpoint(ckpt::Writer& w) const;
  /// Call INSTEAD of start() on a freshly constructed service. The
  /// resumed run must slice run_until calls exactly like the original
  /// (lockstep windows re-anchor per call). Throws ckpt::ParseError.
  void restore_from_checkpoint(ckpt::Reader& r);
  void prune_checkpoint_journal() {
    if (journal_) journal_->prune(sim_.now());
  }

 private:
  struct PendingMint {
    NodeId owner;
    PseudonymRecord record;
  };

  /// Barrier hook: registers every pseudonym minted during the window
  /// (shard order, then mint order — deterministic for a fixed K and
  /// value-identical across K), then periodically GCs the registry.
  /// Adversary-minted records are published afterwards, sorted by
  /// (owner, value): their values are AIMED (not uniform), so live
  /// collisions are legitimate outcomes whose resolution must not
  /// depend on shard count.
  void publish_pending_mints();

  /// Builds the adversary engine when an enabled plan is configured.
  void init_adversary();

  /// Sampler slots of honest nodes currently resolving to an attacker
  /// (the eclipse-capture measure; 0 without an engine).
  std::uint64_t count_eclipsed_slots() const;

  /// Checkpoint delivery payload recipe (see OverlayService).
  std::string encode_delivery(
      bool is_response, NodeId from, NodeId to,
      const std::vector<PseudonymRecord>& set,
      const std::optional<inference::PendingObservation>& observed) const;
  sim::EventFn decode_delivery(const std::string& blob);

  /// Installs the churn callbacks (start() and the restore path).
  churn::ChurnCallbacks make_churn_callbacks();

  sim::ShardedSimulator& sim_;
  graph::Graph trust_graph_;
  OverlayServiceOptions options_;
  std::uint64_t seed_;
  privacylink::PseudonymService pseudonyms_;
  churn::ChurnDriver churn_;
  std::unique_ptr<privacylink::MixNetwork> mix_;  // mix mode only
  std::unique_ptr<privacylink::LinkTransport> transport_;  // bare inner
  std::unique_ptr<fault::FaultyTransport> faulty_;  // optional wrapper
  privacylink::LinkTransport* link_ = nullptr;  // what sends go through
  /// Typed view of transport_ in ideal-transport mode (checkpointing;
  /// null in mix mode).
  privacylink::Transport* bare_ = nullptr;
  std::unique_ptr<privacylink::DeliveryJournal> journal_;
  bool pseudonym_service_available_ = true;
  /// Backs every node's hot state (see OverlayService::arena_).
  /// Touched only at node construction, before any shard worker
  /// exists, so windows run against frozen allocations.
  Arena arena_;
  std::vector<OverlayNode> nodes_;
  /// Per-node pseudonym-value streams (derive_seed tag 4): a node's
  /// mint sequence is a function of its own mints alone.
  std::vector<Rng> mint_rngs_;
  std::vector<sim::PeriodicTask> ticks_;
  /// Freshly minted records per shard, published at the barrier.
  std::vector<std::vector<PendingMint>> pending_mints_;
  /// Adversary-minted (eclipse) records per shard; published at the
  /// barrier in (owner, value) order — see publish_pending_mints().
  std::vector<std::vector<PendingMint>> pending_adversary_mints_;
  /// Installed blackout schedule (read-only while windows run).
  std::vector<fault::Window> pseudonym_blackouts_;
  std::unique_ptr<adversary::AdversaryEngine> engine_;  // optional
  std::unique_ptr<inference::ObserverAdversary> observer_;  // optional
  /// Node whose callback is running while in external context (start
  /// / churn-callback bootstrap), so schedule() can attribute timers.
  NodeId external_node_ = privacylink::NodeId(-1);
  /// Memoized overlay-edge enumeration (overlay_edges()); touched
  /// only between windows, never by shard workers.
  OverlayEdgeView edge_view_;
  sim::Time last_gc_ = 0.0;
  bool started_ = false;
};

}  // namespace ppo::overlay
