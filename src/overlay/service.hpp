// Orchestrates the full overlay-maintenance service inside the
// simulator: N protocol nodes built from a trust graph, churn-driven
// online/offline transitions, the ideal privacy-preserving transport,
// and snapshotting for the paper's metrics.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/engine.hpp"
#include "adversary/plan.hpp"
#include "churn/churn_driver.hpp"
#include "common/arena.hpp"
#include "churn/churn_model.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "graph/graph.hpp"
#include "inference/observer.hpp"
#include "metrics/protocol_health.hpp"
#include "overlay/edge_view.hpp"
#include "overlay/node.hpp"
#include "overlay/params.hpp"
#include "privacylink/mix_transport.hpp"
#include "privacylink/pseudonym_service.hpp"
#include "privacylink/transport.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace ppo::overlay {

struct OverlayServiceOptions {
  OverlayParams params;
  privacylink::TransportOptions transport;

  /// Full-stack mode: protocol messages ride real onion circuits
  /// through a MixNetwork instead of the ideal transport. Expensive;
  /// for small-scale validation and demos (see DESIGN.md).
  bool use_mix_network = false;
  privacylink::MixOptions mix;
  privacylink::MixTransportOptions mix_transport;

  /// Fault-injection extension: when set and enabled(), the transport
  /// is wrapped in a FaultyTransport applying this plan. An absent or
  /// inert plan leaves the simulation bit-identical to an unwrapped
  /// run (the fault stream has its own seed).
  std::optional<fault::FaultPlan> link_faults;

  /// Byzantine-adversary extension (§III-E): when set and enabled(),
  /// an AdversaryEngine intercepts the shuffle send seams and drives
  /// the plan's attacker roles. An absent or zero-fraction plan skips
  /// engine construction entirely, so the run stays bit-identical to
  /// the unwrapped baseline (the engine draws only from plan-derived
  /// streams, never from the service RNG).
  std::optional<adversary::AdversaryPlan> adversary;

  /// Link-privacy measurement extension (§III): when set and
  /// enabled(), a passive ObserverAdversary records the shuffle
  /// traffic its observation model can see. Purely read-only at the
  /// same send seams — it never perturbs the trajectory — and a
  /// zero-coverage plan skips construction entirely, keeping the run
  /// bit-identical to one with no plan at all.
  std::optional<inference::ObserverPlan> observer;
};

class OverlayService final : public NodeEnvironment {
 public:
  /// `trust_graph` defines the initial membership (one node per
  /// vertex) and the trusted links; the service keeps its own copy so
  /// members can be added later (see add_member).
  OverlayService(sim::Simulator& sim, const graph::Graph& trust_graph,
                 const churn::ChurnModel& churn_model,
                 OverlayServiceOptions options, Rng rng);

  /// Heterogeneous churn: node v follows *churn_models[v] (size must
  /// equal the trust graph's node count). Models must outlive the
  /// service.
  OverlayService(sim::Simulator& sim, const graph::Graph& trust_graph,
                 std::vector<const churn::ChurnModel*> churn_models,
                 OverlayServiceOptions options, Rng rng);

  /// Extension beyond the paper (§II-B leaves mutable trust graphs as
  /// future work; node/edge ADDITION "does not raise privacy
  /// concerns"): a new user joins with trust edges to the existing
  /// members who invited them. The node comes online immediately and
  /// integrates through the normal protocol. Requires start().
  NodeId add_member(const std::vector<NodeId>& trusted_neighbors);

  /// Samples initial online states and schedules churn + shuffle
  /// ticks (each node with a random phase inside the period).
  void start();

  // --- NodeEnvironment ---
  sim::Time now() const override { return sim_.now(); }
  bool is_online(NodeId node) const override {
    return churn_.is_online(node);
  }
  PseudonymRecord mint_pseudonym(NodeId owner, double lifetime) override;
  std::optional<NodeId> resolve(PseudonymValue value) override;

  /// Pseudonym-service availability toggle, driven by a FaultInjector
  /// blackout schedule: while unavailable, protocol-level resolution
  /// (NodeEnvironment::resolve) fails. Metric snapshots keep their
  /// omniscient view. Minting stays local (see fault_injector.hpp).
  void set_pseudonym_service_available(bool available) {
    pseudonym_service_available_ = available;
  }
  bool pseudonym_service_available() const {
    return pseudonym_service_available_;
  }
  void send_shuffle_request(NodeId from, NodeId to,
                            std::vector<PseudonymRecord> set) override;
  void send_shuffle_response(NodeId from, NodeId to,
                             std::vector<PseudonymRecord> set) override;
  void schedule(double delay, sim::EventFn fn) override;
  /// Real ticket of the most recent schedule() (timer journaling —
  /// restored one-shot timers must keep their original seq so ties at
  /// equal fire time replay in the original order).
  sim::EventTicket last_scheduled() const override {
    return sim_.last_ticket();
  }

  // --- inspection ---
  std::size_t num_nodes() const { return nodes_.size(); }
  const graph::Graph& trust_graph() const { return trust_graph_; }
  const graph::NodeMask& online_mask() const { return churn_.online_mask(); }
  std::size_t online_count() const { return churn_.online_count(); }
  OverlayNode& node(NodeId id) { return nodes_[id]; }
  const OverlayNode& node(NodeId id) const { return nodes_[id]; }
  churn::ChurnDriver& churn_driver() { return churn_; }
  /// The transport protocol messages go through (the fault wrapper
  /// when link_faults is enabled, the bare transport otherwise).
  const privacylink::LinkTransport& transport() const { return *link_; }
  const privacylink::PseudonymService& pseudonym_service() const {
    return pseudonyms_;
  }
  /// The mix network backing the transport (mix mode only).
  const privacylink::MixNetwork* mix_network() const { return mix_.get(); }
  /// Mutable access for fault-injection hooks (relay crash/revive).
  privacylink::MixNetwork* mutable_mix_network() { return mix_.get(); }
  /// The fault wrapper, if link_faults was set and enabled.
  const fault::FaultyTransport* fault_transport() const {
    return faulty_.get();
  }
  /// The adversary engine, if an enabled plan was set.
  const adversary::AdversaryEngine* adversary_engine() const {
    return engine_.get();
  }
  /// The passive observer, if an enabled plan was set.
  const inference::ObserverAdversary* observer() const {
    return observer_.get();
  }

  /// The current overlay graph over ALL nodes (online and offline):
  /// trust edges plus an edge {u, v} whenever u holds a live
  /// pseudonym of v. Metrics mask it with online_mask().
  graph::Graph overlay_snapshot();

  /// The same edge set as overlay_snapshot(), normalized (u < v,
  /// sorted, deduplicated) without materializing a Graph: per-node
  /// resolved-target slices are memoized across calls and re-derived
  /// only when the node's sampler mutated or an expiry passed (see
  /// edge_view.hpp). The span is valid until the next call. This is
  /// the measurement loop's path; feed it to
  /// CsrGraph::assign_from_edges or StreamingConnectivity.
  std::span<const std::pair<graph::NodeId, graph::NodeId>> overlay_edges();
  const OverlayEdgeView& edge_view() const { return edge_view_; }

  /// The nodes `v` can currently reach over its own links (n.links):
  /// trusted neighbors plus the owners of its live sampled
  /// pseudonyms. What an application layer on top of the overlay
  /// sends to (it addresses the LINKS; the identities here are
  /// simulator-level bookkeeping).
  std::vector<NodeId> current_peers(NodeId v);

  /// Aggregated per-node accounting.
  SlotSampler::ReplacementCounters total_replacements() const;
  OverlayNode::Counters total_counters() const;

  /// Protocol + transport degradation rollup for figure reports.
  metrics::ProtocolHealth protocol_health() const;

  /// Arena bytes reserved for all per-node hot state (cache entries,
  /// sampler slot arrays, pending-exchange blocks) — the numerator of
  /// the bytes-per-node telemetry in the crawl-scale reports.
  std::size_t node_state_bytes() const { return arena_.bytes_reserved(); }

  /// --- checkpoint/restore -------------------------------------------
  /// True when this configuration's full state can be snapshotted:
  /// ideal transport only (no mix network), and a fault plan whose
  /// deliveries are single-stage (no jitter/reorder).
  bool checkpointable() const {
    return !options_.use_mix_network &&
           (faulty_ == nullptr || faulty_->plan_checkpointable());
  }

  /// Arms the in-flight delivery journal on the transport stack. Must
  /// be called before start() (or restore_from_checkpoint()); aborts
  /// when !checkpointable().
  void enable_checkpointing();

  /// Serializes the complete mutable state (simulator clock/sequence,
  /// every RNG stream, node hot state, pending timers and in-flight
  /// messages). Call only at a quiescent point, after run_until
  /// returned. Requires enable_checkpointing().
  void save_checkpoint(ckpt::Writer& w) const;

  /// Counterpart: call INSTEAD of start(), on a freshly constructed
  /// service over the same graph/options/seed, after
  /// enable_checkpointing(). Overwrites all mutable state and
  /// re-registers every pending event at its original canonical queue
  /// position. Throws ckpt::ParseError on any inconsistency.
  void restore_from_checkpoint(ckpt::Reader& r);

  /// Drops journal entries whose deliveries have already executed
  /// (bounds memory on long runs; call between windows).
  void prune_checkpoint_journal() {
    if (journal_) journal_->prune(sim_.now());
  }

 private:
  /// Starts one node's periodic shuffle schedule.
  void start_ticks(NodeId v);

  /// Builds the adversary engine when an enabled plan is configured.
  void init_adversary();

  /// Sampler slots of honest nodes currently resolving to an attacker
  /// (the eclipse-capture measure; 0 without an engine).
  std::uint64_t count_eclipsed_slots() const;

  /// Serializes everything a delivery closure needs so it can be
  /// rebuilt after a restore (checkpoint journal payload recipe).
  std::string encode_delivery(
      bool is_response, NodeId from, NodeId to,
      const std::vector<PseudonymRecord>& set,
      const std::optional<inference::PendingObservation>& observed) const;
  sim::EventFn decode_delivery(const std::string& blob);

  sim::Simulator& sim_;
  graph::Graph trust_graph_;  // owned: add_member mutates it
  OverlayServiceOptions options_;
  Rng rng_;
  privacylink::PseudonymService pseudonyms_;
  churn::ChurnDriver churn_;
  std::unique_ptr<privacylink::MixNetwork> mix_;  // mix mode only
  std::unique_ptr<privacylink::LinkTransport> transport_;  // bare inner
  std::unique_ptr<fault::FaultyTransport> faulty_;  // optional wrapper
  privacylink::LinkTransport* link_ = nullptr;  // what sends go through
  /// Typed view of transport_ in ideal-transport mode (checkpointing;
  /// null in mix mode).
  privacylink::Transport* bare_ = nullptr;
  std::unique_ptr<privacylink::DeliveryJournal> journal_;
  bool pseudonym_service_available_ = true;
  std::unique_ptr<adversary::AdversaryEngine> engine_;  // optional
  std::unique_ptr<inference::ObserverAdversary> observer_;  // optional
  /// Backs every node's hot state (cache entries, sampler slot
  /// arrays, pending-exchange blocks). Declared before nodes_ so it
  /// outlives them; allocation happens only at node construction, so
  /// sharded workers never touch it concurrently.
  Arena arena_;
  /// Nodes by value: the per-node containers the hot path walks live
  /// in arena_, and the node objects themselves are chunk-allocated
  /// instead of one heap object per node. A deque (not a vector)
  /// because add_member grows it while node-scheduled timer lambdas
  /// hold pointers to live nodes — deque push_back never relocates
  /// existing elements.
  std::deque<OverlayNode> nodes_;
  std::vector<sim::PeriodicTask> ticks_;
  /// Memoized overlay-edge enumeration (overlay_edges()).
  OverlayEdgeView edge_view_;
  bool started_ = false;
};

}  // namespace ppo::overlay
