// Brahms-style pseudonym sampler (§III-D-2). Node n keeps a list L of
// S slots; slot i holds a permanent random reference value R_i and a
// sampled pseudonym P_i. A pseudonym P' offered by the shuffle
// replaces P_i iff the slot is empty, P' is numerically closer to R_i,
// or equally close with a later expiry. Because each R_i is an
// independent uniform value, the winning pseudonym of each slot is a
// uniform sample over ALL pseudonyms ever offered — independent of how
// often each one was received (the Brahms property).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "privacylink/pseudonym.hpp"

namespace ppo::overlay {

using privacylink::PseudonymRecord;
using privacylink::PseudonymValue;

class SlotSampler {
 public:
  /// Cumulative slot-write accounting for Figure 9: a refill of a slot
  /// vacated by expiry vs the displacement of a live pseudonym by a
  /// closer one. First-ever fills of a virgin slot are new links, not
  /// replacements, and are counted separately.
  struct ReplacementCounters {
    std::uint64_t refills_after_expiry = 0;
    std::uint64_t better_displacements = 0;
    std::uint64_t initial_fills = 0;
    /// Displacements deferred by slot-churn damping (defense).
    std::uint64_t displacements_damped = 0;

    std::uint64_t replacements() const {
      return refills_after_expiry + better_displacements;
    }
  };

  /// Creates `slots` slots with reference values drawn from `rng` at
  /// `bits` width. Reference values never change (§III-D).
  ///
  /// `min_dwell` > 0 arms slot-churn damping
  /// (OverlayParams::sampler_min_dwell): a live entry can only be
  /// displaced by a closer record once it has held its slot for
  /// `min_dwell` periods. 0 keeps the original rule bit-identically.
  SlotSampler(std::size_t slots, unsigned bits, Rng& rng,
              double min_dwell = 0.0);

  std::size_t slot_count() const { return slots_.size(); }

  /// Offers one received pseudonym to every slot (the §III-D
  /// traversal). Expired slot contents are treated as empty.
  void offer(const PseudonymRecord& record, sim::Time now);

  /// Ablation mode: fill empty/expired slots with the offered
  /// pseudonym but never displace a live one (no closeness rule).
  void offer_naive(const PseudonymRecord& record, sim::Time now, Rng& rng);

  /// Distinct live pseudonym values across slots — the node's
  /// pseudonym links (n.links minus trusted links).
  std::vector<PseudonymValue> live_values(sim::Time now) const;

  /// Number of live slots (may count duplicates of the same value).
  std::size_t live_slots(sim::Time now) const;

  /// Drops expired slot contents eagerly (bookkeeping for the
  /// refill-after-expiry counter happens at offer time either way).
  void purge_expired(sim::Time now);

  const ReplacementCounters& counters() const { return counters_; }

  /// Test hook: slot i's (reference, record).
  std::pair<PseudonymValue, std::optional<PseudonymRecord>> slot(
      std::size_t i) const;

  /// The permanent reference values R_i, in slot order. Immutable
  /// after construction, so concurrent reads (the adversary engine's
  /// eclipse probe crosses shards) are safe.
  std::vector<PseudonymValue> references() const;

 private:
  struct Slot {
    PseudonymValue reference;
    std::optional<PseudonymRecord> record;
    /// |record->value - reference|, cached because the §III-D rule
    /// re-evaluates it for every offered pseudonym (hot path).
    std::uint64_t record_distance = 0;
    /// When the current record was placed (damping clock).
    sim::Time placed_at = 0.0;
    /// Set when the slot once held a pseudonym that expired and has
    /// not been refilled yet — the next fill is a replacement.
    bool vacated_by_expiry = false;
  };

  /// Applies the §III-D replacement rule for one slot; updates the
  /// counters when the content changes.
  void place(Slot& slot, const PseudonymRecord& record, sim::Time now,
             bool check_closeness);

  std::vector<Slot> slots_;
  double min_dwell_ = 0.0;
  ReplacementCounters counters_;
};

}  // namespace ppo::overlay
