// Brahms-style pseudonym sampler (§III-D-2). Node n keeps a list L of
// S slots; slot i holds a permanent random reference value R_i and a
// sampled pseudonym P_i. A pseudonym P' offered by the shuffle
// replaces P_i iff the slot is empty, P' is numerically closer to R_i,
// or equally close with a later expiry. Because each R_i is an
// independent uniform value, the winning pseudonym of each slot is a
// uniform sample over ALL pseudonyms ever offered — independent of how
// often each one was received (the Brahms property).
//
// Storage is struct-of-arrays: the offer() hot loop touches the
// reference, value, expiry and distance of every slot for every
// received record, so the slot fields live in parallel arrays instead
// of an array of structs with an optional<> per slot. The arrays are
// carved from a caller-provided Arena when the sampler belongs to an
// overlay service (one allocation pool for all nodes), or from a
// small private arena when constructed standalone (tests).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ckpt/io.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "privacylink/pseudonym.hpp"

namespace ppo::overlay {

using privacylink::PseudonymRecord;
using privacylink::PseudonymValue;

class SlotSampler {
 public:
  /// Cumulative slot-write accounting for Figure 9: a refill of a slot
  /// vacated by expiry vs the displacement of a live pseudonym by a
  /// closer one. First-ever fills of a virgin slot are new links, not
  /// replacements, and are counted separately.
  struct ReplacementCounters {
    std::uint64_t refills_after_expiry = 0;
    std::uint64_t better_displacements = 0;
    std::uint64_t initial_fills = 0;
    /// Displacements deferred by slot-churn damping (defense).
    std::uint64_t displacements_damped = 0;

    std::uint64_t replacements() const {
      return refills_after_expiry + better_displacements;
    }
  };

  /// Creates `slots` slots with reference values drawn from `rng` at
  /// `bits` width. Reference values never change (§III-D).
  ///
  /// `min_dwell` > 0 arms slot-churn damping
  /// (OverlayParams::sampler_min_dwell): a live entry can only be
  /// displaced by a closer record once it has held its slot for
  /// `min_dwell` periods. 0 keeps the original rule bit-identically.
  SlotSampler(std::size_t slots, unsigned bits, Rng& rng,
              double min_dwell = 0.0);

  /// Same, with slot storage carved from `arena` (service mode: the
  /// arena outlives the sampler and is shared by all nodes).
  SlotSampler(Arena& arena, std::size_t slots, unsigned bits, Rng& rng,
              double min_dwell = 0.0);

  SlotSampler(SlotSampler&&) noexcept = default;
  SlotSampler& operator=(SlotSampler&&) noexcept = default;
  SlotSampler(const SlotSampler&) = delete;
  SlotSampler& operator=(const SlotSampler&) = delete;

  std::size_t slot_count() const { return references_.size(); }

  /// Offers one received pseudonym to every slot (the §III-D
  /// traversal). Expired slot contents are treated as empty.
  void offer(const PseudonymRecord& record, sim::Time now);

  /// Ablation mode: fill empty/expired slots with the offered
  /// pseudonym but never displace a live one (no closeness rule).
  void offer_naive(const PseudonymRecord& record, sim::Time now, Rng& rng);

  /// Distinct live pseudonym values across slots — the node's
  /// pseudonym links (n.links minus trusted links).
  std::vector<PseudonymValue> live_values(sim::Time now) const;

  /// Appends the distinct live values to `out` (sorted, deduplicated
  /// within this call's contribution). Allocation-free when `out` has
  /// capacity — the streaming-metrics hot path.
  void live_values_into(sim::Time now, std::vector<PseudonymValue>& out) const;

  /// Number of live slots (may count duplicates of the same value).
  std::size_t live_slots(sim::Time now) const;

  /// Drops expired slot contents eagerly (bookkeeping for the
  /// refill-after-expiry counter happens at offer time either way).
  void purge_expired(sim::Time now);

  /// Monotone counter bumped on every slot-content write (fill,
  /// displacement, expiry-vacation, expiry refresh). Together with the
  /// earliest live expiry it lets callers cache derived link state:
  /// a cached live_values() result is still exact while the epoch is
  /// unchanged and `now` has not crossed the earliest expiry observed
  /// at caching time.
  std::uint64_t mutation_epoch() const { return epoch_; }

  /// The earliest expiry among slots live at `now` (+infinity when no
  /// slot is live). Until this time, and as long as mutation_epoch()
  /// is unchanged, the live-value set cannot change — expiry is the
  /// only passive (write-free) way a slot leaves the live set.
  sim::Time earliest_live_expiry(sim::Time now) const;

  const ReplacementCounters& counters() const { return counters_; }

  /// Test hook: slot i's (reference, record).
  std::pair<PseudonymValue, std::optional<PseudonymRecord>> slot(
      std::size_t i) const;

  /// The permanent reference values R_i, in slot order. Immutable
  /// after construction, so concurrent reads (the adversary engine's
  /// eclipse probe crosses shards) are safe.
  std::vector<PseudonymValue> references() const;

  /// Checkpoint/restore: the full slot arrays (references included —
  /// they double as a consistency check against the reconstructed
  /// node's own draws), damping clocks, epoch and counters.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  SlotSampler(Arena* arena, std::size_t slots, unsigned bits, Rng& rng,
              double min_dwell);

  /// Applies the §III-D replacement rule for slot `i`; updates the
  /// counters when the content changes.
  void place(std::size_t i, const PseudonymRecord& record, sim::Time now,
             bool check_closeness);

  bool slot_live_at(std::size_t i, sim::Time now) const {
    return live_[i] != 0 && now < expiries_[i];
  }

  /// Backing arena in standalone mode; empty when the storage belongs
  /// to an external (service-owned) arena. Declared before the spans
  /// purely for clarity — arena chunks never relocate, so the spans
  /// stay valid across moves either way.
  std::optional<Arena> owned_;
  std::span<PseudonymValue> references_;  // permanent R_i
  std::span<PseudonymValue> values_;      // sampled P_i (when live)
  std::span<sim::Time> expiries_;
  /// |values_[i] - references_[i]|, cached because the §III-D rule
  /// re-evaluates it for every offered pseudonym (hot path).
  std::span<std::uint64_t> distances_;
  /// When the current record was placed (damping clock).
  std::span<sim::Time> placed_at_;
  std::span<std::uint8_t> live_;
  /// Set when the slot once held a pseudonym that expired and has
  /// not been refilled yet — the next fill is a replacement.
  std::span<std::uint8_t> vacated_;

  double min_dwell_ = 0.0;
  std::uint64_t epoch_ = 0;
  ReplacementCounters counters_;
};

}  // namespace ppo::overlay
