#include "overlay/sampler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ppo::overlay {

using privacylink::pseudonym_distance;
using privacylink::random_pseudonym_value;

SlotSampler::SlotSampler(std::size_t slots, unsigned bits, Rng& rng,
                         double min_dwell)
    : min_dwell_(min_dwell) {
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    Slot slot;
    slot.reference = random_pseudonym_value(rng, bits);
    slots_.push_back(slot);
  }
}

void SlotSampler::place(Slot& slot, const PseudonymRecord& record,
                        sim::Time now, bool check_closeness) {
  // Expired content counts as an empty, expiry-vacated slot.
  if (slot.record && !slot.record->valid_at(now)) {
    slot.record.reset();
    slot.vacated_by_expiry = true;
  }

  if (!slot.record) {
    slot.record = record;
    slot.record_distance = pseudonym_distance(record.value, slot.reference);
    slot.placed_at = now;
    if (slot.vacated_by_expiry) {
      ++counters_.refills_after_expiry;
      slot.vacated_by_expiry = false;
    } else {
      ++counters_.initial_fills;
    }
    return;
  }

  if (!check_closeness) return;  // naive mode never displaces

  if (slot.record->value == record.value) {
    // Same pseudonym re-offered: refresh expiry knowledge, no change.
    slot.record->expiry = std::max(slot.record->expiry, record.expiry);
    return;
  }

  const std::uint64_t offered = pseudonym_distance(record.value, slot.reference);
  const bool closer = offered < slot.record_distance;
  const bool tie_later_expiry =
      offered == slot.record_distance && record.expiry > slot.record->expiry;
  if (closer || tie_later_expiry) {
    // Damping defense: a live entry keeps its slot until it has
    // dwelled min_dwell periods, no matter how close the challenger.
    if (min_dwell_ > 0.0 && now - slot.placed_at < min_dwell_) {
      ++counters_.displacements_damped;
      return;
    }
    slot.record = record;
    slot.record_distance = offered;
    slot.placed_at = now;
    ++counters_.better_displacements;
  }
}

void SlotSampler::offer(const PseudonymRecord& record, sim::Time now) {
  if (!record.valid_at(now)) return;
  for (Slot& slot : slots_) place(slot, record, now, /*check_closeness=*/true);
}

void SlotSampler::offer_naive(const PseudonymRecord& record, sim::Time now,
                              Rng& rng) {
  if (!record.valid_at(now)) return;
  // Visit slots in random order so the same received sequence does
  // not always land in the same slots.
  const std::size_t start =
      slots_.empty() ? 0 : static_cast<std::size_t>(rng.uniform_u64(slots_.size()));
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    Slot& slot = slots_[(start + k) % slots_.size()];
    const bool was_empty = !slot.record || !slot.record->valid_at(now);
    place(slot, record, now, /*check_closeness=*/false);
    if (was_empty) return;  // placed (or became) — one slot per offer
  }
}

std::vector<PseudonymValue> SlotSampler::live_values(sim::Time now) const {
  std::vector<PseudonymValue> values;
  values.reserve(slots_.size());
  for (const Slot& slot : slots_)
    if (slot.record && slot.record->valid_at(now))
      values.push_back(slot.record->value);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::size_t SlotSampler::live_slots(sim::Time now) const {
  std::size_t count = 0;
  for (const Slot& slot : slots_)
    count += (slot.record && slot.record->valid_at(now));
  return count;
}

void SlotSampler::purge_expired(sim::Time now) {
  for (Slot& slot : slots_) {
    if (slot.record && !slot.record->valid_at(now)) {
      slot.record.reset();
      slot.vacated_by_expiry = true;
    }
  }
}

std::pair<PseudonymValue, std::optional<PseudonymRecord>> SlotSampler::slot(
    std::size_t i) const {
  PPO_CHECK_MSG(i < slots_.size(), "slot index out of range");
  return {slots_[i].reference, slots_[i].record};
}

std::vector<PseudonymValue> SlotSampler::references() const {
  std::vector<PseudonymValue> refs;
  refs.reserve(slots_.size());
  for (const Slot& slot : slots_) refs.push_back(slot.reference);
  return refs;
}

}  // namespace ppo::overlay
