#include "overlay/sampler.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace ppo::overlay {

using privacylink::pseudonym_distance;
using privacylink::random_pseudonym_value;

namespace {

/// Standalone mode sizes its private arena to hold exactly one
/// sampler's arrays (5 eight-byte and 2 one-byte fields per slot).
std::size_t standalone_arena_bytes(std::size_t slots) {
  return std::max<std::size_t>(64, slots * 48 + 64);
}

}  // namespace

SlotSampler::SlotSampler(std::size_t slots, unsigned bits, Rng& rng,
                         double min_dwell)
    : SlotSampler(nullptr, slots, bits, rng, min_dwell) {}

SlotSampler::SlotSampler(Arena& arena, std::size_t slots, unsigned bits,
                         Rng& rng, double min_dwell)
    : SlotSampler(&arena, slots, bits, rng, min_dwell) {}

SlotSampler::SlotSampler(Arena* arena, std::size_t slots, unsigned bits,
                         Rng& rng, double min_dwell)
    : min_dwell_(min_dwell) {
  if (arena == nullptr)
    arena = &owned_.emplace(standalone_arena_bytes(slots));
  references_ = arena->allocate_span<PseudonymValue>(slots);
  values_ = arena->allocate_span<PseudonymValue>(slots);
  expiries_ = arena->allocate_span<sim::Time>(slots);
  distances_ = arena->allocate_span<std::uint64_t>(slots);
  placed_at_ = arena->allocate_span<sim::Time>(slots);
  live_ = arena->allocate_span<std::uint8_t>(slots);
  vacated_ = arena->allocate_span<std::uint8_t>(slots);
  // Same draw order as slot construction always had: one reference
  // value per slot, in slot order.
  for (std::size_t i = 0; i < slots; ++i)
    references_[i] = random_pseudonym_value(rng, bits);
}

void SlotSampler::place(std::size_t i, const PseudonymRecord& record,
                        sim::Time now, bool check_closeness) {
  // Expired content counts as an empty, expiry-vacated slot.
  if (live_[i] != 0 && !(now < expiries_[i])) {
    live_[i] = 0;
    vacated_[i] = 1;
    ++epoch_;
  }

  if (live_[i] == 0) {
    values_[i] = record.value;
    expiries_[i] = record.expiry;
    distances_[i] = pseudonym_distance(record.value, references_[i]);
    placed_at_[i] = now;
    live_[i] = 1;
    ++epoch_;
    if (vacated_[i] != 0) {
      ++counters_.refills_after_expiry;
      vacated_[i] = 0;
    } else {
      ++counters_.initial_fills;
    }
    return;
  }

  if (!check_closeness) return;  // naive mode never displaces

  if (values_[i] == record.value) {
    // Same pseudonym re-offered: refresh expiry knowledge, no change.
    if (record.expiry > expiries_[i]) {
      expiries_[i] = record.expiry;
      ++epoch_;
    }
    return;
  }

  const std::uint64_t offered =
      pseudonym_distance(record.value, references_[i]);
  const bool closer = offered < distances_[i];
  const bool tie_later_expiry =
      offered == distances_[i] && record.expiry > expiries_[i];
  if (closer || tie_later_expiry) {
    // Damping defense: a live entry keeps its slot until it has
    // dwelled min_dwell periods, no matter how close the challenger.
    if (min_dwell_ > 0.0 && now - placed_at_[i] < min_dwell_) {
      ++counters_.displacements_damped;
      return;
    }
    values_[i] = record.value;
    expiries_[i] = record.expiry;
    distances_[i] = offered;
    placed_at_[i] = now;
    ++epoch_;
    ++counters_.better_displacements;
  }
}

void SlotSampler::offer(const PseudonymRecord& record, sim::Time now) {
  if (!record.valid_at(now)) return;
  for (std::size_t i = 0; i < references_.size(); ++i)
    place(i, record, now, /*check_closeness=*/true);
}

void SlotSampler::offer_naive(const PseudonymRecord& record, sim::Time now,
                              Rng& rng) {
  if (!record.valid_at(now)) return;
  const std::size_t n = references_.size();
  // Visit slots in random order so the same received sequence does
  // not always land in the same slots.
  const std::size_t start =
      n == 0 ? 0 : static_cast<std::size_t>(rng.uniform_u64(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    const bool was_empty = !slot_live_at(i, now);
    place(i, record, now, /*check_closeness=*/false);
    if (was_empty) return;  // placed (or became) — one slot per offer
  }
}

std::vector<PseudonymValue> SlotSampler::live_values(sim::Time now) const {
  std::vector<PseudonymValue> values;
  values.reserve(references_.size());
  live_values_into(now, values);
  return values;
}

void SlotSampler::live_values_into(sim::Time now,
                                   std::vector<PseudonymValue>& out) const {
  const std::size_t first = out.size();
  for (std::size_t i = 0; i < references_.size(); ++i)
    if (slot_live_at(i, now)) out.push_back(values_[i]);
  std::sort(out.begin() + first, out.end());
  out.erase(std::unique(out.begin() + first, out.end()), out.end());
}

sim::Time SlotSampler::earliest_live_expiry(sim::Time now) const {
  sim::Time earliest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < references_.size(); ++i)
    if (slot_live_at(i, now)) earliest = std::min(earliest, expiries_[i]);
  return earliest;
}

std::size_t SlotSampler::live_slots(sim::Time now) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < references_.size(); ++i)
    count += slot_live_at(i, now);
  return count;
}

void SlotSampler::purge_expired(sim::Time now) {
  for (std::size_t i = 0; i < references_.size(); ++i) {
    if (live_[i] != 0 && !(now < expiries_[i])) {
      live_[i] = 0;
      vacated_[i] = 1;
      ++epoch_;
    }
  }
}

std::pair<PseudonymValue, std::optional<PseudonymRecord>> SlotSampler::slot(
    std::size_t i) const {
  PPO_CHECK_MSG(i < references_.size(), "slot index out of range");
  std::optional<PseudonymRecord> record;
  if (live_[i] != 0) record = PseudonymRecord{values_[i], expiries_[i]};
  return {references_[i], record};
}

std::vector<PseudonymValue> SlotSampler::references() const {
  return {references_.begin(), references_.end()};
}

void SlotSampler::save_state(ckpt::Writer& w) const {
  w.tag(0x534C4F54u);  // 'SLOT'
  w.f64(min_dwell_);
  w.u64(epoch_);
  w.u64(counters_.refills_after_expiry);
  w.u64(counters_.better_displacements);
  w.u64(counters_.initial_fills);
  w.u64(counters_.displacements_damped);
  w.size(references_.size());
  for (std::size_t i = 0; i < references_.size(); ++i) {
    w.u64(references_[i]);
    w.u64(values_[i]);
    w.f64(expiries_[i]);
    w.u64(distances_[i]);
    w.f64(placed_at_[i]);
    w.u8(live_[i]);
    w.u8(vacated_[i]);
  }
}

void SlotSampler::load_state(ckpt::Reader& r) {
  r.tag(0x534C4F54u);
  const double min_dwell = r.f64();
  if (min_dwell != min_dwell_)
    throw ckpt::ParseError("sampler min_dwell mismatch");
  epoch_ = r.u64();
  counters_.refills_after_expiry = r.u64();
  counters_.better_displacements = r.u64();
  counters_.initial_fills = r.u64();
  counters_.displacements_damped = r.u64();
  if (r.size() != references_.size())
    throw ckpt::ParseError("sampler slot count mismatch");
  for (std::size_t i = 0; i < references_.size(); ++i) {
    const PseudonymValue reference = r.u64();
    // The reconstructed node redraws the same references from the same
    // stream; a mismatch means seed/params drift, not corruption.
    if (reference != references_[i])
      throw ckpt::ParseError("sampler reference value mismatch");
    values_[i] = r.u64();
    expiries_[i] = r.f64();
    distances_[i] = r.u64();
    placed_at_[i] = r.f64();
    live_[i] = r.u8();
    vacated_[i] = r.u8();
  }
}

}  // namespace ppo::overlay
