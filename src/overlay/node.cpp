#include "overlay/node.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace ppo::overlay {

namespace {

/// Globally unique async-span id for one exchange attempt: node ids
/// and per-node exchange counters are both K-invariant, so the trace
/// pairs identically for every shard count.
std::uint64_t exchange_span_id(NodeId node, std::uint64_t exchange_id) {
  return (static_cast<std::uint64_t>(node) << 32) | (exchange_id & 0xFFFFFFFF);
}

/// S = max(min_slots, target - trust_degree): hubs already have their
/// connectivity and get few or no pseudonym slots (§III-D).
std::size_t slots_for(const OverlayParams& params, std::size_t trust_degree) {
  const std::size_t wanted = params.target_links > trust_degree
                                 ? params.target_links - trust_degree
                                 : 0;
  return std::max(params.min_slots, wanted);
}

}  // namespace

OverlayNode::OverlayNode(NodeId id, const OverlayParams& params,
                         std::vector<NodeId> trusted_neighbors,
                         NodeEnvironment& env, Rng rng)
    : OverlayNode(nullptr, id, params, std::move(trusted_neighbors), env,
                  rng) {}

OverlayNode::OverlayNode(Arena& arena, NodeId id, const OverlayParams& params,
                         std::vector<NodeId> trusted_neighbors,
                         NodeEnvironment& env, Rng rng)
    : OverlayNode(&arena, id, params, std::move(trusted_neighbors), env,
                  rng) {}

OverlayNode::OverlayNode(Arena* arena, NodeId id, const OverlayParams& params,
                         std::vector<NodeId> trusted_neighbors,
                         NodeEnvironment& env, Rng rng)
    : id_(id),
      params_(params),
      trusted_(std::move(trusted_neighbors)),
      env_(env),
      rng_(rng),
      cache_(arena ? PseudonymCache(*arena, params.cache_size)
                   : PseudonymCache(params.cache_size)),
      sampler_(arena
                   ? SlotSampler(*arena, slots_for(params, trusted_.size()),
                                 params.pseudonym_bits, rng_,
                                 params.sampler_min_dwell)
                   : SlotSampler(slots_for(params, trusted_.size()),
                                 params.pseudonym_bits, rng_,
                                 params.sampler_min_dwell)),
      pending_sent_(arena
                        ? FixedBlock<PseudonymRecord>(*arena,
                                                      params.shuffle_length)
                        : FixedBlock<PseudonymRecord>(params.shuffle_length)),
      offline_ewma_(params.pseudonym_lifetime /
                    std::max(params.adaptive_lifetime_factor, 1e-9)) {
  PPO_CHECK_MSG(params.shuffle_length >= 1, "shuffle_length must be >= 1");
}

double OverlayNode::current_lifetime() const {
  if (!params_.adaptive_lifetime) return params_.pseudonym_lifetime;
  const double adapted = params_.adaptive_lifetime_factor * offline_ewma_;
  return std::clamp(adapted, params_.adaptive_min_lifetime,
                    params_.adaptive_max_lifetime);
}

void OverlayNode::ensure_own_pseudonym() {
  const sim::Time now = env_.now();
  if (own_ && own_->valid_at(now)) return;
  own_ = env_.mint_pseudonym(id_, current_lifetime());
  own_history_.push_back(own_->value);
  // Only recent values can still circulate (older ones expired), so
  // the self-check list stays tiny.
  if (own_history_.size() > 4)
    own_history_.erase(own_history_.begin());
  schedule_renewal_alarm();
}

void OverlayNode::schedule_renewal_alarm() {
  PPO_CHECK(own_.has_value());
  const std::uint64_t epoch = ++renewal_epoch_;
  const double delay = std::max(0.0, own_->expiry - env_.now());
  // Tiny slack so the alarm fires strictly after the expiry instant.
  env_.schedule(delay + 1e-9, make_renewal_event(epoch));
  journal_timer(renewal_journal_, env_.now() + delay + 1e-9, epoch);
}

sim::EventFn OverlayNode::make_renewal_event(std::uint64_t epoch) {
  return [this, epoch] {
    if (epoch != renewal_epoch_) return;  // superseded by a newer mint
    if (online_) ensure_own_pseudonym();
    // Offline: handle_online re-mints on rejoin.
  };
}

void OverlayNode::handle_online() {
  const sim::Time now = env_.now();
  const bool rejoining = ever_started_;
  online_ = true;
  if (rejoining && params_.adaptive_lifetime) {
    // Fold the just-finished offline period into the estimate the
    // adaptive lifetime is based on.
    const double duration = now - offline_since_;
    offline_ewma_ = 0.7 * offline_ewma_ + 0.3 * duration;
  }
  ever_started_ = true;
  // Pseudonyms that expired while away vanish; their slots become
  // expiry-vacated so refills count as replacements (§IV-C overhead).
  cache_.purge_expired(now);
  sampler_.purge_expired(now);
  ensure_own_pseudonym();
  if (params_.shuffle_on_rejoin && rejoining) {
    // Kick off an exchange right away (counted like a periodic tick);
    // the periodic schedule continues independently.
    shuffle_tick();
  }
}

void OverlayNode::add_trusted_neighbor(NodeId neighbor) {
  PPO_CHECK_MSG(neighbor != id_, "cannot trust oneself");
  if (std::find(trusted_.begin(), trusted_.end(), neighbor) ==
      trusted_.end())
    trusted_.push_back(neighbor);
}

void OverlayNode::handle_offline() {
  online_ = false;
  offline_since_ = env_.now();
  // All other state is retained (§II-D): links revive on rejoin.
}

std::vector<PseudonymRecord> OverlayNode::compose_shuffle_set() {
  // Own pseudonym plus up to l-1 cache entries (§III-D-1).
  std::vector<PseudonymRecord> set =
      cache_.select_random(params_.shuffle_length - 1, env_.now(), rng_);
  PPO_CHECK(own_.has_value());
  set.push_back(*own_);
  return set;
}

void OverlayNode::shuffle_tick() {
  if (!online_) return;
  ++counters_.online_ticks;
  ensure_own_pseudonym();

  // Uniform choice over n.links = trusted + pseudonym links.
  const std::vector<PseudonymValue> pseudos = pseudonym_links();
  counters_.max_out_degree =
      std::max(counters_.max_out_degree, trusted_.size() + pseudos.size());
  const std::size_t total = trusted_.size() + pseudos.size();
  if (total == 0) return;
  const std::size_t pick = static_cast<std::size_t>(rng_.uniform_u64(total));

  NodeId target;
  if (pick < trusted_.size()) {
    target = trusted_[pick];
  } else {
    const auto owner = env_.resolve(pseudos[pick - trusted_.size()]);
    if (!owner) return;  // expired between sampling and send: skip round
    target = *owner;
  }

  begin_exchange(target, compose_shuffle_set());
}

void OverlayNode::begin_exchange(NodeId target,
                                 std::vector<PseudonymRecord> set) {
  // A still-pending exchange is superseded: its response never
  // arrived (or is still in flight and will be counted stale).
  if (pending_) abort_pending_exchange();
  pending_sent_.assign(set);
  pending_ = PendingExchange{++next_exchange_id_, target, 0,
                             params_.shuffle_timeout, env_.now()};
  PPO_TRACE_SPAN_BEGIN(ppo::obs::TraceCategory::kShuffle, "exchange", id_,
                       exchange_span_id(id_, pending_->id),
                       (ppo::obs::TraceArg{"target",
                                           static_cast<double>(target)}));
  ++counters_.requests_sent;
  env_.send_shuffle_request(id_, target, std::move(set));
  arm_exchange_timer();
}

void OverlayNode::arm_exchange_timer() {
  if (params_.shuffle_timeout <= 0.0) return;
  const std::uint64_t id = pending_->id;
  env_.schedule(pending_->timeout, make_timeout_event(id));
  journal_timer(exchange_journal_, env_.now() + pending_->timeout, id);
}

sim::EventFn OverlayNode::make_timeout_event(std::uint64_t exchange_id) {
  return [this, exchange_id] { handle_exchange_timeout(exchange_id); };
}

void OverlayNode::journal_timer(std::vector<TimerRecord>& journal,
                                double fire_time, std::uint64_t key) {
  // Conservative prune (strictly-before now): entries at exactly `now`
  // may still be pending on the sharded backend; save_state applies
  // the backend's exact predicate.
  const sim::Time now = env_.now();
  std::erase_if(journal,
                [now](const TimerRecord& t) { return t.fire_time < now; });
  journal.push_back(TimerRecord{fire_time, env_.last_scheduled(), key});
}

void OverlayNode::handle_exchange_timeout(std::uint64_t exchange_id) {
  if (!pending_ || pending_->id != exchange_id)
    return;  // exchange completed or superseded: stale timer
  ++counters_.request_timeouts;
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kShuffle, "timeout", id_,
                  (ppo::obs::TraceArg{"target",
                                      static_cast<double>(pending_->target)}));
  if (!online_ || pending_->retries_used >= params_.shuffle_max_retries) {
    abort_pending_exchange();
    return;
  }
  ++pending_->retries_used;
  pending_->timeout *= params_.shuffle_retry_backoff;
  ++counters_.request_retries;
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kShuffle, "retry", id_,
                  (ppo::obs::TraceArg{
                      "attempt", static_cast<double>(pending_->retries_used)}));
  ++counters_.requests_sent;
  env_.send_shuffle_request(
      id_, pending_->target,
      std::vector<PseudonymRecord>(pending_sent_.items().begin(),
                                   pending_sent_.items().end()));
  arm_exchange_timer();
}

void OverlayNode::abort_pending_exchange() {
  ++counters_.exchanges_aborted;
  PPO_TRACE_EVENT(ppo::obs::TraceCategory::kShuffle, "abort", id_);
  PPO_TRACE_SPAN_END(ppo::obs::TraceCategory::kShuffle, "exchange", id_,
                     exchange_span_id(id_, pending_->id));
  pending_.reset();
}

double OverlayNode::max_accepted_lifetime() const {
  if (params_.max_accepted_lifetime > 0.0)
    return params_.max_accepted_lifetime;
  // Honest mints carry at most `lifetime` of remaining validity the
  // instant they are minted, strictly less by the time they arrive.
  return params_.adaptive_lifetime ? params_.adaptive_max_lifetime
                                   : params_.pseudonym_lifetime;
}

bool OverlayNode::admit_request(NodeId from, sim::Time now) {
  RateBucket& bucket = request_rate_[from];
  if (now - bucket.window_start >= params_.peer_rate_window) {
    bucket.window_start = now;
    bucket.accepted = 0;
  }
  if (bucket.accepted >= params_.peer_rate_limit) return false;
  ++bucket.accepted;
  return true;
}

void OverlayNode::handle_shuffle_request(
    NodeId from, const std::vector<PseudonymRecord>& received) {
  if (!online_) return;  // defensive: transport already gates this
  if (params_.peer_rate_limit > 0 && !admit_request(from, env_.now())) {
    // Over the per-peer budget: drop the request whole — no response
    // (the sender's timeout/backoff absorbs it) and no merge, so a
    // flood neither pollutes this node nor amplifies through it.
    ++counters_.requests_rate_limited;
    PPO_TRACE_EVENT(ppo::obs::TraceCategory::kAdversary, "rate_limited", id_,
                    (ppo::obs::TraceArg{"peer", static_cast<double>(from)}));
    return;
  }
  ensure_own_pseudonym();
  std::vector<PseudonymRecord> response = compose_shuffle_set();
  ++counters_.responses_sent;
  env_.send_shuffle_response(id_, from, response);
  merge_received(received, response);
}

void OverlayNode::handle_shuffle_response(
    const std::vector<PseudonymRecord>& received) {
  if (!online_) return;
  if (!pending_) {
    // Late (the exchange timed out or was superseded) or duplicated
    // (already merged). The records are still valid gossip, but they
    // must not be paired with another exchange's sent set: merge them
    // additively, as if nothing had been offered in return.
    ++counters_.stale_responses;
    PPO_TRACE_EVENT(ppo::obs::TraceCategory::kShuffle, "stale_response", id_);
    merge_received(received, {});
    return;
  }
  ++counters_.shuffles_completed;
  PPO_TRACE_SPAN_END(ppo::obs::TraceCategory::kShuffle, "exchange", id_,
                     exchange_span_id(id_, pending_->id));
  // Live telemetry seam: request→response round-trip in sim time.
  // Read-only on node state and gated on the installed registry, so
  // runs with telemetry off pay one relaxed load and nothing else.
  if (auto* live = obs::live_metrics())
    live->observe("overlay_exchange_latency_seconds",
                  env_.now() - pending_->started);
  // Clear the pending slot before merging (it must be free for the
  // next tick regardless); the sent set stays intact in its per-node
  // block — merge_received only touches cache/sampler state, never
  // the block.
  pending_.reset();
  merge_received(received, pending_sent_.items());
}

void OverlayNode::merge_received(const std::vector<PseudonymRecord>& received,
                                 std::span<const PseudonymRecord> sent) {
  const sim::Time now = env_.now();

  // Expiry/format validation defense (§III-E): an honest record's
  // value fits the pseudonym width and its remaining lifetime never
  // exceeds what the service would have granted at mint time. Records
  // failing either test are forged — they touch neither the cache nor
  // the sampler.
  const std::vector<PseudonymRecord>* records = &received;
  std::vector<PseudonymRecord> accepted;
  if (params_.validate_received) {
    const double limit = max_accepted_lifetime() + 1e-9;
    accepted.reserve(received.size());
    for (const PseudonymRecord& record : received) {
      const bool format_ok =
          params_.pseudonym_bits >= 64 ||
          (record.value >> params_.pseudonym_bits) == 0;
      if (!format_ok || record.expiry - now > limit) {
        ++counters_.forged_rejected;
        continue;
      }
      accepted.push_back(record);
    }
    if (accepted.size() != received.size())
      PPO_TRACE_COUNTER(ppo::obs::TraceCategory::kAdversary, "forged_rejected",
                        id_, received.size() - accepted.size());
    records = &accepted;
  }

  const PseudonymValue own_value = own_ ? own_->value : 0;
  cache_.merge(*records, own_value, sent, now, rng_);
  // Every received pseudonym is offered to the sampler, cached or not
  // (§III-D-2) — except ones addressing this very node (current or a
  // still-circulating previous pseudonym of ours).
  for (const PseudonymRecord& record : *records) {
    if (!record.valid_at(now)) continue;
    if (std::find(own_history_.begin(), own_history_.end(), record.value) !=
        own_history_.end())
      continue;
    if (params_.naive_sampling)
      sampler_.offer_naive(record, now, rng_);
    else
      sampler_.offer(record, now);
    if (params_.population_estimation) note_seen(record, now);
  }
}

void OverlayNode::note_seen(const PseudonymRecord& record, sim::Time now) {
  if (std::uint32_t* pos = seen_index_.find(record.value)) {
    seen_pseudonyms_[*pos].expiry =
        std::max(seen_pseudonyms_[*pos].expiry, record.expiry);
    return;
  }
  // Opportunistic compaction keeps the table near the live-pseudonym
  // population size.
  if (seen_pseudonyms_.size() > 64 &&
      seen_pseudonyms_.size() % 64 == 0) {
    for (std::size_t i = 0; i < seen_pseudonyms_.size();) {
      if (!seen_pseudonyms_[i].valid_at(now)) {
        seen_index_.erase(seen_pseudonyms_[i].value);
        seen_pseudonyms_[i] = seen_pseudonyms_.back();
        if (i + 1 != seen_pseudonyms_.size())
          *seen_index_.find(seen_pseudonyms_[i].value) =
              static_cast<std::uint32_t>(i);
        seen_pseudonyms_.pop_back();
      } else {
        ++i;
      }
    }
  }
  seen_index_.insert(record.value,
                     static_cast<std::uint32_t>(seen_pseudonyms_.size()));
  seen_pseudonyms_.push_back(record);
}

std::size_t OverlayNode::estimated_population() const {
  const sim::Time now = env_.now();
  std::size_t live = 0;
  for (const auto& record : seen_pseudonyms_) live += record.valid_at(now);
  // The node's own pseudonym never passes through merge_received.
  live += (own_ && own_->valid_at(now));
  return live;
}

std::vector<PseudonymValue> OverlayNode::pseudonym_links() const {
  return sampler_.live_values(env_.now());
}

std::size_t OverlayNode::out_degree() const {
  return trusted_.size() + pseudonym_links().size();
}

void OverlayNode::inject_cache_record(const PseudonymRecord& record) {
  cache_.merge({record}, own_ ? own_->value : 0, {}, env_.now(), rng_);
}

std::optional<PseudonymRecord> OverlayNode::own_pseudonym() const {
  if (own_ && own_->valid_at(env_.now())) return own_;
  return std::nullopt;
}

namespace {

void write_timer_journal(ckpt::Writer& w,
                         const std::vector<OverlayNode::TimerRecord>& journal,
                         sim::Time now, bool inclusive_fired) {
  std::vector<const OverlayNode::TimerRecord*> live;
  for (const auto& t : journal) {
    const bool fired = inclusive_fired ? t.fire_time <= now : t.fire_time < now;
    if (!fired) live.push_back(&t);
  }
  w.size(live.size());
  for (const auto* t : live) {
    w.f64(t->fire_time);
    w.u32(t->ticket.origin);
    w.u64(t->ticket.seq);
    w.u64(t->key);
  }
}

void read_timer_journal(ckpt::Reader& r,
                        std::vector<OverlayNode::TimerRecord>& journal) {
  journal.clear();
  const std::size_t n = r.size();
  journal.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    OverlayNode::TimerRecord t;
    t.fire_time = r.f64();
    t.ticket.origin = r.u32();
    t.ticket.seq = r.u64();
    t.key = r.u64();
    journal.push_back(t);
  }
}

}  // namespace

void OverlayNode::save_state(ckpt::Writer& w, sim::Time now,
                             bool inclusive_fired) const {
  w.tag(0x4E4F4445u);  // 'NODE'
  w.u32(id_);
  w.size(trusted_.size());
  for (const NodeId v : trusted_) w.u32(v);
  w.rng(rng_);
  cache_.save_state(w);
  sampler_.save_state(w);
  w.b(own_.has_value());
  if (own_) {
    w.u64(own_->value);
    w.f64(own_->expiry);
  }
  w.u64_vec(own_history_);
  w.b(online_);
  w.b(ever_started_);
  w.u64(renewal_epoch_);
  w.b(pending_.has_value());
  if (pending_) {
    w.u64(pending_->id);
    w.u32(pending_->target);
    w.u64(pending_->retries_used);
    w.f64(pending_->timeout);
    w.f64(pending_->started);
  }
  w.size(pending_sent_.size());
  for (const auto& record : pending_sent_.items()) {
    w.u64(record.value);
    w.f64(record.expiry);
  }
  w.u64(next_exchange_id_);
  w.f64(offline_since_);
  w.f64(offline_ewma_);
  w.size(seen_pseudonyms_.size());
  for (const auto& record : seen_pseudonyms_) {
    w.u64(record.value);
    w.f64(record.expiry);
  }
  {
    // unordered_map: serialize sorted so identical states write
    // identical bytes.
    std::vector<std::pair<NodeId, RateBucket>> sorted(request_rate_.begin(),
                                                      request_rate_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.size(sorted.size());
    for (const auto& [peer, bucket] : sorted) {
      w.u32(peer);
      w.f64(bucket.window_start);
      w.u32(bucket.accepted);
    }
  }
  w.u64(counters_.requests_sent);
  w.u64(counters_.responses_sent);
  w.u64(counters_.shuffles_completed);
  w.u64(counters_.online_ticks);
  w.u64(counters_.max_out_degree);
  w.u64(counters_.request_timeouts);
  w.u64(counters_.request_retries);
  w.u64(counters_.exchanges_aborted);
  w.u64(counters_.stale_responses);
  w.u64(counters_.forged_rejected);
  w.u64(counters_.requests_rate_limited);
  write_timer_journal(w, renewal_journal_, now, inclusive_fired);
  write_timer_journal(w, exchange_journal_, now, inclusive_fired);
}

void OverlayNode::load_state(ckpt::Reader& r) {
  r.tag(0x4E4F4445u);
  if (r.u32() != id_) throw ckpt::ParseError("node id mismatch");
  if (r.size() != trusted_.size())
    throw ckpt::ParseError("trusted-degree mismatch");
  for (const NodeId v : trusted_)
    if (r.u32() != v) throw ckpt::ParseError("trusted-neighbor mismatch");
  rng_ = r.rng();
  cache_.load_state(r);
  sampler_.load_state(r);
  own_.reset();
  if (r.b()) {
    PseudonymRecord record;
    record.value = r.u64();
    record.expiry = r.f64();
    own_ = record;
  }
  own_history_ = r.u64_vec();
  online_ = r.b();
  ever_started_ = r.b();
  renewal_epoch_ = r.u64();
  pending_.reset();
  if (r.b()) {
    PendingExchange p;
    p.id = r.u64();
    p.target = r.u32();
    p.retries_used = r.u64();
    p.timeout = r.f64();
    p.started = r.f64();
    pending_ = p;
  }
  {
    const std::size_t n = r.size();
    if (n > pending_sent_.capacity())
      throw ckpt::ParseError("pending-sent set exceeds capacity");
    pending_sent_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      PseudonymRecord record;
      record.value = r.u64();
      record.expiry = r.f64();
      pending_sent_.push_back(record);
    }
  }
  next_exchange_id_ = r.u64();
  offline_since_ = r.f64();
  offline_ewma_ = r.f64();
  {
    const std::size_t n = r.size();
    seen_pseudonyms_.clear();
    seen_index_.clear();
    seen_pseudonyms_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      PseudonymRecord record;
      record.value = r.u64();
      record.expiry = r.f64();
      seen_index_.insert(record.value,
                         static_cast<std::uint32_t>(seen_pseudonyms_.size()));
      seen_pseudonyms_.push_back(record);
    }
  }
  {
    const std::size_t n = r.size();
    request_rate_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId peer = r.u32();
      RateBucket bucket;
      bucket.window_start = r.f64();
      bucket.accepted = r.u32();
      request_rate_[peer] = bucket;
    }
  }
  counters_.requests_sent = r.u64();
  counters_.responses_sent = r.u64();
  counters_.shuffles_completed = r.u64();
  counters_.online_ticks = r.u64();
  counters_.max_out_degree = r.u64();
  counters_.request_timeouts = r.u64();
  counters_.request_retries = r.u64();
  counters_.exchanges_aborted = r.u64();
  counters_.stale_responses = r.u64();
  counters_.forged_rejected = r.u64();
  counters_.requests_rate_limited = r.u64();
  read_timer_journal(r, renewal_journal_);
  read_timer_journal(r, exchange_journal_);
}

}  // namespace ppo::overlay
