// Protocol parameters with the paper's Table I defaults.
#pragma once

#include <cstddef>

namespace ppo::overlay {

struct OverlayParams {
  /// Pseudonym-cache capacity per node (Table I: 400).
  std::size_t cache_size = 400;

  /// Max pseudonyms exchanged per shuffle message, own pseudonym
  /// included (Table I: l = 40).
  std::size_t shuffle_length = 40;

  /// Target number of overlay links per node (Table I: 50). The slot
  /// count S of node n is max(min_slots, target_links - trust_degree)
  /// so hubs get few or no extra links (§III-D).
  std::size_t target_links = 50;

  /// Floor for S; the paper allows hubs S = 0.
  std::size_t min_slots = 0;

  /// Pseudonym lifetime in shuffling periods (Table I: 3 x Toff = 90).
  double pseudonym_lifetime = 90.0;

  /// Shuffle period — the global time unit (always 1 in the paper).
  double shuffle_period = 1.0;

  /// Pseudonym width p in bits.
  unsigned pseudonym_bits = 64;

  /// Initiate a shuffle immediately when (re)joining instead of
  /// waiting for the next periodic tick — speeds up re-integration of
  /// nodes whose pseudonym links expired while away.
  bool shuffle_on_rejoin = true;

  /// Fault-tolerance extension: an initiated shuffle that has not
  /// seen its response after this many periods times out (the pending
  /// exchange is retried or aborted, never left dangling). 0 disables
  /// the timer; the pending exchange then lives until the next
  /// initiated shuffle replaces it. Should exceed the worst-case
  /// round-trip of the transport in use.
  double shuffle_timeout = 0.0;

  /// Bounded retransmissions of a timed-out shuffle request (same
  /// exchange, same pseudonym set). 0 = abort on first timeout.
  std::size_t shuffle_max_retries = 0;

  /// Each retransmission multiplies the timeout by this factor
  /// (exponential backoff).
  double shuffle_retry_backoff = 2.0;

  /// Extension (§III-C future work): nodes adapt their pseudonym
  /// lifetime to their own observed offline durations instead of the
  /// global constant.
  bool adaptive_lifetime = false;
  /// Lifetime = adaptive_lifetime_factor x EWMA(own offline time),
  /// clamped to [adaptive_min_lifetime, adaptive_max_lifetime].
  double adaptive_lifetime_factor = 3.0;
  double adaptive_min_lifetime = 10.0;
  double adaptive_max_lifetime = 1000.0;

  /// Extension (§III-E-4): track every live pseudonym seen in gossip
  /// so the node can estimate the participating population ("if the
  /// number of nodes is small, all nodes will eventually see all
  /// pseudonyms before they expire"). Off by default — it adds a hash
  /// insert per received record on the hot path.
  bool population_estimation = false;

  /// Ablation: disable the Brahms-style reference-value sampling and
  /// instead fill empty slots with uniformly random received
  /// pseudonyms (never displacing live ones). Used by
  /// bench/ablation_sampling.
  bool naive_sampling = false;

  // --- Byzantine defenses (§III-E). All off by default: baseline
  // trajectories must stay bit-identical when no defense is armed. ---

  /// Reject received records whose value does not fit pseudonym_bits
  /// or whose remaining lifetime exceeds the longest any honest mint
  /// can carry — forged/replayed records with stretched expiries never
  /// enter the cache or the sampler (counted as forged_rejected).
  bool validate_received = false;

  /// Overrides the derived max-accepted remaining lifetime (> 0).
  /// Default 0 derives it: adaptive_max_lifetime when adaptive
  /// lifetimes are on, else pseudonym_lifetime.
  double max_accepted_lifetime = 0.0;

  /// Max shuffle requests accepted from one peer per rate window
  /// (0 = off). Excess requests are dropped without a response, so the
  /// sender's own timeout/backoff machinery absorbs the rejection.
  /// Honest initiators spread requests across ~target_links peers and
  /// stay far below any sane limit; flooding attackers concentrate.
  std::size_t peer_rate_limit = 0;

  /// Rate-limit window length in periods.
  double peer_rate_window = 10.0;

  /// Slot-churn damping: a live sampler slot entry may only be
  /// displaced by a numerically closer record after it has held the
  /// slot this long (0 = off). Expiry-driven refills are unaffected,
  /// so honest link replacement keeps working; eclipse attackers must
  /// wait out the dwell between capture steps.
  double sampler_min_dwell = 0.0;
};

}  // namespace ppo::overlay
