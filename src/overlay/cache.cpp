#include "overlay/cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ppo::overlay {

PseudonymCache::PseudonymCache(std::size_t capacity)
    : entries_(capacity), index_(capacity) {
  PPO_CHECK_MSG(capacity >= 1, "cache capacity must be positive");
}

PseudonymCache::PseudonymCache(Arena& arena, std::size_t capacity)
    : entries_(arena, capacity), index_(capacity) {
  PPO_CHECK_MSG(capacity >= 1, "cache capacity must be positive");
}

bool PseudonymCache::contains(PseudonymValue value) const {
  return index_.find(value) != nullptr;
}

void PseudonymCache::insert_entry(const PseudonymRecord& record) {
  index_.insert(record.value, static_cast<std::uint32_t>(entries_.size()));
  entries_.push_back(record);
}

void PseudonymCache::erase_at(std::size_t index) {
  index_.erase(entries_[index].value);
  if (index + 1 != entries_.size()) {
    entries_[index] = entries_.back();
    *index_.find(entries_[index].value) = static_cast<std::uint32_t>(index);
  }
  entries_.pop_back();
}

void PseudonymCache::maybe_purge(sim::Time now) {
  // Purging is O(capacity); once per half shuffle period is plenty —
  // receivers independently discard expired records, so a stale entry
  // slipping into one shuffle set is harmless.
  if (now - last_purge_ < 0.5) return;
  last_purge_ = now;
  purge_expired(now);
}

std::vector<PseudonymRecord> PseudonymCache::select_random(std::size_t k,
                                                           sim::Time now,
                                                           Rng& rng) {
  maybe_purge(now);
  std::vector<PseudonymRecord> out;
  if (entries_.empty() || k == 0) return out;
  if (k >= entries_.size()) {
    out.assign(entries_.items().begin(), entries_.items().end());
    rng.shuffle(out);
    return out;
  }
  // Partial Fisher-Yates over a reused index array (hot path: runs
  // twice per shuffle exchange).
  scratch_.resize(entries_.size());
  for (std::size_t i = 0; i < scratch_.size(); ++i) scratch_[i] = i;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_u64(scratch_.size() - i));
    std::swap(scratch_[i], scratch_[j]);
    out.push_back(entries_[scratch_[i]]);
  }
  return out;
}

void PseudonymCache::merge(const std::vector<PseudonymRecord>& received,
                           PseudonymValue own,
                           std::span<const PseudonymRecord> sent,
                           sim::Time now, Rng& rng) {
  maybe_purge(now);

  // Victim preference: the entries we just shipped to the partner
  // (CYCLON keeps the network's total information constant this way).
  std::size_t next_victim = sent.size();

  for (const auto& record : received) {
    if (record.value == own) continue;       // own pseudonym never cached
    if (!record.valid_at(now)) continue;     // already expired in flight
    if (std::uint32_t* pos = index_.find(record.value)) {
      // Same value implies same pseudonym; keep the later expiry in
      // case of clock-skewed duplicates.
      PseudonymRecord& existing = entries_[*pos];
      existing.expiry = std::max(existing.expiry, record.expiry);
      continue;
    }
    if (entries_.size() < entries_.capacity()) {
      insert_entry(record);
      continue;
    }
    // Full: evict a sent entry first, then a random victim.
    bool evicted = false;
    while (next_victim > 0 && !evicted) {
      const std::uint32_t* victim = index_.find(sent[--next_victim].value);
      if (victim == nullptr) continue;  // already gone
      erase_at(*victim);
      evicted = true;
    }
    if (!evicted)
      erase_at(static_cast<std::size_t>(rng.uniform_u64(entries_.size())));
    insert_entry(record);
  }
}

void PseudonymCache::purge_expired(sim::Time now) {
  for (std::size_t i = 0; i < entries_.size();) {
    if (!entries_[i].valid_at(now))
      erase_at(i);
    else
      ++i;
  }
}

void PseudonymCache::save_state(ckpt::Writer& w) const {
  w.tag(0x43414348u);  // 'CACH'
  w.f64(last_purge_);
  w.size(entries_.size());
  for (const auto& record : entries_.items()) {
    w.u64(record.value);
    w.f64(record.expiry);
  }
}

void PseudonymCache::load_state(ckpt::Reader& r) {
  r.tag(0x43414348u);
  last_purge_ = r.f64();
  const std::size_t n = r.size();
  if (n > entries_.capacity())
    throw ckpt::ParseError("cache entries exceed capacity");
  entries_.clear();
  index_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    PseudonymRecord record;
    record.value = r.u64();
    record.expiry = r.f64();
    index_.insert(record.value, static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(record);
  }
}

std::vector<PseudonymRecord> PseudonymCache::snapshot(sim::Time now) const {
  std::vector<PseudonymRecord> out;
  for (const auto& record : entries_.items())
    if (record.valid_at(now)) out.push_back(record);
  return out;
}

}  // namespace ppo::overlay
