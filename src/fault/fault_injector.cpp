#include "fault/fault_injector.hpp"

#include <utility>

#include "common/check.hpp"
#include "privacylink/mix_network.hpp"

namespace ppo::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, ServiceFaults faults,
                             Hooks hooks)
    : sim_(sim), faults_(std::move(faults)), hooks_(std::move(hooks)) {
  for (const Window& w : faults_.pseudonym_blackouts)
    PPO_CHECK_MSG(w.end >= w.start, "inverted blackout window");
  if (!faults_.pseudonym_blackouts.empty())
    PPO_CHECK_MSG(
        static_cast<bool>(hooks_.set_pseudonym_service_available),
        "pseudonym blackouts need the availability hook");
  for (const ServiceFaults::RelayCrash& c : faults_.relay_crashes) {
    PPO_CHECK_MSG(c.revive_at < 0.0 || c.revive_at >= c.crash_at,
                  "relay revival before its crash");
    PPO_CHECK_MSG(hooks_.mix != nullptr,
                  "relay crashes need a mix network");
    PPO_CHECK_MSG(c.relay < hooks_.mix->num_relays(),
                  "crashed relay id out of range");
  }
}

void FaultInjector::arm() {
  PPO_CHECK_MSG(!armed_, "fault injector already armed");
  armed_ = true;

  for (const Window& w : faults_.pseudonym_blackouts) {
    sim_.schedule_at(w.start, [this] {
      // Windows may overlap: the service is down while ANY is active.
      if (active_blackouts_++ == 0)
        hooks_.set_pseudonym_service_available(false);
      ++counters_.blackouts_started;
    });
    sim_.schedule_at(w.end, [this] {
      PPO_CHECK(active_blackouts_ > 0);
      if (--active_blackouts_ == 0)
        hooks_.set_pseudonym_service_available(true);
      ++counters_.blackouts_ended;
    });
  }

  for (const ServiceFaults::RelayCrash& c : faults_.relay_crashes) {
    sim_.schedule_at(c.crash_at, [this, r = c.relay] {
      hooks_.mix->fail_relay(r);
      ++counters_.relays_crashed;
    });
    if (c.revive_at >= 0.0) {
      sim_.schedule_at(c.revive_at, [this, r = c.relay] {
        hooks_.mix->revive_relay(r);
        ++counters_.relays_revived;
      });
    }
  }
}

}  // namespace ppo::fault
