#include "fault/fault_injector.hpp"

#include <utility>

#include "common/check.hpp"
#include "privacylink/mix_network.hpp"

namespace ppo::fault {

FaultInjector::FaultInjector(sim::SimulatorBackend& sim, ServiceFaults faults,
                             Hooks hooks,
                             std::vector<NodeCrashEvent> node_crashes)
    : sim_(sim),
      faults_(std::move(faults)),
      hooks_(std::move(hooks)),
      node_crashes_(std::move(node_crashes)) {
  for (const Window& w : faults_.pseudonym_blackouts)
    PPO_CHECK_MSG(w.end >= w.start, "inverted blackout window");
  if (!faults_.pseudonym_blackouts.empty())
    PPO_CHECK_MSG(
        static_cast<bool>(hooks_.set_pseudonym_service_available),
        "pseudonym blackouts need the availability hook");
  for (const ServiceFaults::RelayCrash& c : faults_.relay_crashes) {
    PPO_CHECK_MSG(c.revive_at < 0.0 || c.revive_at >= c.crash_at,
                  "relay revival before its crash");
    PPO_CHECK_MSG(hooks_.mix != nullptr,
                  "relay crashes need a mix network");
    PPO_CHECK_MSG(c.relay < hooks_.mix->num_relays(),
                  "crashed relay id out of range");
  }
  if (!node_crashes_.empty()) {
    PPO_CHECK_MSG(static_cast<bool>(hooks_.fail_node),
                  "node crashes need the fail_node hook");
    for (const NodeCrashEvent& c : node_crashes_)
      if (c.revive_at >= 0.0)
        PPO_CHECK_MSG(static_cast<bool>(hooks_.revive_node),
                      "node revivals need the revive_node hook");
  }
}

void FaultInjector::arm() {
  PPO_CHECK_MSG(!armed_, "fault injector already armed");
  armed_ = true;

  for (const Window& w : faults_.pseudonym_blackouts) {
    sim_.schedule_at(w.start, [this] {
      // Windows may overlap: the service is down while ANY is active.
      if (active_blackouts_++ == 0)
        hooks_.set_pseudonym_service_available(false);
      ++counters_.blackouts_started;
    });
    sim_.schedule_at(w.end, [this] {
      PPO_CHECK(active_blackouts_ > 0);
      if (--active_blackouts_ == 0)
        hooks_.set_pseudonym_service_available(true);
      ++counters_.blackouts_ended;
    });
  }

  for (const ServiceFaults::RelayCrash& c : faults_.relay_crashes) {
    sim_.schedule_at(c.crash_at, [this, r = c.relay] {
      hooks_.mix->fail_relay(r);
      ++counters_.relays_crashed;
    });
    if (c.revive_at >= 0.0) {
      sim_.schedule_at(c.revive_at, [this, r = c.relay] {
        hooks_.mix->revive_relay(r);
        ++counters_.relays_revived;
      });
    }
  }

  // Each crash is scheduled for its victim, so on the sharded backend
  // it executes on the victim's shard and only touches that node's
  // churn state. The counters are bumped at arm time (the timeline is
  // fixed data), keeping the event bodies free of shared writes.
  for (const NodeCrashEvent& c : node_crashes_) {
    sim_.schedule_at_for(c.node, c.at, [this, v = c.node] {
      hooks_.fail_node(v);
    });
    ++counters_.nodes_crashed;
    if (c.revive_at >= 0.0) {
      sim_.schedule_at_for(c.node, c.revive_at, [this, v = c.node] {
        hooks_.revive_node(v);
      });
      ++counters_.nodes_revived;
    }
  }
}

}  // namespace ppo::fault
