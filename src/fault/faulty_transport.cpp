#include "fault/faulty_transport.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace ppo::fault {

FaultyTransport::FaultyTransport(sim::Simulator& sim,
                                 privacylink::LinkTransport& inner,
                                 FaultPlan plan)
    : sim_(sim),
      inner_(inner),
      plan_(std::move(plan)),
      rng_(plan_.seed ^ 0xFA017ULL) {
  plan_.validate();
  partition_masks_.reserve(plan_.partitions.size());
  for (const Partition& p : plan_.partitions) {
    const graph::NodeId max_id =
        *std::max_element(p.group.begin(), p.group.end());
    std::vector<char> mask(static_cast<std::size_t>(max_id) + 1, 0);
    for (const graph::NodeId v : p.group) mask[v] = 1;
    partition_masks_.push_back(std::move(mask));
  }
}

bool FaultyTransport::in_partition_group(std::size_t partition,
                                         graph::NodeId v) const {
  const std::vector<char>& mask = partition_masks_[partition];
  return v < mask.size() && mask[v] != 0;
}

FaultyTransport::Fate FaultyTransport::decide_fate(graph::NodeId from,
                                                   graph::NodeId to) {
  Fate fate;
  const double now = sim_.now();
  if (!plan_.link_outages.empty() && plan_.outage_at(now)) {
    fate.drop = true;
    fate.drop_counter = &counters_.outage_drops;
    return fate;
  }
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    if (!plan_.partitions[i].window.contains(now)) continue;
    if (in_partition_group(i, from) != in_partition_group(i, to)) {
      fate.drop = true;
      fate.drop_counter = &counters_.partition_drops;
      return fate;
    }
  }
  // Every draw below is guarded so an inert plan never touches the
  // RNG (part of the zero-fault no-op guarantee).
  if (plan_.drop_probability > 0.0 && rng_.bernoulli(plan_.drop_probability)) {
    fate.drop = true;
    fate.drop_counter = &counters_.injected_drops;
    return fate;
  }
  if (plan_.jitter_max > 0.0)
    fate.extra_delay += rng_.uniform_double(plan_.jitter_min, plan_.jitter_max);
  if (plan_.reorder_probability > 0.0 &&
      rng_.bernoulli(plan_.reorder_probability))
    fate.extra_delay +=
        rng_.uniform_double(plan_.reorder_min_delay, plan_.reorder_max_delay);
  return fate;
}

bool FaultyTransport::send_copy(graph::NodeId from, graph::NodeId to,
                                const sim::EventFn& on_deliver,
                                const Fate& fate) {
  bool accepted;
  if (fate.drop) {
    // The message leaves the sender and dies in the network: the inner
    // transport still does the sender gating and its own accounting,
    // but nothing ever reaches the destination handler.
    accepted = inner_.send(from, to, [] {});
    if (accepted && fate.drop_counter != nullptr) ++*fate.drop_counter;
  } else if (fate.extra_delay > 0.0) {
    accepted = inner_.send(
        from, to, [this, delay = fate.extra_delay, fn = on_deliver] {
          sim_.schedule_after(delay, [this, fn] {
            ++delivered_;
            fn();
          });
        });
    if (accepted) ++counters_.delayed;
  } else {
    accepted = inner_.send(from, to, [this, fn = on_deliver] {
      ++delivered_;
      fn();
    });
  }
  if (accepted) ++sent_;
  return accepted;
}

bool FaultyTransport::send(graph::NodeId from, graph::NodeId to,
                           sim::EventFn on_deliver) {
  const Fate fate = decide_fate(from, to);
  const bool accepted = send_copy(from, to, on_deliver, fate);
  if (accepted && plan_.duplicate_probability > 0.0 &&
      rng_.bernoulli(plan_.duplicate_probability)) {
    ++counters_.duplicates;
    // The copy traverses the network independently: own loss and
    // delay draws, and it counts as one more message on the wire.
    send_copy(from, to, on_deliver, decide_fate(from, to));
  }
  return accepted;
}

}  // namespace ppo::fault
