#include "fault/faulty_transport.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace ppo::fault {

FaultyTransport::FaultyTransport(sim::SimulatorBackend& sim,
                                 privacylink::LinkTransport& inner,
                                 FaultPlan plan, std::size_t num_nodes)
    : sim_(sim),
      inner_(inner),
      plan_(std::move(plan)),
      rng_(plan_.seed ^ 0xFA017ULL) {
  plan_.validate();
  if (plan_.per_link_streams) {
    PPO_CHECK_MSG(num_nodes > 0,
                  "per_link_streams needs the node count to key senders");
    link_counts_.resize(num_nodes);
  }
  for (const LinkDropOverride& o : plan_.link_drop_overrides)
    drop_overrides_[link_key(o.from, o.to)] = o.drop_prob;
  if (plan_.gilbert_elliott.enabled()) {
    // Materialize the whole burst chain up front from its own derived
    // stream: fate draws never interleave with the chain's, and state
    // queries are read-only (K-invariant on the sharded backend).
    const GilbertElliottProfile& ge = plan_.gilbert_elliott;
    const auto steps =
        static_cast<std::size_t>(ge.horizon / ge.step) + 1;
    Rng chain_rng(derive_seed(plan_.seed, 0x6E11ULL));
    ge_bad_.reserve(steps);
    bool bad = false;
    for (std::size_t i = 0; i < steps; ++i) {
      ge_bad_.push_back(bad ? 1 : 0);
      const double flip = bad ? ge.p_bad_to_good : ge.p_good_to_bad;
      if (flip > 0.0 && chain_rng.bernoulli(flip)) bad = !bad;
    }
  }
  partition_masks_.reserve(plan_.partitions.size());
  for (const Partition& p : plan_.partitions) {
    const graph::NodeId max_id =
        *std::max_element(p.group.begin(), p.group.end());
    std::vector<char> mask(static_cast<std::size_t>(max_id) + 1, 0);
    for (const graph::NodeId v : p.group) mask[v] = 1;
    partition_masks_.push_back(std::move(mask));
  }
}

FaultyTransport::Counters FaultyTransport::counters() const {
  Counters out;
  out.injected_drops = counters_.injected_drops.load(std::memory_order_relaxed);
  out.outage_drops = counters_.outage_drops.load(std::memory_order_relaxed);
  out.partition_drops =
      counters_.partition_drops.load(std::memory_order_relaxed);
  out.duplicates = counters_.duplicates.load(std::memory_order_relaxed);
  out.delayed = counters_.delayed.load(std::memory_order_relaxed);
  return out;
}

bool FaultyTransport::in_partition_group(std::size_t partition,
                                         graph::NodeId v) const {
  const std::vector<char>& mask = partition_masks_[partition];
  return v < mask.size() && mask[v] != 0;
}

double FaultyTransport::drop_probability_on(graph::NodeId from,
                                            graph::NodeId to) const {
  const auto it = drop_overrides_.find(link_key(from, to));
  return it != drop_overrides_.end() ? it->second : plan_.drop_probability;
}

double FaultyTransport::profile_extra_drop(double t) const {
  double extra = 0.0;
  if (!ge_bad_.empty()) {
    const GilbertElliottProfile& ge = plan_.gilbert_elliott;
    auto index = static_cast<std::size_t>(std::max(t, 0.0) / ge.step);
    index = std::min(index, ge_bad_.size() - 1);
    extra += ge_bad_[index] != 0 ? ge.bad_drop : ge.good_drop;
  }
  if (plan_.diurnal.enabled()) {
    const DiurnalProfile& d = plan_.diurnal;
    constexpr double kTwoPi = 6.283185307179586;
    extra += d.amplitude * 0.5 *
             (1.0 + std::sin(kTwoPi * (t + d.phase) / d.period));
  }
  return extra;
}

FaultyTransport::Fate FaultyTransport::decide_fate(graph::NodeId from,
                                                   graph::NodeId to) {
  Fate fate;
  const double now = sim_.now();
  if (!plan_.link_outages.empty() && plan_.outage_at(now)) {
    fate.drop = true;
    fate.drop_counter = &counters_.outage_drops;
    return fate;
  }
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    if (!plan_.partitions[i].window.contains(now)) continue;
    if (in_partition_group(i, from) != in_partition_group(i, to)) {
      fate.drop = true;
      fate.drop_counter = &counters_.partition_drops;
      return fate;
    }
  }
  // Pick the decision stream: the legacy shared RNG, or a stream
  // derived from this link's own message index so the pattern is
  // independent of how other links' traffic interleaves.
  Rng link_rng(0);
  Rng* rng = &rng_;
  if (plan_.per_link_streams) {
    const std::uint64_t index = link_counts_[from][to]++;
    link_rng = Rng(derive_seed(plan_.seed ^ 0xFA017ULL, from, to, index));
    rng = &link_rng;
  }
  // Every draw below is guarded so an inert plan never touches the
  // RNG (part of the zero-fault no-op guarantee).
  const double drop_prob = std::min(
      1.0, drop_probability_on(from, to) + profile_extra_drop(now));
  if (drop_prob > 0.0 && rng->bernoulli(drop_prob)) {
    fate.drop = true;
    fate.drop_counter = &counters_.injected_drops;
    return fate;
  }
  if (plan_.jitter_max > 0.0)
    fate.extra_delay +=
        rng->uniform_double(plan_.jitter_min, plan_.jitter_max);
  if (plan_.reorder_probability > 0.0 &&
      rng->bernoulli(plan_.reorder_probability))
    fate.extra_delay +=
        rng->uniform_double(plan_.reorder_min_delay, plan_.reorder_max_delay);
  return fate;
}

bool FaultyTransport::send_copy(graph::NodeId from, graph::NodeId to,
                                const sim::EventFn& on_deliver,
                                const Fate& fate) {
  PPO_CHECK_MSG(journal_ == nullptr || fate.extra_delay <= 0.0,
                "checkpointing does not cover two-stage (delayed) "
                "deliveries; disable jitter/reorder or checkpointing");
  bool accepted;
  if (fate.drop) {
    // The message leaves the sender and dies in the network: the inner
    // transport still does the sender gating and its own accounting,
    // but nothing ever reaches the destination handler.
    accepted = inner_.send(from, to, [] {});
    if (accepted && fate.drop_counter != nullptr) {
      fate.drop_counter->fetch_add(1, std::memory_order_relaxed);
      PPO_TRACE_EVENT(ppo::obs::TraceCategory::kTransport, "drop", from,
                      (ppo::obs::TraceArg{"to", static_cast<double>(to)}));
    }
  } else if (fate.extra_delay > 0.0) {
    accepted = inner_.send(
        from, to, [this, delay = fate.extra_delay, fn = on_deliver] {
          sim_.schedule_after(delay, [this, fn] {
            delivered_.fetch_add(1, std::memory_order_relaxed);
            fn();
          });
        });
    if (accepted) counters_.delayed.fetch_add(1, std::memory_order_relaxed);
  } else {
    accepted = inner_.send(from, to, [this, fn = on_deliver] {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      fn();
    });
  }
  if (accepted) {
    sent_.fetch_add(1, std::memory_order_relaxed);
    // Annotate the delivery the inner transport just committed: a
    // dropped copy restores as a payload-free delivery, a delivered
    // copy needs this wrapper's counter re-wrapped around it.
    if (journal_ != nullptr) journal_->mark_last(fate.drop, !fate.drop);
  }
  return accepted;
}

void FaultyTransport::save_state(ckpt::Writer& w) const {
  w.tag(0x464C5459u);  // 'FLTY'
  w.rng(rng_);
  w.size(link_counts_.size());
  for (const auto& per_sender : link_counts_) {
    // unordered_map iteration order is not deterministic: serialize
    // sorted by destination so identical states write identical bytes.
    std::vector<std::pair<graph::NodeId, std::uint64_t>> sorted(
        per_sender.begin(), per_sender.end());
    std::sort(sorted.begin(), sorted.end());
    w.size(sorted.size());
    for (const auto& [to, count] : sorted) {
      w.u32(to);
      w.u64(count);
    }
  }
  w.u64(sent_.load(std::memory_order_relaxed));
  w.u64(delivered_.load(std::memory_order_relaxed));
  w.u64(counters_.injected_drops.load(std::memory_order_relaxed));
  w.u64(counters_.outage_drops.load(std::memory_order_relaxed));
  w.u64(counters_.partition_drops.load(std::memory_order_relaxed));
  w.u64(counters_.duplicates.load(std::memory_order_relaxed));
  w.u64(counters_.delayed.load(std::memory_order_relaxed));
}

void FaultyTransport::load_state(ckpt::Reader& r) {
  r.tag(0x464C5459u);
  rng_ = r.rng();
  if (r.size() != link_counts_.size())
    throw ckpt::ParseError("fault stream mode mismatch");
  for (auto& per_sender : link_counts_) {
    per_sender.clear();
    const std::size_t n = r.size();
    for (std::size_t i = 0; i < n; ++i) {
      const graph::NodeId to = r.u32();
      per_sender[to] = r.u64();
    }
  }
  sent_.store(r.u64(), std::memory_order_relaxed);
  delivered_.store(r.u64(), std::memory_order_relaxed);
  counters_.injected_drops.store(r.u64(), std::memory_order_relaxed);
  counters_.outage_drops.store(r.u64(), std::memory_order_relaxed);
  counters_.partition_drops.store(r.u64(), std::memory_order_relaxed);
  counters_.duplicates.store(r.u64(), std::memory_order_relaxed);
  counters_.delayed.store(r.u64(), std::memory_order_relaxed);
}

bool FaultyTransport::send(graph::NodeId from, graph::NodeId to,
                           sim::EventFn on_deliver) {
  const Fate fate = decide_fate(from, to);
  const bool accepted = send_copy(from, to, on_deliver, fate);
  if (accepted && plan_.duplicate_probability > 0.0) {
    // The duplication decision uses the same stream discipline as the
    // fates: shared draw order in legacy mode, a fresh per-link index
    // in per-link mode.
    bool duplicate;
    if (plan_.per_link_streams) {
      const std::uint64_t index = link_counts_[from][to]++;
      Rng r(derive_seed(plan_.seed ^ 0xFA017ULL, from, to, index));
      duplicate = r.bernoulli(plan_.duplicate_probability);
    } else {
      duplicate = rng_.bernoulli(plan_.duplicate_probability);
    }
    if (duplicate) {
      counters_.duplicates.fetch_add(1, std::memory_order_relaxed);
      // The copy traverses the network independently: own loss and
      // delay draws, and it counts as one more message on the wire.
      send_copy(from, to, on_deliver, decide_fate(from, to));
    }
  }
  return accepted;
}

}  // namespace ppo::fault
