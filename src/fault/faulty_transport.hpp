// FaultyTransport: a deterministic fault-injecting decorator for any
// LinkTransport. The inner transport keeps its own semantics (sender
// gating, latency, destination-online delivery check); this wrapper
// adds the adversities a FaultPlan describes on top: random message
// loss (plan-wide or per-link overridden), delay jitter, duplication,
// held-back reordering, link blackout windows and network partitions.
//
// Guarantees:
//  - a plan with no faults configured (FaultPlan::enabled() == false)
//    makes the wrapper a true no-op: it forwards every send verbatim,
//    never touches its RNG, and the simulation trajectory is
//    bit-identical to running on the bare inner transport;
//  - fault decisions are reproducible: with the legacy shared stream
//    they are drawn from a private RNG seeded only by FaultPlan::seed
//    in send order; with plan.per_link_streams each decision comes
//    from a stream derived per (seed, from, to, link message index),
//    so a link's fault pattern depends only on its own traffic — the
//    form the sharded backend requires for K-invariance.
#pragma once

#include <atomic>
#include <unordered_map>
#include <vector>

#include "ckpt/io.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "privacylink/delivery_journal.hpp"
#include "privacylink/link_transport.hpp"
#include "sim/backend.hpp"

namespace ppo::fault {

class FaultyTransport final : public privacylink::LinkTransport {
 public:
  /// Fault-specific accounting, on top of the sent/delivered counters
  /// of the LinkTransport interface.
  struct Counters {
    std::uint64_t injected_drops = 0;   // random per-message loss
    std::uint64_t outage_drops = 0;     // lost to a blackout window
    std::uint64_t partition_drops = 0;  // lost crossing a partition
    std::uint64_t duplicates = 0;       // extra copies spawned
    std::uint64_t delayed = 0;          // messages given extra delay

    std::uint64_t total_faulted() const {
      return injected_drops + outage_drops + partition_drops + duplicates +
             delayed;
    }
  };

  /// `inner` must outlive the wrapper. The plan is validated here.
  /// `num_nodes` bounds sender ids and is required (> 0) when
  /// plan.per_link_streams is set.
  FaultyTransport(sim::SimulatorBackend& sim,
                  privacylink::LinkTransport& inner, FaultPlan plan,
                  std::size_t num_nodes = 0);

  /// Sends through the inner transport, applying the plan's faults.
  /// Returns false exactly when the inner transport refuses the send
  /// (offline sender); fault-dropped messages still count as sent.
  bool send(graph::NodeId from, graph::NodeId to,
            sim::EventFn on_deliver) override;

  std::uint64_t messages_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_delivered() const override {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the fault counters (consistent only outside windows).
  Counters counters() const;
  const FaultPlan& plan() const { return plan_; }

  /// Effective loss probability on the directed link from -> to
  /// (override if present, else the plan-wide probability).
  double drop_probability_on(graph::NodeId from, graph::NodeId to) const;

  /// --- checkpoint/restore -------------------------------------------
  /// While set, each copy's fate annotation lands in the journal next
  /// to the inner transport's committed delivery. Checkpointing only
  /// supports plans whose deliveries are single-stage (no jitter or
  /// reorder extra delay): plan_checkpointable() gates that.
  void set_journal(privacylink::DeliveryJournal* journal) {
    journal_ = journal;
  }
  bool plan_checkpointable() const {
    return plan_.jitter_max <= 0.0 && plan_.reorder_probability <= 0.0;
  }

  /// Wraps a restored payload with this transport's delivery counter
  /// (the stage the wrapper adds on top of the inner delivery).
  sim::EventFn wrap_restored(sim::EventFn payload) {
    return [this, fn = std::move(payload)] {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (fn) fn();
    };
  }

  /// Fate RNG streams, per-link message indices and all counters.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  /// Extra loss the time-varying profiles (Gilbert-Elliott burst
  /// state + diurnal sinusoid) contribute at time t. Read-only: the
  /// GE chain is pre-materialized at construction, so this is safe to
  /// call from parallel shard workers. 0 with both profiles off.
  double profile_extra_drop(double t) const;

 private:
  using AtomicCount = std::atomic<std::uint64_t>;

  /// How one message copy should fare, decided at send time.
  struct Fate {
    bool drop = false;
    AtomicCount* drop_counter = nullptr;
    double extra_delay = 0.0;
  };

  static std::uint64_t link_key(graph::NodeId from, graph::NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  Fate decide_fate(graph::NodeId from, graph::NodeId to);
  bool send_copy(graph::NodeId from, graph::NodeId to,
                 const sim::EventFn& on_deliver, const Fate& fate);
  bool in_partition_group(std::size_t partition, graph::NodeId v) const;

  sim::SimulatorBackend& sim_;
  privacylink::LinkTransport& inner_;
  FaultPlan plan_;
  Rng rng_;  // shared fate stream (legacy mode)
  /// Per-sender message counters for per-link stream derivation,
  /// indexed by sender — only the sender's shard ever touches its
  /// slot, so no lock is needed.
  std::vector<std::unordered_map<graph::NodeId, std::uint64_t>> link_counts_;
  /// Directional drop overrides keyed by link_key(); later plan
  /// entries win.
  std::unordered_map<std::uint64_t, double> drop_overrides_;
  /// Gilbert-Elliott state per chain step (1 = bad), pre-materialized
  /// from the plan seed; empty when the profile is off.
  std::vector<char> ge_bad_;
  /// Per-partition membership masks, indexed like plan_.partitions.
  std::vector<std::vector<char>> partition_masks_;
  privacylink::DeliveryJournal* journal_ = nullptr;
  AtomicCount sent_{0};
  AtomicCount delivered_{0};
  struct {
    AtomicCount injected_drops{0};
    AtomicCount outage_drops{0};
    AtomicCount partition_drops{0};
    AtomicCount duplicates{0};
    AtomicCount delayed{0};
  } counters_;
};

}  // namespace ppo::fault
