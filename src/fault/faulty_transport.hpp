// FaultyTransport: a deterministic fault-injecting decorator for any
// LinkTransport. The inner transport keeps its own semantics (sender
// gating, latency, destination-online delivery check); this wrapper
// adds the adversities a FaultPlan describes on top: random message
// loss, delay jitter, duplication, held-back reordering, link blackout
// windows and network partitions.
//
// Guarantees:
//  - a plan with no faults configured (FaultPlan::enabled() == false)
//    makes the wrapper a true no-op: it forwards every send verbatim,
//    never touches its RNG, and the simulation trajectory is
//    bit-identical to running on the bare inner transport;
//  - fault decisions are drawn from a private RNG seeded only by
//    FaultPlan::seed, in send order, so a faulty run is reproducible
//    across repeats and independent of pool scheduling.
#pragma once

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "privacylink/link_transport.hpp"

namespace ppo::fault {

class FaultyTransport final : public privacylink::LinkTransport {
 public:
  /// Fault-specific accounting, on top of the sent/delivered counters
  /// of the LinkTransport interface.
  struct Counters {
    std::uint64_t injected_drops = 0;   // random per-message loss
    std::uint64_t outage_drops = 0;     // lost to a blackout window
    std::uint64_t partition_drops = 0;  // lost crossing a partition
    std::uint64_t duplicates = 0;       // extra copies spawned
    std::uint64_t delayed = 0;          // messages given extra delay

    std::uint64_t total_faulted() const {
      return injected_drops + outage_drops + partition_drops + duplicates +
             delayed;
    }
  };

  /// `inner` must outlive the wrapper. The plan is validated here.
  FaultyTransport(sim::Simulator& sim, privacylink::LinkTransport& inner,
                  FaultPlan plan);

  /// Sends through the inner transport, applying the plan's faults.
  /// Returns false exactly when the inner transport refuses the send
  /// (offline sender); fault-dropped messages still count as sent.
  bool send(graph::NodeId from, graph::NodeId to,
            sim::EventFn on_deliver) override;

  std::uint64_t messages_sent() const override { return sent_; }
  std::uint64_t messages_delivered() const override { return delivered_; }

  const Counters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  /// How one message copy should fare, decided at send time.
  struct Fate {
    bool drop = false;
    std::uint64_t* drop_counter = nullptr;
    double extra_delay = 0.0;
  };

  Fate decide_fate(graph::NodeId from, graph::NodeId to);
  bool send_copy(graph::NodeId from, graph::NodeId to,
                 const sim::EventFn& on_deliver, const Fate& fate);
  bool in_partition_group(std::size_t partition, graph::NodeId v) const;

  sim::Simulator& sim_;
  privacylink::LinkTransport& inner_;
  FaultPlan plan_;
  Rng rng_;
  /// Per-partition membership masks, indexed like plan_.partitions.
  std::vector<std::vector<char>> partition_masks_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  Counters counters_;
};

}  // namespace ppo::fault
