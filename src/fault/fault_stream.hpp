// Materialization of a FaultPlan's correlated node-crash bursts into
// concrete (node, crash time, revival time) events. Victim selection
// is a pure function of the plan seed and the node count, so the same
// plan crashes the same nodes on every backend and shard count — the
// property that lets crash faults and availability churn share one
// seeded plan (FaultInjector drives both through the churn driver).
#pragma once

#include <vector>

#include "fault/fault_plan.hpp"
#include "graph/graph.hpp"

namespace ppo::fault {

struct NodeCrashEvent {
  graph::NodeId node = 0;
  double at = 0.0;
  double revive_at = -1.0;  // < 0: never
};

/// Expands plan.node_crashes into per-node events. Victims of each
/// burst are sampled without replacement from [0, num_nodes), from an
/// RNG derived off (plan.seed, burst index); bursts are independent,
/// so reordering one spec never changes another's victims. Returned
/// events are sorted by (at, node).
std::vector<NodeCrashEvent> materialize_node_crashes(const FaultPlan& plan,
                                                     std::size_t num_nodes);

}  // namespace ppo::fault
