// FaultInjector: schedules *service-level* outages into the simulator
// — pseudonym-service blackouts (resolution requests fail while the
// window is active), mix-relay crash/revive cycles, and correlated
// node-crash bursts materialized from a FaultPlan (fault_stream.hpp).
// It drives the target services through narrow hooks so the fault
// layer stays decoupled from the overlay orchestration (the
// OverlayService wires itself in; see overlay/service.hpp). Node
// crashes route through the churn driver's fail/revive hooks, so
// crash faults and availability churn share one seeded plan.
//
// Everything is data + scheduled events: with a fixed plan the
// injected fault timeline is identical on every run. Node-crash
// events are scheduled *for their victim*, so they also run on the
// sharded backend; blackout and relay events have no single actor and
// are serial-backend only.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_stream.hpp"
#include "sim/backend.hpp"

namespace ppo::privacylink {
class MixNetwork;
}

namespace ppo::fault {

/// Scheduled service-level adversities.
struct ServiceFaults {
  /// While a window is active, pseudonym resolution fails (lookups
  /// return "unknown"); minting is unaffected — a node's pseudonym is
  /// generated locally and registered when the service recovers.
  std::vector<Window> pseudonym_blackouts;

  /// One relay crash (and optional revival) of the mix network.
  struct RelayCrash {
    std::uint32_t relay = 0;   // privacylink::RelayId
    double crash_at = 0.0;
    /// Revival instant; < 0 means the relay never comes back.
    double revive_at = -1.0;
  };
  std::vector<RelayCrash> relay_crashes;

  bool empty() const {
    return pseudonym_blackouts.empty() && relay_crashes.empty();
  }
};

class FaultInjector {
 public:
  struct Hooks {
    /// Toggles pseudonym-service availability (required when
    /// `pseudonym_blackouts` is non-empty).
    std::function<void(bool)> set_pseudonym_service_available;
    /// Target of the relay crash/revive schedule (required when
    /// `relay_crashes` is non-empty).
    privacylink::MixNetwork* mix = nullptr;
    /// Node-crash targets (required when crash events are given) —
    /// in practice ChurnDriver::fail_permanently / revive.
    std::function<void(graph::NodeId)> fail_node;
    std::function<void(graph::NodeId)> revive_node;
  };

  struct Counters {
    std::uint64_t blackouts_started = 0;
    std::uint64_t blackouts_ended = 0;
    std::uint64_t relays_crashed = 0;
    std::uint64_t relays_revived = 0;
    std::uint64_t nodes_crashed = 0;
    std::uint64_t nodes_revived = 0;
  };

  FaultInjector(sim::SimulatorBackend& sim, ServiceFaults faults,
                Hooks hooks, std::vector<NodeCrashEvent> node_crashes = {});

  /// Schedules every fault event. Call once, before running the
  /// simulation past the earliest fault instant.
  void arm();

  const Counters& counters() const { return counters_; }

  /// True while at least one blackout window is active.
  bool blackout_active() const { return active_blackouts_ > 0; }

 private:
  sim::SimulatorBackend& sim_;
  ServiceFaults faults_;
  Hooks hooks_;
  std::vector<NodeCrashEvent> node_crashes_;
  std::size_t active_blackouts_ = 0;
  bool armed_ = false;
  Counters counters_;
};

}  // namespace ppo::fault
