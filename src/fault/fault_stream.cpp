#include "fault/fault_stream.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ppo::fault {

std::vector<NodeCrashEvent> materialize_node_crashes(const FaultPlan& plan,
                                                     std::size_t num_nodes) {
  std::vector<NodeCrashEvent> events;
  for (std::size_t burst = 0; burst < plan.node_crashes.size(); ++burst) {
    const NodeCrashSpec& spec = plan.node_crashes[burst];
    PPO_CHECK_MSG(spec.count <= num_nodes,
                  "crash burst larger than the population");
    std::vector<graph::NodeId> all(num_nodes);
    for (std::size_t v = 0; v < num_nodes; ++v)
      all[v] = static_cast<graph::NodeId>(v);
    // Tag 0xC0A5 ("crash") keeps this stream disjoint from the
    // transport fate streams derived off the same plan seed.
    Rng rng(derive_seed(plan.seed ^ 0xC0A5ULL, burst));
    std::vector<graph::NodeId> victims = rng.sample(all, spec.count);
    std::sort(victims.begin(), victims.end());
    for (const graph::NodeId v : victims)
      events.push_back(NodeCrashEvent{v, spec.at, spec.revive_at});
  }
  std::sort(events.begin(), events.end(),
            [](const NodeCrashEvent& a, const NodeCrashEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.node < b.node;
            });
  return events;
}

}  // namespace ppo::fault
