// Deterministic fault-injection plans. A FaultPlan is pure data: the
// per-message adversities (loss, delay jitter, duplication, held-back
// reordering) and the scheduled adversities (link blackout windows,
// network partitions) a simulated network should suffer, plus the seed
// the fault stream is derived from. The same plan + seed always yields
// the same fault pattern, so faulty experiments stay bit-reproducible
// and sweepable on the ppo_runner pool.
//
// Plans are consumed by FaultyTransport (per-message + link-level
// faults) and FaultInjector (service-level outages, see
// fault_injector.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ppo::fault {

/// Half-open time interval [start, end) in shuffling periods.
struct Window {
  double start = 0.0;
  double end = 0.0;

  bool contains(double t) const { return t >= start && t < end; }
};

/// A temporary network split: while the window is active, messages
/// with exactly one endpoint inside `group` are dropped. Traffic
/// within a side flows normally, so the overlay heals itself once the
/// split ends.
struct Partition {
  Window window;
  std::vector<graph::NodeId> group;
};

/// Directional per-link loss override: messages from `from` to `to`
/// use `drop_prob` instead of the plan-wide drop_probability. The
/// reverse direction is unaffected, so asymmetric links (one-way
/// packet loss, as real access networks exhibit) are expressible.
struct LinkDropOverride {
  graph::NodeId from = 0;
  graph::NodeId to = 0;
  double drop_prob = 0.0;
};

/// Correlated node-crash burst: at time `at`, `count` nodes (sampled
/// deterministically from the plan seed) fail permanently; if
/// `revive_at` >= 0 they all come back then. Consumed by
/// FaultInjector, which drives them through the churn driver so crash
/// faults and availability churn share one seeded plan.
struct NodeCrashSpec {
  double at = 0.0;
  std::size_t count = 0;
  double revive_at = -1.0;  // < 0: never
};

/// Bursty loss via a two-state Gilbert-Elliott chain: the network is
/// in a "good" or "bad" state, switching with the given per-step
/// probabilities, and the active state's drop probability is ADDED to
/// the plan's per-link loss (clamped to [0,1]). The chain is stepped
/// on a fixed grid and pre-materialized from the plan seed at
/// wrap time, so queries are read-only — the profile is K-invariant
/// on the sharded backend by construction.
struct GilbertElliottProfile {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.0;
  double good_drop = 0.0;  // extra loss while in the good state
  double bad_drop = 0.0;   // extra loss while in the bad state
  double step = 1.0;       // chain step, in shuffling periods
  /// Time the materialized chain must cover (>= the run length);
  /// queries past it stay in the last state.
  double horizon = 0.0;

  bool enabled() const {
    return horizon > 0.0 && (good_drop > 0.0 || bad_drop > 0.0);
  }

  /// Long-run fraction of steps spent in the bad state.
  double stationary_bad() const {
    const double denom = p_good_to_bad + p_bad_to_good;
    return denom > 0.0 ? p_good_to_bad / denom : 0.0;
  }
};

/// Diurnal loss: a sinusoidal extra drop probability
/// amplitude * 0.5 * (1 + sin(2*pi*(t + phase) / period)), added to
/// the per-link loss (clamped to [0,1]). Pure function of time —
/// trivially K-invariant.
struct DiurnalProfile {
  double amplitude = 0.0;  // peak extra loss, in [0,1]
  double period = 0.0;     // full day length, in shuffling periods
  double phase = 0.0;      // shifts where the peak falls

  bool enabled() const { return amplitude > 0.0 && period > 0.0; }
};

struct FaultPlan {
  /// Each message is lost with this probability (drawn independently
  /// per message, including duplicates and retransmissions).
  double drop_probability = 0.0;

  /// Each message spawns one extra copy with this probability. The
  /// copy traverses the network independently (own loss/delay draws).
  double duplicate_probability = 0.0;

  /// Extra in-network delay added to every delivery, drawn uniformly
  /// from [jitter_min, jitter_max]. Zero width at zero = no jitter.
  double jitter_min = 0.0;
  double jitter_max = 0.0;

  /// With this probability a message is additionally held back for a
  /// delay in [reorder_min_delay, reorder_max_delay] before delivery,
  /// letting later messages overtake it.
  double reorder_probability = 0.0;
  double reorder_min_delay = 0.0;
  double reorder_max_delay = 0.0;

  /// Total link blackouts: every message sent while a window is
  /// active is lost.
  std::vector<Window> link_outages;

  /// Scheduled network splits (see Partition).
  std::vector<Partition> partitions;

  /// Directional per-link loss overrides (see LinkDropOverride). A
  /// later entry for the same (from, to) pair wins.
  std::vector<LinkDropOverride> link_drop_overrides;

  /// Time-varying loss profiles. Both compose additively with the
  /// per-link loss (including overrides) and with each other; the sum
  /// is clamped to [0,1] per message.
  GilbertElliottProfile gilbert_elliott;
  DiurnalProfile diurnal;

  /// Correlated node-crash bursts (see NodeCrashSpec). Not a
  /// transport fault: FaultInjector materializes the victims and
  /// drives them through the churn driver.
  std::vector<NodeCrashSpec> node_crashes;

  /// Seed of the fault decision stream. Deliberately independent of
  /// the simulation's own RNG tree: wrapping a transport never
  /// perturbs the protocol's random draws.
  std::uint64_t seed = 0x5EED;

  /// Derive each link's fate stream per (seed, from, to, message
  /// index) instead of from one shared sequential stream. Fault
  /// patterns then depend only on a link's own traffic — required for
  /// K-invariance on the sharded backend, opt-in elsewhere. The
  /// zero-fault guarantee below holds in both modes.
  bool per_link_streams = false;

  /// True when any transport-level fault can ever fire. An all-zero
  /// plan is inert and FaultyTransport guarantees bit-identical
  /// behaviour to the bare inner transport. Node crashes are not
  /// transport faults and do not count (see has_node_crashes()).
  bool enabled() const;

  bool has_node_crashes() const { return !node_crashes.empty(); }

  /// Throws CheckError on nonsense (negative probabilities/delays,
  /// inverted windows).
  void validate() const;

  /// Is any link blackout active at time t?
  bool outage_at(double t) const;
};

}  // namespace ppo::fault
