#include "fault/fault_plan.hpp"

#include "common/check.hpp"

namespace ppo::fault {

bool FaultPlan::enabled() const {
  return drop_probability > 0.0 || duplicate_probability > 0.0 ||
         jitter_max > 0.0 || reorder_probability > 0.0 ||
         !link_outages.empty() || !partitions.empty() ||
         !link_drop_overrides.empty() || gilbert_elliott.enabled() ||
         diurnal.enabled();
}

void FaultPlan::validate() const {
  PPO_CHECK_MSG(drop_probability >= 0.0 && drop_probability <= 1.0,
                "drop_probability must be in [0,1]");
  PPO_CHECK_MSG(duplicate_probability >= 0.0 && duplicate_probability <= 1.0,
                "duplicate_probability must be in [0,1]");
  PPO_CHECK_MSG(reorder_probability >= 0.0 && reorder_probability <= 1.0,
                "reorder_probability must be in [0,1]");
  PPO_CHECK_MSG(jitter_min >= 0.0 && jitter_max >= jitter_min,
                "invalid jitter window");
  PPO_CHECK_MSG(
      reorder_min_delay >= 0.0 && reorder_max_delay >= reorder_min_delay,
      "invalid reorder delay window");
  for (const Window& w : link_outages)
    PPO_CHECK_MSG(w.end >= w.start, "inverted outage window");
  for (const Partition& p : partitions) {
    PPO_CHECK_MSG(p.window.end >= p.window.start,
                  "inverted partition window");
    PPO_CHECK_MSG(!p.group.empty(), "partition group must be non-empty");
  }
  for (const LinkDropOverride& o : link_drop_overrides) {
    PPO_CHECK_MSG(o.drop_prob >= 0.0 && o.drop_prob <= 1.0,
                  "link drop override must be in [0,1]");
    PPO_CHECK_MSG(o.from != o.to, "link override needs two distinct ends");
  }
  for (const NodeCrashSpec& c : node_crashes) {
    PPO_CHECK_MSG(c.at >= 0.0, "crash time must be non-negative");
    PPO_CHECK_MSG(c.revive_at < 0.0 || c.revive_at > c.at,
                  "revival must come after the crash");
  }
  const GilbertElliottProfile& ge = gilbert_elliott;
  PPO_CHECK_MSG(ge.p_good_to_bad >= 0.0 && ge.p_good_to_bad <= 1.0,
                "p_good_to_bad must be in [0,1]");
  PPO_CHECK_MSG(ge.p_bad_to_good >= 0.0 && ge.p_bad_to_good <= 1.0,
                "p_bad_to_good must be in [0,1]");
  PPO_CHECK_MSG(ge.good_drop >= 0.0 && ge.good_drop <= 1.0,
                "good_drop must be in [0,1]");
  PPO_CHECK_MSG(ge.bad_drop >= 0.0 && ge.bad_drop <= 1.0,
                "bad_drop must be in [0,1]");
  PPO_CHECK_MSG(ge.horizon >= 0.0, "GE horizon must be non-negative");
  if (ge.enabled())
    PPO_CHECK_MSG(ge.step > 0.0, "GE step must be positive");
  PPO_CHECK_MSG(diurnal.amplitude >= 0.0 && diurnal.amplitude <= 1.0,
                "diurnal amplitude must be in [0,1]");
  if (diurnal.enabled())
    PPO_CHECK_MSG(diurnal.period > 0.0, "diurnal period must be positive");
}

bool FaultPlan::outage_at(double t) const {
  for (const Window& w : link_outages)
    if (w.contains(t)) return true;
  return false;
}

}  // namespace ppo::fault
