// Wall-clock telemetry sampling: a ticker thread snapshots the live
// MetricsRegistry every interval, keeps the most recent samples in a
// bounded ring buffer (served at /samples) and streams every sample as
// one JSONL line to an optional time-series file (`--telemetry-out`).
//
// Strictly wall-clock-side: the ticker reads registry snapshots only —
// it never touches the simulation, so sampling on or off cannot change
// a trajectory.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "runner/json.hpp"

namespace ppo::telemetry {

struct TelemetrySample {
  double wall_seconds = 0.0;  // since the ticker started
  obs::MetricsRegistry::Snapshot metrics;
};

/// One compact JSON object per sample: wall clock, counters, gauges
/// and streaming-quantile summaries (p50/p95/p99/p99.9). dump() of the
/// result is a single line — the JSONL time-series row format.
runner::Json to_json(const TelemetrySample& sample);

/// Fixed-capacity ring of the most recent samples, oldest first.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity);

  void push(TelemetrySample sample);

  /// Oldest-to-newest copy of the resident samples.
  std::vector<TelemetrySample> recent() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t total_pushed() const;

  /// The resident samples as JSONL (one line per sample), the
  /// /samples endpoint payload.
  std::string recent_jsonl() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TelemetrySample> slots_;
  std::size_t next_ = 0;        // ring write position once full
  std::uint64_t pushed_ = 0;
};

/// The sampling thread. Construction starts it; stop() (or the
/// destructor) takes one final sample and joins, so even runs shorter
/// than the interval export at least one row.
class TelemetryTicker {
 public:
  struct Options {
    double interval_seconds = 1.0;
    std::size_t ring_capacity = 600;
    /// Append-mode JSONL sink; empty = ring buffer only.
    std::string jsonl_path;
  };

  TelemetryTicker(const obs::MetricsRegistry& registry, Options options);
  ~TelemetryTicker();

  TelemetryTicker(const TelemetryTicker&) = delete;
  TelemetryTicker& operator=(const TelemetryTicker&) = delete;

  void stop();

  const SampleRing& ring() const { return ring_; }
  std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void take_sample();

  const obs::MetricsRegistry& registry_;
  Options options_;
  SampleRing ring_;
  std::ofstream jsonl_;
  std::mutex sample_mutex_;  // serializes ticker and final stop sample
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> samples_{0};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  // guarded by stop_mutex_
  std::thread thread_;
};

}  // namespace ppo::telemetry
