// Dependency-free blocking HTTP/1.1 server for the telemetry plane:
// one accept thread, sequential request handling, GET-only. Built for
// Prometheus scrapes of /metrics — a scrape is one short-lived
// connection every few seconds, so a single-threaded loop with a
// per-connection receive timeout is the simplest thing that cannot
// wedge. Runs entirely wall-clock-side: handlers read registry
// snapshots and never touch simulation state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace ppo::telemetry {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response. Called on the
/// server thread; must be thread-safe against whatever else mutates
/// the data it reads (registry snapshots are).
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port — read the
  /// result from port()) and starts the accept thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  HttpServer(std::uint16_t port, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves ephemeral requests).
  std::uint16_t port() const { return port_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Shuts the listener down and joins the accept thread. Idempotent;
  /// the destructor calls it.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace ppo::telemetry
