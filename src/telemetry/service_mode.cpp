#include "telemetry/service_mode.hpp"

#include <chrono>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "churn/churn_model.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "experiments/adversary_study.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"
#include "metrics/streaming_connectivity.hpp"
#include "overlay/service.hpp"
#include "overlay/sharded_service.hpp"
#include "sim/simulator.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/sampler.hpp"

namespace ppo::telemetry {

namespace {

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Set by the SIGINT/SIGTERM handler; the driver polls it at slice
/// boundaries (async-signal-safe: the handler only stores a flag).
volatile std::sig_atomic_t g_stop_requested = 0;

void on_stop_signal(int) { g_stop_requested = 1; }

/// Installs the graceful-drain handlers for the scope of one run and
/// restores whatever was there before.
struct SignalGuard {
  explicit SignalGuard(bool arm) : armed_(arm) {
    if (!armed_) return;
    g_stop_requested = 0;
    old_int_ = std::signal(SIGINT, on_stop_signal);
    old_term_ = std::signal(SIGTERM, on_stop_signal);
  }
  ~SignalGuard() {
    if (!armed_) return;
    std::signal(SIGINT, old_int_);
    std::signal(SIGTERM, old_term_);
  }

 private:
  bool armed_ = false;
  void (*old_int_)(int) = SIG_DFL;
  void (*old_term_)(int) = SIG_DFL;
};

/// Workload identity for Header::config_hash: every option that
/// shapes the trajectory prefix (graph, churn, protocol parameters,
/// fault/adversary/observer arms, and the run_until slicing grid —
/// the sharded backend's lockstep windows re-anchor per driver call,
/// so a different slice is a different trajectory). Horizon, wall
/// limit and the telemetry plane are deliberately excluded: a resumed
/// run may run longer or with telemetry toggled. The shard count is
/// also excluded — sharded checkpoints restore at any K.
std::uint64_t config_hash(const ServiceModeOptions& opt) {
  ckpt::Writer w;
  w.u64(opt.nodes);
  w.f64(opt.alpha);
  w.u64(opt.seed);
  w.f64(opt.slice);
  w.f64(opt.loss);
  w.f64(opt.adversary_fraction);
  w.str(opt.adversary_attack);
  w.b(opt.defended);
  w.f64(opt.observer_coverage);
  w.u64(opt.cache_size);
  w.u64(opt.shuffle_length);
  w.u64(opt.target_links);
  w.f64(opt.pseudonym_lifetime);
  return ckpt::fnv1a(w.buffer());
}

/// A validated resume candidate: structurally sound file whose header
/// matched this run's backend, graph and config.
struct ResumeCandidate {
  std::string path;
  ckpt::Header header;
  std::string payload;
};

/// Uninstalls the live registry even on the exception paths.
struct LiveMetricsGuard {
  explicit LiveMetricsGuard(obs::MetricsRegistry* registry) {
    if (registry != nullptr) obs::install_live_metrics(registry);
  }
  ~LiveMetricsGuard() { obs::uninstall_live_metrics(); }
};

/// What the previous slice boundary saw, so counter updates can be
/// expressed as monotone deltas.
struct SliceBaseline {
  std::uint64_t events = 0;
  metrics::ProtocolHealth health;
  std::vector<sim::ShardedSimulator::ShardStats> stats;
  double wall_seconds = 0.0;
};

/// Slice-boundary registry refresh: monotone counters advance by
/// their delta since the last boundary, and the operator-facing
/// gauges (rates, ratios, overlay state) are recomputed. Runs on the
/// driver thread between run_until slices — every input is a plain
/// read of simulation state, so refreshing cannot perturb the
/// trajectory.
void refresh_registry(obs::MetricsRegistry& registry, SliceBaseline& prev,
                      std::uint64_t events,
                      const metrics::ProtocolHealth& health,
                      const std::vector<sim::ShardedSimulator::ShardStats>&
                          stats,
                      double wall_seconds, double sim_time, std::size_t cores,
                      std::size_t online, std::size_t overlay_edges) {
  registry.add_counter("sim_events", events - prev.events);
  const auto bump = [&](const char* name, std::uint64_t now,
                        std::uint64_t before) {
    registry.add_counter(name, now - before);
  };
  bump("protocol_requests_sent", health.requests_sent,
       prev.health.requests_sent);
  bump("protocol_responses_sent", health.responses_sent,
       prev.health.responses_sent);
  bump("protocol_exchanges_completed", health.exchanges_completed,
       prev.health.exchanges_completed);
  bump("protocol_request_timeouts", health.request_timeouts,
       prev.health.request_timeouts);
  bump("protocol_request_retries", health.request_retries,
       prev.health.request_retries);
  bump("transport_messages_sent", health.messages_sent,
       prev.health.messages_sent);
  bump("transport_messages_delivered", health.messages_delivered,
       prev.health.messages_delivered);
  bump("transport_messages_dropped", health.messages_dropped,
       prev.health.messages_dropped);
  bump("defense_forged_rejected", health.forged_rejected,
       prev.health.forged_rejected);
  bump("defense_requests_rate_limited", health.requests_rate_limited,
       prev.health.requests_rate_limited);

  registry.set_gauge("service_sim_time_periods", sim_time);
  registry.set_gauge("service_wall_seconds", wall_seconds);
  registry.set_gauge("service_online_nodes", static_cast<double>(online));
  registry.set_gauge("service_overlay_edges",
                     static_cast<double>(overlay_edges));
  registry.set_gauge("protocol_honest_completion_rate",
                     health.honest_completion_rate());

  const double slice_wall = wall_seconds - prev.wall_seconds;
  const double slice_events = static_cast<double>(events - prev.events);
  if (slice_wall > 0.0) {
    registry.set_gauge("service_events_per_second", slice_events / slice_wall);
    registry.set_gauge(
        "service_events_per_second_per_core",
        slice_events / slice_wall / static_cast<double>(cores));
  }
  for (std::size_t s = 0; s < stats.size(); ++s) {
    const obs::MetricDims dims{{"shard", std::to_string(s)}};
    const auto& now_s = stats[s];
    const bool have_prev = s < prev.stats.size();
    const double d_busy =
        now_s.busy_seconds - (have_prev ? prev.stats[s].busy_seconds : 0.0);
    const double d_stall =
        now_s.stall_seconds - (have_prev ? prev.stats[s].stall_seconds : 0.0);
    const double d_events = static_cast<double>(
        now_s.events - (have_prev ? prev.stats[s].events : 0));
    if (d_busy + d_stall > 0.0) {
      registry.set_gauge("shard_busy_ratio", d_busy / (d_busy + d_stall),
                         dims);
      registry.set_gauge("shard_stall_ratio", d_stall / (d_busy + d_stall),
                         dims);
    }
    if (slice_wall > 0.0)
      registry.set_gauge("shard_events_per_second", d_events / slice_wall,
                         dims);
  }

  prev.events = events;
  prev.health = health;
  prev.stats = stats;
  prev.wall_seconds = wall_seconds;
}

}  // namespace

std::uint64_t trajectory_fingerprint(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> edges,
    const metrics::ProtocolHealth& health) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& [u, v] : edges) {
    mix(u);
    mix(v);
  }
  mix(health.requests_sent);
  mix(health.responses_sent);
  mix(health.exchanges_completed);
  mix(health.messages_sent);
  mix(health.messages_delivered);
  return h;
}

ServiceModeReport run_service_mode(const ServiceModeOptions& opt) {
  PPO_CHECK_MSG(opt.horizon > 0.0 || opt.wall_limit_seconds > 0.0,
                "service mode needs a horizon or a wall limit");
  PPO_CHECK_MSG(opt.slice > 0.0, "service mode needs a positive slice");

  // Same workload construction as scale_single_run: a scale-free,
  // clustered trust graph standing in for the sampled social graph,
  // exponential on/off churn calibrated to the target availability.
  Rng graph_rng(opt.seed ^ 0x6EA4);
  const graph::Graph trust =
      graph::holme_kim(opt.nodes, 5, 0.3, graph_rng);
  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(opt.alpha, 30.0);

  overlay::OverlayServiceOptions options;
  options.params.cache_size = opt.cache_size;
  options.params.shuffle_length = opt.shuffle_length;
  options.params.target_links = opt.target_links;
  options.params.pseudonym_lifetime = opt.pseudonym_lifetime;
  if (opt.defended) {
    // The §III-E defense arm, same knobs as the adversary study.
    const experiments::AdversarySpec defaults;
    options.params.validate_received = true;
    options.params.peer_rate_limit = defaults.peer_rate_limit;
    options.params.peer_rate_window = defaults.peer_rate_window;
    options.params.sampler_min_dwell = defaults.sampler_min_dwell;
  }
  if (opt.loss > 0.0) {
    fault::FaultPlan plan;
    plan.drop_probability = opt.loss;
    // Required by the sharded backend (per-link fate streams make the
    // fault draws K-invariant); the serial transport keys a single
    // stream and rejects the flag.
    plan.per_link_streams = opt.shards > 0;
    options.link_faults = plan;
  }
  if (opt.adversary_fraction > 0.0)
    options.adversary = experiments::make_attack_plan(
        opt.adversary_attack, opt.adversary_fraction, opt.seed);
  if (opt.observer_coverage > 0.0) {
    inference::ObserverPlan plan;
    plan.coverage = opt.observer_coverage;
    plan.seed = opt.seed ^ 0x0B5E;
    options.observer = plan;
  }

  ServiceModeReport report;
  obs::MetricsRegistry registry;
  const bool telemetry_on = opt.port >= 0 || !opt.telemetry_out.empty();
  // Install the live registry so the instrumentation seams (shuffle
  // latency, DHT hops, shard windows) stream into it. The seams only
  // read simulation state, so installing cannot change a trajectory —
  // the determinism tests pin that down.
  LiveMetricsGuard live(telemetry_on ? &registry : nullptr);

  // Declared before the server so its storage outlives the handler
  // closure (the server is stopped first on every exit path).
  std::unique_ptr<TelemetryTicker> ticker;
  std::unique_ptr<HttpServer> server;
  if (opt.port >= 0) {
    server = std::make_unique<HttpServer>(
        static_cast<std::uint16_t>(opt.port),
        [&registry, &ticker](const std::string& path) -> HttpResponse {
          if (path == "/metrics")
            return {200, prometheus_content_type(),
                    render_prometheus(registry)};
          if (path == "/samples" && ticker != nullptr)
            return {200, "application/x-ndjson; charset=utf-8",
                    ticker->ring().recent_jsonl()};
          if (path == "/healthz")
            return {200, "text/plain; charset=utf-8", "ok\n"};
          return {404, "text/plain; charset=utf-8", "not found\n"};
        });
    report.port = server->port();
  }
  if (telemetry_on) {
    TelemetryTicker::Options topt;
    topt.interval_seconds = opt.sample_interval_seconds;
    topt.ring_capacity = opt.ring_capacity;
    topt.jsonl_path = opt.telemetry_out;
    ticker = std::make_unique<TelemetryTicker>(registry, topt);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  SignalGuard signals(opt.handle_signals);
  SliceBaseline baseline;
  metrics::StreamingConnectivity connectivity;
  const std::size_t cores = opt.shards == 0 ? 1 : opt.shards;

  // --- checkpoint plane -------------------------------------------------
  const bool ckpt_armed = !opt.checkpoint_dir.empty();
  const ckpt::BackendKind backend = opt.shards == 0
                                        ? ckpt::BackendKind::kSerial
                                        : ckpt::BackendKind::kSharded;
  std::uint64_t graph_fp = 0;
  std::uint64_t cfg_hash = 0;
  if (ckpt_armed) {
    std::error_code ec;
    std::filesystem::create_directories(opt.checkpoint_dir, ec);
    graph_fp = ckpt::fingerprint_graph(trust);
    cfg_hash = config_hash(opt);
  }

  // Resume scan: newest file first, falling back past anything that
  // fails validation (corrupt newest file after a crash mid-write is
  // the expected case — the previous snapshot is still good). Files
  // that fail payload-level restore are rejected the same way, one
  // construction retry per candidate.
  std::vector<ResumeCandidate> candidates;
  if (ckpt_armed && opt.resume) {
    const auto files = ckpt::list_checkpoints(opt.checkpoint_dir);
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      ckpt::LoadResult lr = ckpt::load_file(*it);
      ckpt::Status st = lr.status;
      if (st == ckpt::Status::kOk)
        st = ckpt::check_compat(lr.header, backend, graph_fp, cfg_hash);
      if (st != ckpt::Status::kOk) {
        std::string why = *it + ": " + ckpt::status_name(st);
        if (!lr.message.empty()) why += " — " + lr.message;
        report.rejected_checkpoints.push_back(std::move(why));
        continue;
      }
      candidates.push_back({*it, lr.header, std::move(lr.payload)});
    }
  }

  const auto write_checkpoint = [&](auto& service, double sim_time) {
    ckpt::Writer w;
    service.save_checkpoint(w);
    ckpt::Header h;
    h.backend = backend;
    h.shards_hint = static_cast<std::uint32_t>(opt.shards);
    h.graph_fingerprint = graph_fp;
    h.config_hash = cfg_hash;
    h.seed = opt.seed;
    h.sim_time = sim_time;
    // Indexed by slice number: monotone, collision-free, and a resumed
    // run that re-reaches the same boundary atomically replaces the
    // file it restored from.
    const auto index =
        static_cast<std::uint64_t>(std::llround(sim_time / opt.slice));
    std::string error;
    if (ckpt::save_file(ckpt::checkpoint_path(opt.checkpoint_dir, index), h,
                        w.buffer(), &error))
      ++report.checkpoints_written;
  };

  // Generic over the two backends: slice the run, refresh the
  // registry between slices, stop at the horizon, the wall limit or a
  // drain signal. A resumed run continues the same slicing grid
  // (checkpoints land on slice boundaries), which is what keeps the
  // sharded backend's lockstep windows bit-identical to an
  // uninterrupted run.
  const auto drive = [&](auto& sim, auto& service,
                         const std::vector<sim::ShardedSimulator::ShardStats>*
                             stats,
                         double start_time, bool was_resumed) {
    if (was_resumed) {
      // Telemetry counters stay process-local: advance the baseline to
      // the restored totals so the first slice reports its own delta.
      baseline.events = sim.events_executed();
      baseline.health = service.protocol_health();
    } else {
      service.start();
    }
    double target = start_time;
    double next_ckpt = start_time + opt.checkpoint_every;
    for (;;) {
      bool final_slice = false;
      target += opt.slice;
      if (opt.horizon > 0.0 && target >= opt.horizon) {
        target = opt.horizon;
        final_slice = true;
      }
      sim.run_until(target);
      static const std::vector<sim::ShardedSimulator::ShardStats> kNone;
      refresh_registry(registry, baseline, sim.events_executed(),
                       service.protocol_health(),
                       stats != nullptr ? *stats : kNone,
                       wall_since(wall_start), target, cores,
                       service.online_count(), service.overlay_edges().size());
      if (ckpt_armed) service.prune_checkpoint_journal();
      // Interval writes include one that lands on the horizon itself —
      // that is the warm-start shape: run to the warmup horizon,
      // snapshot, fork longer runs from it later.
      if (ckpt_armed && opt.checkpoint_every > 0.0 &&
          target >= next_ckpt - 1e-9) {
        write_checkpoint(service, target);
        while (next_ckpt <= target + 1e-9) next_ckpt += opt.checkpoint_every;
      }
      if (final_slice) {
        report.horizon_reached = true;
        break;
      }
      const bool stop_signal = g_stop_requested != 0;
      const bool wall_stop = opt.wall_limit_seconds > 0.0 &&
                             wall_since(wall_start) >= opt.wall_limit_seconds;
      if (stop_signal || wall_stop) {
        // Graceful drain: the slice already completed, so this is a
        // quiescent point — snapshot it so a --resume continues here.
        if (ckpt_armed) write_checkpoint(service, target);
        report.interrupted = stop_signal;
        break;
      }
    }
    report.sim_time = target;
    report.events = sim.events_executed();
    report.health = service.protocol_health();
    report.online = service.online_count();
    const auto edges = service.overlay_edges();
    report.overlay_edges = edges.size();
    report.fingerprint = trajectory_fingerprint(edges, report.health);
    report.fraction_disconnected = connectivity.fraction_disconnected(
        opt.nodes, edges, service.online_mask());
    report.node_state_bytes = service.node_state_bytes();
  };

  // Pops the next resume candidate and restores `service` from it.
  // Returns the snapshot time, or a negative value when the payload
  // was rejected (the caller reconstructs a fresh service and tries
  // the next-older candidate) .
  const auto try_restore = [&](auto& service) -> double {
    ResumeCandidate cand = std::move(candidates.front());
    candidates.erase(candidates.begin());
    try {
      ckpt::Reader r(cand.payload);
      service.restore_from_checkpoint(r);
      return cand.header.sim_time;
    } catch (const ckpt::ParseError& e) {
      report.rejected_checkpoints.push_back(cand.path + ": payload — " +
                                            e.what());
      return -1.0;
    }
  };

  if (opt.shards == 0) {
    for (;;) {
      sim::Simulator sim;
      overlay::OverlayService service(sim, trust, model, options,
                                      Rng(opt.seed));
      if (ckpt_armed) service.enable_checkpointing();
      double start_time = 0.0;
      if (!candidates.empty()) {
        start_time = try_restore(service);
        if (start_time < 0.0) continue;  // fresh service, next candidate
        report.resumed = true;
        report.resumed_at = start_time;
      }
      drive(sim, service, nullptr, start_time, report.resumed);
      break;
    }
  } else {
    for (;;) {
      sim::ShardedSimulator::Options so;
      so.shards = opt.shards;
      so.num_actors = opt.nodes;
      so.lookahead = options.transport.min_latency;
      so.profile = opt.profile;
      sim::ShardedSimulator sim(so);
      overlay::ShardedOverlayService service(sim, trust, model, options,
                                             opt.seed);
      if (ckpt_armed) service.enable_checkpointing();
      double start_time = 0.0;
      if (!candidates.empty()) {
        start_time = try_restore(service);
        if (start_time < 0.0) continue;
        report.resumed = true;
        report.resumed_at = start_time;
      }
      drive(sim, service, &sim.shard_stats(), start_time, report.resumed);
      report.shard_stats = sim.shard_stats();
      break;
    }
  }

  report.wall_seconds = wall_since(wall_start);
  report.peak_rss_bytes = peak_rss_bytes();
  if (ticker != nullptr) {
    ticker->stop();  // takes the final sample before we snapshot
    report.samples_taken = ticker->samples_taken();
  }
  if (server != nullptr) {
    server->stop();
    report.scrapes_served = server->requests_served();
  }
  report.metrics = registry.snapshot();
  return report;
}

}  // namespace ppo::telemetry
