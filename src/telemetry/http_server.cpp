#include "telemetry/http_server.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define PPO_HAVE_SOCKETS 1
#endif

namespace ppo::telemetry {

#if defined(PPO_HAVE_SOCKETS)

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;  // EPIPE instead of SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    default: return "OK";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, kSendFlags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; a lost scrape is not an error
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, HttpHandler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("telemetry: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("telemetry: cannot listen on port " +
                             std::to_string(port) + ": " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  else
    port_ = port;

  thread_ = std::thread([this] { serve_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept(); close() alone is not
    // guaranteed to on all platforms.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or broken): exit the loop
    }
    // A stalled client must not wedge the sequential loop.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of the request head (scrapes have no body);
  // 8 KiB is far beyond any scraper's request line + headers.
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line

  HttpResponse response;
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = {405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    response = handler_(path);
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, response.body);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

#else  // !PPO_HAVE_SOCKETS

HttpServer::HttpServer(std::uint16_t, HttpHandler handler)
    : handler_(std::move(handler)) {
  throw std::runtime_error(
      "telemetry: HTTP exposition needs POSIX sockets on this platform");
}
HttpServer::~HttpServer() = default;
void HttpServer::stop() {}
void HttpServer::serve_loop() {}
void HttpServer::handle_connection(int) {}

#endif

}  // namespace ppo::telemetry
