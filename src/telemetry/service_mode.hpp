// Long-running service mode: one sustained overlay workload (churn
// plus optional link faults, Byzantine adversary and passive observer
// arms) driven in fixed sim-time slices, with the live telemetry
// plane attached — a /metrics HTTP endpoint, a wall-clock sampling
// ticker exporting JSONL time-series, and slice-boundary gauge
// refreshes (events/sec/core, shard busy/stall ratios, overlay and
// health state).
//
// Determinism contract: telemetry is read-only and wall-clock-side.
// The driver slices run_until at the same sim times whether telemetry
// is on or off, every instrumentation site only *reads* simulation
// state, and the HTTP/ticker threads only read registry snapshots —
// so a fixed-horizon run produces a bit-identical trajectory
// fingerprint with --telemetry-port / --telemetry-out on or off, for
// every shard count. A wall limit legitimately changes how far a run
// gets (not the trajectory prefix); fingerprint comparisons therefore
// use fixed-horizon mode.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "metrics/protocol_health.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/sharded_simulator.hpp"

namespace ppo::telemetry {

/// FNV-1a over the overlay's canonical edge list (normalized u < v,
/// sorted, deduplicated — exactly what overlay_edges() yields) plus
/// the protocol-health counters: equal fingerprints mean equal
/// overlay trajectories for all practical purposes. Shared by
/// scale_single_run and the service-mode determinism tests so both
/// speak the same fingerprint language.
std::uint64_t trajectory_fingerprint(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> edges,
    const metrics::ProtocolHealth& health);

struct ServiceModeOptions {
  // --- workload ---
  std::size_t nodes = 5000;
  double alpha = 0.5;
  std::uint64_t seed = 42;
  /// Shard count; 0 selects the legacy serial backend (a different,
  /// equally valid trajectory — see DESIGN.md).
  std::size_t shards = 4;
  /// Stop after this much sim time (periods). 0 = unbounded; the run
  /// then needs a wall limit.
  double horizon = 0.0;
  /// Stop once this much wall time has elapsed (checked at slice
  /// boundaries, so the run overshoots by at most one slice). 0 =
  /// unbounded; the run then needs a horizon.
  double wall_limit_seconds = 0.0;
  /// Sim-time slice per driver step: gauges refresh and stop
  /// conditions are checked every `slice` periods.
  double slice = 1.0;

  // --- optional arms ---
  double loss = 0.0;                     // per-message drop probability
  double adversary_fraction = 0.0;       // attacker fraction of nodes
  std::string adversary_attack = "mixed";  // pollute/eclipse/drop/replay/mixed
  bool defended = false;                 // arm the §III-E defenses
  double observer_coverage = 0.0;        // passive-observer coverage

  // --- overlay parameters (scale-bench-reduced defaults) ---
  std::size_t cache_size = 50;
  std::size_t shuffle_length = 10;
  std::size_t target_links = 20;
  double pseudonym_lifetime = 90.0;
  /// Per-shard wall-clock load profile (busy/stall); feeds the
  /// shard_busy_ratio / shard_stall_ratio gauges.
  bool profile = false;

  // --- telemetry plane ---
  /// HTTP exposition port: -1 = no server, 0 = ephemeral (read the
  /// bound port from the report), >0 = fixed.
  int port = -1;
  /// JSONL time-series sink; empty = none.
  std::string telemetry_out;
  double sample_interval_seconds = 1.0;
  std::size_t ring_capacity = 600;

  // --- checkpoint/restore (DESIGN.md §13) ---
  /// Snapshot the full simulator state every this many sim-time
  /// periods (rounded up to the next slice boundary). 0 = no periodic
  /// checkpoints; a checkpoint_dir alone still arms exit snapshots.
  double checkpoint_every = 0.0;
  /// Directory for ckpt-*.ppoc files; empty = checkpointing off.
  std::string checkpoint_dir;
  /// Resume from the newest valid checkpoint in checkpoint_dir (falls
  /// back to older files when the newest is corrupt; cold-starts when
  /// none survive validation). The resumed trajectory is bit-identical
  /// to an uninterrupted run.
  bool resume = false;
  /// Install SIGINT/SIGTERM handlers: on signal, finish the current
  /// slice, write a final snapshot (when checkpointing is armed),
  /// flush the telemetry ring tail, and return cleanly.
  bool handle_signals = false;
};

struct ServiceModeReport {
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
  double sim_time = 0.0;
  double wall_seconds = 0.0;
  /// True when the run ended by reaching --horizon (vs the wall
  /// limit). Always true for fixed-horizon determinism runs.
  bool horizon_reached = false;
  std::size_t online = 0;
  std::size_t overlay_edges = 0;
  /// Figure 3 point at the stop time: fraction of online nodes
  /// outside the overlay's largest component.
  double fraction_disconnected = 0.0;
  std::size_t peak_rss_bytes = 0;
  std::size_t node_state_bytes = 0;
  metrics::ProtocolHealth health;
  std::vector<sim::ShardedSimulator::ShardStats> shard_stats;
  /// Telemetry-plane accounting (0 when the plane is off).
  std::uint64_t samples_taken = 0;
  std::uint64_t scrapes_served = 0;
  std::uint16_t port = 0;  // bound port; 0 = no server ran
  /// Final registry state (counters, gauges, streaming quantiles) —
  /// what the last /metrics scrape would have shown.
  obs::MetricsRegistry::Snapshot metrics;
  // --- checkpoint/restore accounting ---
  std::uint64_t checkpoints_written = 0;
  /// True when the run restored from a checkpoint instead of
  /// cold-starting.
  bool resumed = false;
  /// Sim time of the restored snapshot (0 when !resumed).
  double resumed_at = 0.0;
  /// Checkpoint files rejected during resume (corrupt/incompatible),
  /// newest first — each entry is "file: status message".
  std::vector<std::string> rejected_checkpoints;
  /// True when a SIGINT/SIGTERM drain ended the run early.
  bool interrupted = false;
};

/// Runs the sustained workload. Aborts (PPO_CHECK) when neither a
/// horizon nor a wall limit bounds the run, or when slice <= 0.
ServiceModeReport run_service_mode(const ServiceModeOptions& options);

}  // namespace ppo::telemetry
