#include "telemetry/sampler.hpp"

#include <utility>

namespace ppo::telemetry {

runner::Json to_json(const TelemetrySample& sample) {
  auto doc = runner::Json::object();
  doc["wall_seconds"] = sample.wall_seconds;
  auto counters = runner::Json::object();
  for (const auto& [key, value] : sample.metrics.counters)
    counters[key] = value;
  doc["counters"] = std::move(counters);
  auto gauges = runner::Json::object();
  for (const auto& [key, value] : sample.metrics.gauges) gauges[key] = value;
  doc["gauges"] = std::move(gauges);
  auto quantiles = runner::Json::object();
  for (const auto& [key, hist] : sample.metrics.streaming) {
    auto cell = runner::Json::object();
    cell["count"] = hist.count;
    cell["mean"] = hist.mean();
    cell["p50"] = hist.p50();
    cell["p95"] = hist.p95();
    cell["p99"] = hist.p99();
    cell["p999"] = hist.p999();
    cell["max"] = hist.max;
    quantiles[key] = std::move(cell);
  }
  doc["quantiles"] = std::move(quantiles);
  return doc;
}

SampleRing::SampleRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SampleRing::push(TelemetrySample sample) {
  std::lock_guard lock(mutex_);
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(sample));
  } else {
    slots_[next_] = std::move(sample);
    next_ = (next_ + 1) % capacity_;
  }
  ++pushed_;
}

std::vector<TelemetrySample> SampleRing::recent() const {
  std::lock_guard lock(mutex_);
  std::vector<TelemetrySample> out;
  out.reserve(slots_.size());
  // Once the ring is full, next_ points at the oldest slot.
  for (std::size_t i = 0; i < slots_.size(); ++i)
    out.push_back(slots_[(next_ + i) % slots_.size()]);
  return out;
}

std::size_t SampleRing::size() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

std::uint64_t SampleRing::total_pushed() const {
  std::lock_guard lock(mutex_);
  return pushed_;
}

std::string SampleRing::recent_jsonl() const {
  std::string out;
  for (const TelemetrySample& sample : recent()) {
    out += to_json(sample).dump();
    out += '\n';
  }
  return out;
}

TelemetryTicker::TelemetryTicker(const obs::MetricsRegistry& registry,
                                 Options options)
    : registry_(registry),
      options_(options),
      ring_(options.ring_capacity) {
  if (!options_.jsonl_path.empty())
    jsonl_.open(options_.jsonl_path, std::ios::out | std::ios::trunc);
  thread_ = std::thread([this] { loop(); });
}

TelemetryTicker::~TelemetryTicker() { stop(); }

void TelemetryTicker::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    if (stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample so short runs still export a row, and the last row
  // reflects the finished state.
  take_sample();
  if (jsonl_.is_open()) jsonl_.flush();
}

void TelemetryTicker::take_sample() {
  std::lock_guard lock(sample_mutex_);
  TelemetrySample sample;
  sample.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
  sample.metrics = registry_.snapshot();
  if (jsonl_.is_open()) {
    jsonl_ << to_json(sample).dump() << '\n';
    jsonl_.flush();  // live tail-ability beats buffering here
  }
  ring_.push(std::move(sample));
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetryTicker::loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds > 0.0 ? options_.interval_seconds : 1.0);
  std::unique_lock lock(stop_mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stopping_; }))
      break;
    lock.unlock();
    take_sample();
    lock.lock();
  }
}

}  // namespace ppo::telemetry
