#include "telemetry/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace ppo::telemetry {

namespace {

/// Shortest round-trippable rendering of a double, with the special
/// values Prometheus understands spelled its way.
std::string number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Trim to the shortest representation that parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

std::string number(std::uint64_t value) { return std::to_string(value); }

/// One parsed registry key: family name plus its label pairs.
struct ParsedKey {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
};

ParsedKey parse_key(const std::string& key) {
  ParsedKey parsed;
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) {
    parsed.name = prometheus_name(key);
    return parsed;
  }
  parsed.name = prometheus_name(key.substr(0, brace));
  std::size_t pos = brace + 1;
  const std::size_t end =
      key.back() == '}' ? key.size() - 1 : key.size();
  while (pos < end) {
    std::size_t comma = key.find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    const std::string pair = key.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      parsed.labels.emplace_back(prometheus_name(pair.substr(0, eq)),
                                 pair.substr(eq + 1));
    }
    pos = comma + 1;
  }
  return parsed;
}

std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prometheus_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Same labels plus one extra pair (quantile / le), rendered.
std::string render_labels_plus(
    std::vector<std::pair<std::string, std::string>> labels,
    const std::string& key, const std::string& value) {
  labels.emplace_back(key, value);
  return render_labels(labels);
}

/// Samples grouped per family so the TYPE comment is emitted once.
template <typename Value>
using Families =
    std::map<std::string, std::vector<std::pair<ParsedKey, Value>>>;

template <typename Map, typename Value>
Families<Value> group(const Map& cells) {
  Families<Value> families;
  for (const auto& [key, value] : cells) {
    ParsedKey parsed = parse_key(key);
    const std::string name = parsed.name;
    families[name].emplace_back(std::move(parsed), value);
  }
  return families;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string render_prometheus(
    const obs::MetricsRegistry::Snapshot& snapshot) {
  std::string out;

  for (const auto& [family, cells] :
       group<decltype(snapshot.counters), std::uint64_t>(snapshot.counters)) {
    out += "# TYPE " + family + " counter\n";
    for (const auto& [key, value] : cells)
      out += family + render_labels(key.labels) + " " + number(value) + "\n";
  }

  for (const auto& [family, cells] :
       group<decltype(snapshot.gauges), double>(snapshot.gauges)) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [key, value] : cells)
      out += family + render_labels(key.labels) + " " + number(value) + "\n";
  }

  for (const auto& [family, cells] :
       group<decltype(snapshot.streaming), obs::StreamingHistogram::Snapshot>(
           snapshot.streaming)) {
    out += "# TYPE " + family + " histogram\n";
    for (const auto& [key, hist] : cells) {
      // Cumulative `le` lines for the log buckets that hold mass —
      // sparse buckets are valid exposition and keep the payload
      // proportional to the distribution, not the bucket universe.
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < obs::StreamingHistogram::kBuckets; ++i) {
        if (hist.buckets[i] == 0) continue;
        cumulative += hist.buckets[i];
        out += family + "_bucket" +
               render_labels_plus(
                   key.labels, "le",
                   number(obs::StreamingHistogram::bucket_upper_bound(i))) +
               " " + number(cumulative) + "\n";
      }
      out += family + "_bucket" +
             render_labels_plus(key.labels, "le", "+Inf") + " " +
             number(hist.count) + "\n";
      out += family + "_sum" + render_labels(key.labels) + " " +
             number(hist.sum) + "\n";
      out += family + "_count" + render_labels(key.labels) + " " +
             number(hist.count) + "\n";
    }
  }

  for (const auto& [family, cells] :
       group<decltype(snapshot.histograms), Histogram>(snapshot.histograms)) {
    out += "# TYPE " + family + " summary\n";
    for (const auto& [key, hist] : cells) {
      for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        const double value =
            hist.empty() ? 0.0 : static_cast<double>(hist.quantile(q));
        out += family +
               render_labels_plus(key.labels, "quantile", number(q)) + " " +
               number(value) + "\n";
      }
      out += family + "_sum" + render_labels(key.labels) + " " +
             number(hist.empty() ? 0.0
                                 : hist.mean() * double(hist.total())) +
             "\n";
      out += family + "_count" + render_labels(key.labels) + " " +
             number(std::uint64_t{hist.total()}) + "\n";
    }
  }

  return out;
}

std::string render_prometheus(const obs::MetricsRegistry& registry) {
  return render_prometheus(registry.snapshot());
}

}  // namespace ppo::telemetry
