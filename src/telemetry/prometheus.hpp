// Prometheus text-exposition rendering of a MetricsRegistry snapshot
// (exposition format 0.0.4, the `text/plain; version=0.0.4` payload a
// Prometheus server scrapes from /metrics).
//
// Mapping:
//  - counters  -> `# TYPE <name> counter` sample lines
//  - gauges    -> `# TYPE <name> gauge`
//  - streaming histograms -> native `# TYPE <name> histogram` families
//    with cumulative `le` buckets (only the log buckets that hold
//    mass, plus `+Inf`), `_sum` and `_count`
//  - scrape-time sparse histograms -> `# TYPE <name> summary` with
//    quantile labels, `_sum` and `_count`
//
// Registry keys already carry dimensions in `name{k=v,...}` form;
// rendering re-parses them into proper quoted Prometheus labels and
// sanitizes names so arbitrary registry content cannot produce an
// unparsable exposition.
#pragma once

#include <string>

#include "obs/metrics_registry.hpp"

namespace ppo::telemetry {

/// Metric/label name with every character outside [a-zA-Z0-9_:]
/// replaced by '_' (leading digits get a '_' prefix).
std::string prometheus_name(const std::string& name);

/// Label value with backslash, double-quote and newline escaped.
std::string prometheus_label_value(const std::string& value);

/// Renders the full exposition payload. Families are emitted in
/// sorted-key order, so consecutive renders diff cleanly.
std::string render_prometheus(const obs::MetricsRegistry::Snapshot& snapshot);

/// Takes a race-free snapshot of `registry` first; safe to call from a
/// scrape thread while workers update the registry.
std::string render_prometheus(const obs::MetricsRegistry& registry);

/// The Content-Type a /metrics response should carry.
inline const char* prometheus_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace ppo::telemetry
