#include "dht/chord.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace ppo::dht {

namespace {

/// true iff x lies in the half-open ring interval (a, b] (clockwise).
bool in_interval(Key x, Key a, Key b) {
  if (a == b) return true;  // full circle
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

}  // namespace

ChordRing::ChordRing(const ChordOptions& options, Rng& rng)
    : replication_(options.replication) {
  PPO_CHECK_MSG(options.num_nodes >= 1, "ring needs nodes");
  PPO_CHECK_MSG(options.replication >= 1, "replication must be >= 1");

  // Distinct random ring ids, sorted.
  std::vector<Key> ids;
  ids.reserve(options.num_nodes);
  while (ids.size() < options.num_nodes) {
    const Key id = rng.next_u64();
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  while (ids.size() < options.num_nodes) {  // collision top-up (rare)
    const Key id = rng.next_u64();
    if (!std::binary_search(ids.begin(), ids.end(), id)) {
      ids.insert(std::upper_bound(ids.begin(), ids.end(), id), id);
    }
  }

  nodes_.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) nodes_[i].id = ids[i];

  // Finger tables: successor of id + 2^k for each k.
  const auto successor_index = [&](Key position) {
    const auto it = std::lower_bound(
        ids.begin(), ids.end(), position);
    return static_cast<std::size_t>(
        it == ids.end() ? 0 : static_cast<std::size_t>(it - ids.begin()));
  };
  for (auto& node : nodes_) {
    node.fingers.reserve(64);
    for (int k = 0; k < 64; ++k)
      node.fingers.push_back(successor_index(node.id + (Key{1} << k)));
  }
}

std::size_t ChordRing::num_alive() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) count += node.alive;
  return count;
}

std::optional<std::size_t> ChordRing::alive_successor(Key key) const {
  // First alive node at or after `key`, wrapping. Binary search for
  // the insertion point, then walk (the walk models successor lists).
  std::size_t i = 0;
  {
    std::size_t lo = 0, hi = nodes_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (nodes_[mid].id < key)
        lo = mid + 1;
      else
        hi = mid;
    }
    i = lo % nodes_.size();
  }
  for (std::size_t step = 0; step < nodes_.size(); ++step) {
    const std::size_t idx = (i + step) % nodes_.size();
    if (nodes_[idx].alive) return idx;
  }
  return std::nullopt;
}

ChordRing::LookupResult ChordRing::lookup(
    Key key, std::optional<std::size_t> start) const {
  // Span id: per-thread sequence — lookups never nest, and a
  // thread-local keeps the const API race-free under parallel sweeps.
  static thread_local std::uint64_t lookup_seq = 0;
  const std::uint64_t span_id = ++lookup_seq;
  const std::uint32_t origin =
      static_cast<std::uint32_t>(start.value_or(nodes_.size()));
  PPO_TRACE_SPAN_BEGIN(obs::TraceCategory::kDht, "dht_lookup", origin,
                       span_id);
  LookupResult result = lookup_impl(key, start);
  PPO_TRACE_SPAN_END(obs::TraceCategory::kDht, "dht_lookup", origin, span_id,
                     (obs::TraceArg{"hops", double(result.hops)}),
                     (obs::TraceArg{"ok", result.ok ? 1.0 : 0.0}));
  // Live telemetry seam: hop count is this codebase's lookup-latency
  // proxy (lookups resolve synchronously). Read-only on ring state.
  if (auto* live = obs::live_metrics())
    live->observe("dht_lookup_hops", static_cast<double>(result.hops));
  return result;
}

ChordRing::LookupResult ChordRing::lookup_impl(
    Key key, std::optional<std::size_t> start) const {
  LookupResult result;
  std::size_t current;
  if (start) {
    PPO_CHECK_MSG(*start < nodes_.size(), "start node out of range");
    PPO_CHECK_MSG(nodes_[*start].alive, "start node is dead");
    current = *start;
  } else {
    const auto any = alive_successor(0);
    if (!any) return result;
    current = *any;
  }

  for (std::size_t guard = 0; guard < nodes_.size() + 64; ++guard) {
    const auto succ = alive_successor(nodes_[current].id + 1);
    if (!succ) return result;
    if (in_interval(key, nodes_[current].id, nodes_[*succ].id)) {
      result.ok = true;
      result.owner = *succ;
      result.hops += (current != *succ);
      return result;
    }
    // Closest preceding alive finger strictly inside (current, key).
    std::size_t next = *succ;  // successor fallback guarantees progress
    for (int k = 63; k >= 0; --k) {
      const std::size_t candidate =
          nodes_[current].fingers[static_cast<std::size_t>(k)];
      if (candidate == current || !nodes_[candidate].alive) continue;
      if (in_interval(nodes_[candidate].id, nodes_[current].id, key) &&
          nodes_[candidate].id != key) {
        next = candidate;
        break;
      }
    }
    if (next == current) return result;  // wedged (should not happen)
    current = next;
    ++result.hops;
  }
  return result;  // guard exceeded
}

std::vector<std::size_t> ChordRing::replicas(Key key) const {
  std::vector<std::size_t> out;
  const auto owner = alive_successor(key);
  if (!owner) return out;
  std::size_t idx = *owner;
  for (std::size_t added = 0;
       added < replication_ && out.size() < num_alive();) {
    if (nodes_[idx].alive) {
      out.push_back(idx);
      ++added;
    }
    idx = (idx + 1) % nodes_.size();
    if (idx == *owner) break;  // wrapped all the way around
  }
  return out;
}

std::optional<std::size_t> ChordRing::put(Key key, crypto::Bytes value) {
  const LookupResult route = lookup(key);
  if (!route.ok) return std::nullopt;
  for (const std::size_t idx : replicas(key))
    nodes_[idx].store[key] = value;
  return route.hops;
}

std::optional<crypto::Bytes> ChordRing::get(Key key) const {
  for (const std::size_t idx : replicas(key)) {
    const auto it = nodes_[idx].store.find(key);
    if (it != nodes_[idx].store.end()) return it->second;
  }
  return std::nullopt;
}

void ChordRing::erase(Key key) {
  for (auto& node : nodes_)
    if (node.alive) node.store.erase(key);
}

void ChordRing::fail_node(std::size_t index) {
  PPO_CHECK_MSG(index < nodes_.size(), "node out of range");
  nodes_[index].alive = false;
}

bool ChordRing::node_alive(std::size_t index) const {
  PPO_CHECK_MSG(index < nodes_.size(), "node out of range");
  return nodes_[index].alive;
}

Key ChordRing::node_id(std::size_t index) const {
  PPO_CHECK_MSG(index < nodes_.size(), "node out of range");
  return nodes_[index].id;
}

}  // namespace ppo::dht
