// The pseudonym service realized over third-party distributed
// storage, as §III-B proposes: "pseudonyms would be storage-service
// addresses (e.g., email addresses or DHT IDs)". Registrations live
// in a Chord ring (replicated), so the mapping survives storage-node
// failures and no single party holds the whole directory.
//
// Same contract as the ideal privacylink::PseudonymService: mint a
// TTL'd random value for an owner, resolve values until expiry.
#pragma once

#include <optional>

#include "dht/chord.hpp"
#include "privacylink/pseudonym.hpp"

namespace ppo::dht {

using privacylink::NodeId;
using privacylink::PseudonymRecord;
using privacylink::PseudonymValue;

class DhtPseudonymService {
 public:
  DhtPseudonymService(ChordRing& ring, unsigned bits = 64)
      : ring_(ring), bits_(bits) {}

  /// Mints a fresh pseudonym for `owner`, registering it in the DHT.
  PseudonymRecord create(NodeId owner, sim::Time now, sim::Time lifetime,
                         Rng& rng);

  /// Resolves via DHT lookup; expired registrations are unroutable
  /// and lazily deleted.
  std::optional<NodeId> resolve(PseudonymValue value, sim::Time now);

  bool alive(PseudonymValue value, sim::Time now);

  /// Routing cost accounting (DHT hops across create/resolve calls).
  std::uint64_t total_hops() const { return hops_; }
  std::uint64_t operations() const { return ops_; }

 private:
  static Key storage_key(PseudonymValue value);

  ChordRing& ring_;
  unsigned bits_;
  std::uint64_t hops_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace ppo::dht
