// Chord-style distributed hash table (simulated): the third-party
// storage substrate §III-B proposes for realizing the pseudonym
// service ("pseudonyms would be storage-service addresses (e.g. ...
// DHT IDs)"). Nodes sit on a 2^64 identifier ring; a key belongs to
// its successor; lookups route greedily through finger tables in
// O(log n) hops; data is replicated on the owner's successor list so
// node failures do not lose registrations.
//
// Membership is static (built once), matching how the paper uses
// infrastructure services; failures are modeled by marking nodes dead
// — lookups and reads route around them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "crypto/bytes.hpp"

namespace ppo::dht {

using Key = std::uint64_t;

struct ChordOptions {
  std::size_t num_nodes = 64;
  /// Copies of each record (owner + replication-1 further successors).
  std::size_t replication = 3;
};

class ChordRing {
 public:
  ChordRing(const ChordOptions& options, Rng& rng);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_alive() const;

  struct LookupResult {
    bool ok = false;
    std::size_t owner = 0;  // node index (not ring id)
    std::size_t hops = 0;
  };

  /// Routes from node `start` (default: random alive) to the alive
  /// owner of `key` via finger tables. Fails only when no alive node
  /// remains reachable.
  LookupResult lookup(Key key, std::optional<std::size_t> start = {}) const;

  /// Stores key -> value at the owner and its successors (replicated).
  /// Returns the hop count of the initial lookup, or nullopt if the
  /// ring is dead.
  std::optional<std::size_t> put(Key key, crypto::Bytes value);

  /// Reads from the first alive replica.
  std::optional<crypto::Bytes> get(Key key) const;

  /// Removes the key from all alive replicas.
  void erase(Key key);

  /// Failure injection.
  void fail_node(std::size_t index);
  bool node_alive(std::size_t index) const;

  /// Ring id of node `index` (test use).
  Key node_id(std::size_t index) const;

 private:
  struct Node {
    Key id;
    bool alive = true;
    std::vector<std::size_t> fingers;  // node indices at id + 2^k
    std::map<Key, crypto::Bytes> store;
  };

  /// lookup() minus the trace span around it.
  LookupResult lookup_impl(Key key, std::optional<std::size_t> start) const;

  /// Index (into nodes_, which is sorted by id) of the first ALIVE
  /// node at or clockwise-after ring position `key`. nullopt when
  /// everything is dead.
  std::optional<std::size_t> alive_successor(Key key) const;

  /// Replica set for a key: the alive owner and the next alive nodes.
  std::vector<std::size_t> replicas(Key key) const;

  std::vector<Node> nodes_;  // sorted by ring id
  std::size_t replication_;
};

}  // namespace ppo::dht
