#include "dht/dht_pseudonym_service.hpp"

#include <cstring>

#include "common/check.hpp"
#include "crypto/sha256.hpp"

namespace ppo::dht {

namespace {

crypto::Bytes encode(NodeId owner, sim::Time expiry) {
  crypto::Bytes out(sizeof(NodeId) + sizeof(double));
  std::memcpy(out.data(), &owner, sizeof(NodeId));
  std::memcpy(out.data() + sizeof(NodeId), &expiry, sizeof(double));
  return out;
}

bool decode(const crypto::Bytes& data, NodeId& owner, sim::Time& expiry) {
  if (data.size() != sizeof(NodeId) + sizeof(double)) return false;
  std::memcpy(&owner, data.data(), sizeof(NodeId));
  std::memcpy(&expiry, data.data() + sizeof(NodeId), sizeof(double));
  return true;
}

}  // namespace

Key DhtPseudonymService::storage_key(PseudonymValue value) {
  // Hash the pseudonym into the ring so storage placement reveals
  // nothing about value structure (§III-D's hashing remark).
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i)
    raw[i] = static_cast<std::uint8_t>(value >> (8 * i));
  const auto digest = crypto::sha256(crypto::BytesView(raw, 8));
  Key key = 0;
  for (int i = 0; i < 8; ++i)
    key |= static_cast<Key>(digest[static_cast<std::size_t>(i)]) << (8 * i);
  return key;
}

PseudonymRecord DhtPseudonymService::create(NodeId owner, sim::Time now,
                                            sim::Time lifetime, Rng& rng) {
  PPO_CHECK_MSG(lifetime > 0.0, "pseudonym lifetime must be positive");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const PseudonymValue value =
        privacylink::random_pseudonym_value(rng, bits_);
    // Live collision check via the DHT itself.
    if (alive(value, now)) continue;
    const auto hops = ring_.put(storage_key(value),
                                encode(owner, now + lifetime));
    PPO_CHECK_MSG(hops.has_value(), "DHT unavailable (all nodes dead)");
    hops_ += *hops;
    ++ops_;
    return PseudonymRecord{value, now + lifetime};
  }
  PPO_CHECK_MSG(false, "pseudonym space exhausted — widen `bits`");
  return {};
}

std::optional<NodeId> DhtPseudonymService::resolve(PseudonymValue value,
                                                   sim::Time now) {
  const Key key = storage_key(value);
  const auto lookup = ring_.lookup(key);
  if (lookup.ok) {
    hops_ += lookup.hops;
    ++ops_;
  }
  const auto data = ring_.get(key);
  if (!data) return std::nullopt;
  NodeId owner = 0;
  sim::Time expiry = 0.0;
  if (!decode(*data, owner, expiry)) return std::nullopt;
  if (expiry <= now) {
    ring_.erase(key);  // lazy TTL garbage collection
    return std::nullopt;
  }
  return owner;
}

bool DhtPseudonymService::alive(PseudonymValue value, sim::Time now) {
  return resolve(value, now).has_value();
}

}  // namespace ppo::dht
