// Scheduling interface of the simulation core, extracted so protocol
// components (transports, churn, timers, the overlay service) run
// unchanged on either backend:
//  - sim::Simulator — the original serial event loop (one global
//    queue, ties broken by scheduling order);
//  - sim::ShardedSimulator — the deterministically-parallel core that
//    partitions actors (nodes) into shards and runs them in lockstep
//    epochs (sharded_simulator.hpp).
//
// The one addition over the old Simulator surface is the *actor*
// dimension: schedule_for / schedule_at_for name the node an event
// belongs to, so a sharded backend can route it to that node's shard.
// The serial backend ignores the actor, which keeps existing call
// sites bit-identical.
#pragma once

#include <cstdint>
#include <functional>

namespace ppo::sim {

/// Virtual time. The unit throughout the library is one shuffling
/// period (paper §IV).
using Time = double;

using EventFn = std::function<void()>;

/// Identifies the actor (overlay node) an event belongs to. Actor ids
/// coincide with graph::NodeId in practice.
using ActorId = std::uint32_t;

/// Sentinel for events scheduled outside any actor's context (setup
/// code, the measurement loop). Sharded backends only accept it
/// between windows.
inline constexpr ActorId kExternalActor = 0xFFFFFFFFu;

/// Identity of a scheduled event inside a backend's deterministic
/// order: the actor context that scheduled it (kExternalActor for the
/// serial backend and external schedules) and the per-origin sequence
/// number. Checkpointing components record the ticket of each pending
/// event they own so restore can re-insert it at the exact same
/// position in the order (sim ties at equal times break by ticket).
struct EventTicket {
  ActorId origin = kExternalActor;
  std::uint64_t seq = 0;
};

class SimulatorBackend {
 public:
  virtual ~SimulatorBackend() = default;

  /// Current virtual time: the executing event's timestamp while an
  /// event runs, the window/run floor otherwise.
  virtual Time now() const = 0;

  /// Schedules `fn` at absolute time `t` (>= now) in the context of
  /// the actor currently executing (sharded backends route it to that
  /// actor's shard; outside event context they reject it — use
  /// schedule_at_for).
  virtual void schedule_at(Time t, EventFn fn) = 0;

  /// Schedules `fn` at absolute time `t` on `actor`'s queue. The
  /// serial backend ignores the actor.
  virtual void schedule_at_for(ActorId actor, Time t, EventFn fn) = 0;

  /// Convenience: `delay` time units from now (delay >= 0).
  void schedule_after(Time delay, EventFn fn);
  void schedule_for(ActorId actor, Time delay, EventFn fn);

  /// Ticket of the most recent schedule_* call made from the calling
  /// context (per shard worker on sharded backends). Checkpoint-aware
  /// components query it right after scheduling an event they intend
  /// to journal. Backends that do not support checkpointing (test
  /// doubles) keep the default, which returns an empty ticket.
  virtual EventTicket last_ticket() const { return {}; }
};

}  // namespace ppo::sim
