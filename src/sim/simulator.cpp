#include "sim/simulator.hpp"

#include <cmath>
#include <utility>

#include "common/simtime.hpp"

namespace ppo::sim {

void Simulator::schedule_at(Time t, EventFn fn) {
  PPO_CHECK_MSG(std::isfinite(t), "event time must be finite");
  PPO_CHECK_MSG(t >= now_, "cannot schedule into the past");
  PPO_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  queue_.push(Entry{t, next_seq_++, std::move(fn)});
}

void Simulator::execute_next() {
  // Move the entry out before popping so the callback may schedule
  // more events (which mutates the queue).
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  set_sim_time_context(now_);
  ++executed_;
  entry.fn();
}

std::size_t Simulator::run_until(Time end) {
  PPO_CHECK_MSG(end >= now_, "cannot run backwards");
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= end) {
    execute_next();
    ++count;
  }
  now_ = end;
  set_sim_time_context(now_);
  return count;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    execute_next();
    ++count;
  }
  PPO_CHECK_MSG(queue_.empty(), "event budget exhausted before quiescence");
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  execute_next();
  return true;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace ppo::sim
