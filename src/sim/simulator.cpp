#include "sim/simulator.hpp"

#include <cmath>
#include <utility>

#include "common/simtime.hpp"

namespace ppo::sim {

void Simulator::schedule_at(Time t, EventFn fn) {
  PPO_CHECK_MSG(std::isfinite(t), "event time must be finite");
  PPO_CHECK_MSG(t >= now_, "cannot schedule into the past");
  PPO_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  last_ticket_ = EventTicket{kExternalActor, next_seq_};
  queue_.push(Entry{t, next_seq_++, std::move(fn)});
}

void Simulator::restore_state(Time now, std::uint64_t next_seq,
                              std::uint64_t executed) {
  PPO_CHECK_MSG(queue_.empty(), "restore_state needs an empty queue");
  PPO_CHECK_MSG(std::isfinite(now), "restored clock must be finite");
  now_ = now;
  next_seq_ = next_seq;
  executed_ = executed;
  set_sim_time_context(now_);
}

void Simulator::restore_event(Time t, std::uint64_t seq, EventFn fn) {
  PPO_CHECK_MSG(std::isfinite(t) && t > now_,
                "restored events must lie strictly after the checkpoint");
  PPO_CHECK_MSG(seq < next_seq_, "restored seq beyond the restored counter");
  PPO_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  queue_.push(Entry{t, seq, std::move(fn)});
}

void Simulator::execute_next() {
  // Move the entry out before popping so the callback may schedule
  // more events (which mutates the queue).
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  set_sim_time_context(now_);
  ++executed_;
  entry.fn();
}

std::size_t Simulator::run_until(Time end) {
  PPO_CHECK_MSG(end >= now_, "cannot run backwards");
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= end) {
    execute_next();
    ++count;
  }
  now_ = end;
  set_sim_time_context(now_);
  return count;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    execute_next();
    ++count;
  }
  PPO_CHECK_MSG(queue_.empty(), "event budget exhausted before quiescence");
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  execute_next();
  return true;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace ppo::sim
