#include "sim/sharded_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"

namespace ppo::sim {

namespace {

/// Execution context of the event running on this thread, if any.
/// Thread-local so shard workers resolve now()/schedule_at against
/// their own in-flight event without synchronization.
struct ExecContext {
  const ShardedSimulator* sim = nullptr;
  std::size_t shard = ShardedSimulator::kNoShard;
  ActorId actor = kExternalActor;
  Time now = 0.0;
  EventTicket last_ticket;
};

thread_local ExecContext* tls_ctx = nullptr;

}  // namespace

ShardedSimulator::ShardedSimulator(Options options) : options_(options) {
  PPO_CHECK_MSG(options_.shards >= 1, "need at least one shard");
  PPO_CHECK_MSG(options_.num_actors >= 1, "need at least one actor");
  PPO_CHECK_MSG(options_.lookahead > 0.0 && std::isfinite(options_.lookahead),
                "lookahead must be positive and finite");
  queues_.resize(options_.shards);
  mailboxes_.resize(options_.shards);
  for (auto& row : mailboxes_) row.resize(options_.shards);
  actor_seq_.assign(options_.num_actors, 0);
  stats_.assign(options_.shards, ShardStats{});
  window_busy_.assign(options_.shards, 0.0);
  if (options_.shards > 1) {
    pool_ = std::make_unique<runner::ThreadPool>(options_.shards,
                                                 2 * options_.shards);
  }
}

ShardedSimulator::~ShardedSimulator() = default;

std::size_t ShardedSimulator::shard_of(ActorId actor, std::size_t shards) {
  if (shards <= 1) return 0;
  std::uint64_t state = actor;
  return static_cast<std::size_t>(splitmix64(state) % shards);
}

std::size_t ShardedSimulator::current_shard() const {
  const ExecContext* ctx = tls_ctx;
  return (ctx != nullptr && ctx->sim == this) ? ctx->shard : kNoShard;
}

Time ShardedSimulator::now() const {
  const ExecContext* ctx = tls_ctx;
  return (ctx != nullptr && ctx->sim == this) ? ctx->now : now_;
}

void ShardedSimulator::schedule_at(Time t, EventFn fn) {
  ExecContext* ctx = tls_ctx;
  PPO_CHECK_MSG(ctx != nullptr && ctx->sim == this,
                "outside event context the sharded backend needs an explicit "
                "actor: use schedule_at_for / schedule_for");
  schedule_at_for(ctx->actor, t, std::move(fn));
}

void ShardedSimulator::schedule_at_for(ActorId actor, Time t, EventFn fn) {
  PPO_CHECK_MSG(std::isfinite(t), "event time must be finite");
  PPO_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  PPO_CHECK_MSG(actor < options_.num_actors, "actor out of range");
  const std::size_t dst = shard_of(actor);
  ExecContext* ctx = tls_ctx;
  if (ctx != nullptr && ctx->sim == this) {
    PPO_CHECK_MSG(t >= ctx->now, "cannot schedule into the past");
    Entry entry{t, ctx->actor, actor_seq_[ctx->actor]++, actor,
                std::move(fn)};
    ctx->last_ticket = EventTicket{entry.origin, entry.seq};
    if (dst == ctx->shard) {
      queues_[dst].push(std::move(entry));
    } else {
      // The lookahead guarantee: cross-shard events always land at or
      // beyond the current window's end, so delivering them at the
      // barrier loses nothing — and makes K-invariance provable.
      PPO_CHECK_MSG(t >= window_end_,
                    "cross-shard event inside the current window violates "
                    "the lookahead contract (latency < lookahead?)");
      ++stats_[ctx->shard].mailbox_out;
      mailboxes_[ctx->shard][dst].push_back(std::move(entry));
    }
  } else {
    PPO_CHECK_MSG(!in_window_, "external scheduling during a window");
    PPO_CHECK_MSG(t >= now_, "cannot schedule into the past");
    external_last_ticket_ = EventTicket{kExternalActor, external_seq_};
    queues_[dst].push(
        Entry{t, kExternalActor, external_seq_++, actor, std::move(fn)});
  }
}

EventTicket ShardedSimulator::last_ticket() const {
  const ExecContext* ctx = tls_ctx;
  return (ctx != nullptr && ctx->sim == this) ? ctx->last_ticket
                                              : external_last_ticket_;
}

void ShardedSimulator::restore_state(
    Time now, std::uint64_t events_base,
    const std::vector<std::uint64_t>& actor_seqs,
    std::uint64_t external_seq) {
  PPO_CHECK_MSG(pending() == 0, "restore_state needs empty queues");
  PPO_CHECK_MSG(std::isfinite(now), "restored clock must be finite");
  PPO_CHECK_MSG(actor_seqs.size() == actor_seq_.size(),
                "actor count mismatch between checkpoint and simulator");
  now_ = now;
  events_base_ = events_base;
  actor_seq_ = actor_seqs;
  external_seq_ = external_seq;
  set_sim_time_context(now_);
}

void ShardedSimulator::restore_event(Time t, ActorId origin,
                                     std::uint64_t seq, ActorId target,
                                     EventFn fn) {
  PPO_CHECK_MSG(!in_window_, "restore_event during a window");
  // Events exactly at the checkpoint time are legal here: the sharded
  // run_until is exclusive, so an event at `now` is still pending.
  PPO_CHECK_MSG(std::isfinite(t) && t >= now_,
                "restored events cannot lie before the checkpoint");
  PPO_CHECK_MSG(target < options_.num_actors, "actor out of range");
  PPO_CHECK_MSG(static_cast<bool>(fn), "event callback must be callable");
  queues_[shard_of(target)].push(Entry{t, origin, seq, target, std::move(fn)});
}

void ShardedSimulator::run_shard_window(std::size_t shard, Time window_end) {
  using Clock = std::chrono::steady_clock;
  const auto wall_start = options_.profile ? Clock::now() : Clock::time_point{};
  ExecContext ctx;
  ctx.sim = this;
  ctx.shard = shard;
  ExecContext* const prev = tls_ctx;
  tls_ctx = &ctx;
  obs::set_trace_shard(static_cast<std::uint32_t>(shard));
  ShardStats& stats = stats_[shard];
  Queue& queue = queues_[shard];
  stats.max_queue = std::max(stats.max_queue, queue.size());
  std::uint64_t executed = 0;
  while (!queue.empty() && queue.top().time < window_end) {
    // Move the entry out before popping so the callback may push more
    // events into this queue.
    Entry entry = std::move(const_cast<Entry&>(queue.top()));
    queue.pop();
    ctx.actor = entry.target;
    ctx.now = entry.time;
    set_sim_time_context(entry.time);
    ++executed;
    entry.fn();
  }
  if (executed > 0 && obs::trace_enabled(obs::TraceCategory::kShard)) {
    set_sim_time_context(window_end);
    PPO_TRACE_COUNTER(obs::TraceCategory::kShard, "window_events",
                      obs::kExternalOrigin, executed);
  }
  tls_ctx = prev;
  obs::set_trace_shard(0);
  stats.events += executed;
  ++stats.windows;
  if (options_.profile) {
    window_busy_[shard] =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    stats.busy_seconds += window_busy_[shard];
  }
}

void ShardedSimulator::drain_mailboxes() {
  // Single-threaded at the barrier. Push order is irrelevant: the
  // queues order by the globally unique (time, origin, seq) key.
  std::size_t drained = 0;
  for (auto& row : mailboxes_) {
    for (std::size_t dst = 0; dst < row.size(); ++dst) {
      drained += row[dst].size();
      for (Entry& entry : row[dst]) queues_[dst].push(std::move(entry));
      row[dst].clear();
    }
  }
  if (drained > 0 && obs::trace_enabled(obs::TraceCategory::kSim)) {
    set_sim_time_context(window_end_);
    PPO_TRACE_COUNTER(obs::TraceCategory::kSim, "mailbox_drained",
                      obs::kExternalOrigin, drained);
  }
}

std::size_t ShardedSimulator::run_until(Time end) {
  PPO_CHECK_MSG(!in_window_, "run_until is not reentrant");
  PPO_CHECK_MSG(std::isfinite(end) && end >= now_, "cannot run backwards");
  const std::uint64_t before = events_executed();
  while (now_ < end) {
    const Time window_end = std::min(now_ + options_.lookahead, end);
    PPO_CHECK_MSG(window_end > now_, "window degenerated (clock too large "
                                     "for the lookahead resolution)");
    window_end_ = window_end;
    in_window_ = true;
    if (pool_ == nullptr) {
      run_shard_window(0, window_end);
    } else {
      using Clock = std::chrono::steady_clock;
      const auto wall_start =
          options_.profile ? Clock::now() : Clock::time_point{};
      for (std::size_t s = 0; s < queues_.size(); ++s) {
        pool_->submit([this, s, window_end] {
          run_shard_window(s, window_end);
        });
      }
      pool_->drain();  // barrier; rethrows a worker's exception
      if (options_.profile) {
        // A shard's stall is the tail of the window it spent waiting
        // for the slowest shard — the skew trace_summarize tabulates.
        const double window_wall =
            std::chrono::duration<double>(Clock::now() - wall_start).count();
        auto* live = obs::live_metrics();
        for (std::size_t s = 0; s < stats_.size(); ++s) {
          const double stall = std::max(0.0, window_wall - window_busy_[s]);
          stats_[s].stall_seconds += stall;
          if (live != nullptr) {
            // Per-window wall-clock load profile, streamed into the
            // live registry at the barrier (coordinator thread only,
            // after the workers joined — no concurrent writers).
            // Wall-clock-side: values never feed back into the sim.
            const obs::MetricDims dims{{"shard", std::to_string(s)}};
            live->observe("shard_window_busy_seconds", window_busy_[s], dims);
            live->observe("shard_window_stall_seconds", stall, dims);
          }
        }
      }
    }
    in_window_ = false;
    drain_mailboxes();
    now_ = window_end;
    set_sim_time_context(now_);
    if (barrier_hook_) barrier_hook_();
  }
  return static_cast<std::size_t>(events_executed() - before);
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = events_base_;
  for (const ShardStats& s : stats_) total += s.events;
  return total;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t total = 0;
  for (const Queue& q : queues_) total += q.size();
  for (const auto& row : mailboxes_)
    for (const auto& box : row) total += box.size();
  return total;
}

}  // namespace ppo::sim
