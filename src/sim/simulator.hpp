// Discrete-event simulation core. The paper's evaluation runs on "a
// custom event-based simulation environment" where events occur at
// arbitrary times within a shuffling period; this engine provides
// exactly that: a virtual clock, a stable-ordered pending-event heap
// and deterministic execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"

namespace ppo::sim {

/// Virtual time. The unit throughout the library is one shuffling
/// period (paper §IV).
using Time = double;

using EventFn = std::function<void()>;

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Events at equal
  /// times run in scheduling order (stable).
  void schedule_at(Time t, EventFn fn);

  /// Schedules `fn` `delay` time units from now (delay >= 0).
  void schedule_after(Time delay, EventFn fn);

  /// Runs events with time <= `end`, then advances the clock to
  /// `end`. Returns the number of events executed.
  std::size_t run_until(Time end);

  /// Runs until the queue drains or `max_events` executed.
  std::size_t run_all(std::size_t max_events = kDefaultEventBudget);

  /// Executes exactly the next pending event, if any; returns whether
  /// one ran.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  /// Drops all pending events; the clock is unchanged.
  void clear();

  static constexpr std::size_t kDefaultEventBudget = 500'000'000;

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void execute_next();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ppo::sim
