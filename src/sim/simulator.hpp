// Discrete-event simulation core. The paper's evaluation runs on "a
// custom event-based simulation environment" where events occur at
// arbitrary times within a shuffling period; this engine provides
// exactly that: a virtual clock, a stable-ordered pending-event heap
// and deterministic execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "sim/backend.hpp"

namespace ppo::sim {

/// The serial backend: one global queue, ties broken by scheduling
/// order. See backend.hpp for the interface contract and
/// sharded_simulator.hpp for the parallel backend.
class Simulator final : public SimulatorBackend {
 public:
  Time now() const override { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Events at equal
  /// times run in scheduling order (stable).
  void schedule_at(Time t, EventFn fn) override;

  /// The serial backend has no shards: the actor is ignored.
  void schedule_at_for(ActorId /*actor*/, Time t, EventFn fn) override {
    schedule_at(t, std::move(fn));
  }

  /// Runs events with time <= `end`, then advances the clock to
  /// `end`. Returns the number of events executed.
  std::size_t run_until(Time end);

  /// Runs until the queue drains or `max_events` executed.
  std::size_t run_all(std::size_t max_events = kDefaultEventBudget);

  /// Executes exactly the next pending event, if any; returns whether
  /// one ran.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  /// Drops all pending events; the clock is unchanged.
  void clear();

  /// --- checkpoint/restore -------------------------------------------
  /// The serial backend identifies every event by a single global
  /// sequence counter; tickets carry kExternalActor as origin.
  EventTicket last_ticket() const override { return last_ticket_; }
  std::uint64_t next_seq() const { return next_seq_; }

  /// Overwrites clock and counters from a checkpoint. Only valid on a
  /// freshly constructed (or clear()ed) simulator with an empty queue.
  void restore_state(Time now, std::uint64_t next_seq,
                     std::uint64_t executed);

  /// Re-inserts a pending event at its original position in the
  /// deterministic order: `seq` is the sequence number the event had
  /// when first scheduled (must be < the restored next_seq).
  void restore_event(Time t, std::uint64_t seq, EventFn fn);

  static constexpr std::size_t kDefaultEventBudget = 500'000'000;

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void execute_next();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  EventTicket last_ticket_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ppo::sim
