// Deterministically-parallel simulation backend: actors (overlay
// nodes) are partitioned into K shards by a stable hash of their id,
// each shard owns a private event queue, and the shards execute in
// lockstep windows of one lookahead interval on a runner::ThreadPool.
//
// Determinism contract (the whole point): for a fixed root seed the
// simulation trajectory is BIT-IDENTICAL for every shard count K,
// provided the protocol obeys two rules that the overlay stack
// satisfies by construction (and this class enforces with checks):
//
//  1. Lookahead. Every event one actor schedules for a *different*
//     actor lies at least `lookahead` in the future (transport
//     latency >= min_latency). Windows are exactly `lookahead` long,
//     so a cross-actor event sent inside window w always executes in
//     window w+1 or later — on every K, including K=1. Cross-shard
//     events travel through per-(src,dst) mailboxes that are drained
//     single-threaded at the window barrier; a cross-shard event that
//     would land inside the current window is a hard error.
//
//  2. Node-keyed state. Actors only touch their own state (plus
//     read-only shared structures) while a window runs; anything
//     shared mutably is published at barriers.
//
// Canonical ordering: every event carries (time, origin actor,
// per-origin sequence number). That triple is a total order that does
// not depend on sharding — the per-origin counter advances with the
// origin's own execution, which rule 1+2 make K-invariant — and every
// shard queue pops in that order. Equal-time events from different
// origins are ordered by origin id, not by arrival.
//
// run_until(end) is EXCLUSIVE of events at exactly `end` (they run in
// the next call), unlike the serial Simulator's inclusive run_until:
// a window pops strictly-less-than its end so that an event at a
// barrier executes in the next window no matter which side of the
// mailbox it arrived on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "sim/backend.hpp"

namespace ppo::runner {
class ThreadPool;
}

namespace ppo::sim {

class ShardedSimulator final : public SimulatorBackend {
 public:
  struct Options {
    /// Shard (and worker-thread) count. 1 = serial execution on the
    /// caller's thread, still with the canonical event order — the
    /// reference run every K is bit-identical to.
    std::size_t shards = 1;
    /// Number of actors; actor ids must be < num_actors.
    std::size_t num_actors = 0;
    /// Window length per lockstep epoch. Must be <= the minimum
    /// cross-actor event latency (transport min_latency).
    Time lookahead = 0.01;
    /// Collect per-shard wall-clock busy/stall timings (two steady
    /// clock reads per shard per window). Event/mailbox/queue-depth
    /// counters in ShardStats are maintained regardless.
    bool profile = false;
  };

  /// Per-shard load profile, the input to the shard-skew analysis in
  /// tools/trace_summarize. Counter fields are exact and K-invariant;
  /// the *_seconds fields are wall-clock and only filled when
  /// Options::profile is set.
  struct ShardStats {
    std::uint64_t events = 0;        // events executed on this shard
    std::uint64_t windows = 0;       // windows this shard participated in
    std::uint64_t mailbox_out = 0;   // cross-shard events sent from here
    std::size_t max_queue = 0;       // high-water pending-queue depth
    double busy_seconds = 0.0;       // wall time inside run_shard_window
    double stall_seconds = 0.0;      // window wall time minus busy time
  };

  explicit ShardedSimulator(Options options);
  ~ShardedSimulator() override;

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  // --- SimulatorBackend ---
  Time now() const override;
  void schedule_at(Time t, EventFn fn) override;
  void schedule_at_for(ActorId actor, Time t, EventFn fn) override;

  /// Runs lockstep windows until `end` (exclusive of events exactly at
  /// `end`); the clock advances to `end`. Returns events executed.
  std::size_t run_until(Time end);

  std::size_t num_shards() const { return queues_.size(); }
  std::size_t num_actors() const { return options_.num_actors; }
  Time lookahead() const { return options_.lookahead; }

  /// Stable shard assignment: a SplitMix64 hash of the actor id, so
  /// the mapping is independent of insertion order and uniform even
  /// for clustered id ranges.
  static std::size_t shard_of(ActorId actor, std::size_t shards);
  std::size_t shard_of(ActorId actor) const {
    return shard_of(actor, num_shards());
  }

  /// Shard of the actor executing on the calling thread, or kNoShard
  /// outside of a window (setup / measurement code).
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  std::size_t current_shard() const;

  /// Runs single-threaded at the end of every window, after
  /// cross-shard mail has been delivered — the publication point for
  /// per-shard buffers (e.g. freshly minted pseudonyms).
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  std::uint64_t events_executed() const;
  std::size_t pending() const;
  bool idle() const { return pending() == 0; }

  /// One entry per shard; read only between run_until calls.
  const std::vector<ShardStats>& shard_stats() const { return stats_; }

  /// --- checkpoint/restore -------------------------------------------
  /// Tickets carry (origin actor, per-origin seq) — the K-invariant
  /// half of the canonical order, so a checkpoint written at shard
  /// count K restores at any K' >= 1.
  EventTicket last_ticket() const override;
  const std::vector<std::uint64_t>& actor_seqs() const { return actor_seq_; }
  std::uint64_t external_seq() const { return external_seq_; }

  /// Overwrites the clock and sequence counters from a checkpoint.
  /// Only valid on a freshly constructed simulator (empty queues);
  /// `events_base` folds the pre-checkpoint event count into
  /// events_executed() so counters stay continuous across a resume.
  void restore_state(Time now, std::uint64_t events_base,
                     const std::vector<std::uint64_t>& actor_seqs,
                     std::uint64_t external_seq);

  /// Re-inserts a pending event under its original canonical key
  /// (time, origin, seq), routed to `target`'s shard under the
  /// *current* shard count — the step that makes checkpoints
  /// K-portable. Bypasses window/lookahead checks (restore runs
  /// strictly between windows).
  void restore_event(Time t, ActorId origin, std::uint64_t seq,
                     ActorId target, EventFn fn);

 private:
  struct Entry {
    Time time = 0.0;
    /// Scheduling actor and its per-origin sequence number:
    /// (time, origin, seq) is the canonical, K-invariant total order.
    ActorId origin = kExternalActor;
    std::uint64_t seq = 0;
    /// Actor the event runs as (= the executing context for events it
    /// schedules in turn).
    ActorId target = kExternalActor;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.origin != b.origin) return a.origin > b.origin;
      return a.seq > b.seq;
    }
  };
  using Queue = std::priority_queue<Entry, std::vector<Entry>, Later>;

  void run_shard_window(std::size_t shard, Time window_end);
  void drain_mailboxes();

  Options options_;
  Time now_ = 0.0;         // window floor (authoritative between windows)
  Time window_end_ = 0.0;  // current window's exclusive end
  bool in_window_ = false;
  std::vector<Queue> queues_;  // one per shard, owned by its worker
  /// mailboxes_[src][dst]: cross-shard events written lock-free by
  /// shard src's worker during a window, drained at the barrier.
  std::vector<std::vector<std::vector<Entry>>> mailboxes_;
  /// Per-origin sequence counters. actor_seq_[a] is only touched
  /// while actor a executes (on a's shard), so it needs no lock and
  /// its value stream is K-invariant.
  std::vector<std::uint64_t> actor_seq_;
  std::uint64_t external_seq_ = 0;  // origin counter for setup events
  /// Ticket of the most recent schedule made outside event context;
  /// in-context tickets live in the worker's ExecContext.
  EventTicket external_last_ticket_;
  /// Events executed before the checkpoint this run resumed from.
  std::uint64_t events_base_ = 0;
  /// stats_[s] is written by shard s's worker during a window (events,
  /// mailbox_out, max_queue, busy) and by the coordinator at barriers
  /// (stall) — never both at once.
  std::vector<ShardStats> stats_;
  /// Busy wall-seconds of the window in flight, per shard; consumed by
  /// the coordinator right after the barrier to compute stall.
  std::vector<double> window_busy_;
  std::function<void()> barrier_hook_;
  std::unique_ptr<runner::ThreadPool> pool_;  // absent when shards == 1
};

}  // namespace ppo::sim
