#include "sim/periodic.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::sim {

namespace {

void schedule_tick(SimulatorBackend& sim, Time delay, Time period,
                   ActorId actor, std::shared_ptr<PeriodicTask::State> state,
                   EventFn fn);

struct Tick {
  SimulatorBackend* sim;
  Time period;
  ActorId actor;
  std::shared_ptr<PeriodicTask::State> state;
  EventFn fn;

  void operator()() {
    if (!state->active) return;
    fn();
    if (state->active) schedule_tick(*sim, period, period, actor, state, fn);
  }
};

void schedule_tick(SimulatorBackend& sim, Time delay, Time period,
                   ActorId actor, std::shared_ptr<PeriodicTask::State> state,
                   EventFn fn) {
  Tick tick{&sim, period, actor, std::move(state), std::move(fn)};
  if (actor == kExternalActor) {
    sim.schedule_after(delay, std::move(tick));
  } else {
    sim.schedule_for(actor, delay, std::move(tick));
  }
}

}  // namespace

PeriodicTask PeriodicTask::start(SimulatorBackend& sim, Time phase,
                                 Time period, EventFn fn, ActorId actor) {
  PPO_CHECK_MSG(period > 0.0, "period must be positive");
  PeriodicTask task;
  task.state_ = std::make_shared<State>();
  schedule_tick(sim, phase, period, actor, task.state_, std::move(fn));
  return task;
}

void PeriodicTask::cancel() {
  if (state_) state_->active = false;
}

}  // namespace ppo::sim
