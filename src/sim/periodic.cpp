#include "sim/periodic.hpp"

#include <utility>

#include "common/check.hpp"
#include "sim/restore.hpp"

namespace ppo::sim {

namespace {

void schedule_tick(SimulatorBackend& sim, Time delay, Time period,
                   ActorId actor, std::shared_ptr<PeriodicTask::State> state,
                   EventFn fn);

struct Tick {
  SimulatorBackend* sim;
  Time period;
  ActorId actor;
  std::shared_ptr<PeriodicTask::State> state;
  EventFn fn;

  void operator()() {
    if (!state->active) return;
    fn();
    if (state->active) schedule_tick(*sim, period, period, actor, state, fn);
  }
};

void schedule_tick(SimulatorBackend& sim, Time delay, Time period,
                   ActorId actor, std::shared_ptr<PeriodicTask::State> state,
                   EventFn fn) {
  PeriodicTask::State* raw = state.get();
  const Time fire = sim.now() + delay;
  Tick tick{&sim, period, actor, std::move(state), std::move(fn)};
  if (actor == kExternalActor) {
    sim.schedule_after(delay, std::move(tick));
  } else {
    sim.schedule_for(actor, delay, std::move(tick));
  }
  raw->next_fire = fire;
  raw->ticket = sim.last_ticket();
}

}  // namespace

PeriodicTask PeriodicTask::start(SimulatorBackend& sim, Time phase,
                                 Time period, EventFn fn, ActorId actor) {
  PPO_CHECK_MSG(period > 0.0, "period must be positive");
  PeriodicTask task;
  task.state_ = std::make_shared<State>();
  schedule_tick(sim, phase, period, actor, task.state_, std::move(fn));
  return task;
}

PeriodicTask PeriodicTask::restore(SimulatorBackend& sim, Time next_fire,
                                   EventTicket ticket, Time period,
                                   EventFn fn, ActorId actor) {
  PPO_CHECK_MSG(period > 0.0, "period must be positive");
  PeriodicTask task;
  task.state_ = std::make_shared<State>();
  task.state_->next_fire = next_fire;
  task.state_->ticket = ticket;
  restore_event_any(sim, next_fire, ticket, actor,
                    Tick{&sim, period, actor, task.state_, std::move(fn)});
  return task;
}

void PeriodicTask::cancel() {
  if (state_) state_->active = false;
}

}  // namespace ppo::sim
