#include "sim/periodic.hpp"

#include <utility>

namespace ppo::sim {

namespace {

void schedule_tick(Simulator& sim, Time delay, Time period,
                   std::shared_ptr<PeriodicTask::State> state, EventFn fn);

struct Tick {
  Simulator* sim;
  Time period;
  std::shared_ptr<PeriodicTask::State> state;
  EventFn fn;

  void operator()() {
    if (!state->active) return;
    fn();
    if (state->active) schedule_tick(*sim, period, period, state, fn);
  }
};

void schedule_tick(Simulator& sim, Time delay, Time period,
                   std::shared_ptr<PeriodicTask::State> state, EventFn fn) {
  sim.schedule_after(delay,
                     Tick{&sim, period, std::move(state), std::move(fn)});
}

}  // namespace

PeriodicTask PeriodicTask::start(Simulator& sim, Time phase, Time period,
                                 EventFn fn) {
  PPO_CHECK_MSG(period > 0.0, "period must be positive");
  PeriodicTask task;
  task.state_ = std::make_shared<State>();
  schedule_tick(sim, phase, period, task.state_, std::move(fn));
  return task;
}

void PeriodicTask::cancel() {
  if (state_) state_->active = false;
}

}  // namespace ppo::sim
