// Backend-generic event restoration. Components journal their pending
// events as (fire time, ticket, rebuild recipe); at restore they hold
// only a SimulatorBackend& and need to re-insert the event under its
// original canonical key on whichever concrete backend is running.
#pragma once

#include "sim/backend.hpp"

namespace ppo::sim {

/// Re-inserts a pending event on the concrete backend behind `sim`:
/// Simulator uses the ticket's seq against its global counter,
/// ShardedSimulator uses the full (origin, seq) key and routes to
/// `target`'s shard. Aborts on a backend that supports neither
/// (checkpointing is only defined for the two real cores).
void restore_event_any(SimulatorBackend& sim, Time t, EventTicket ticket,
                       ActorId target, EventFn fn);

}  // namespace ppo::sim
