// Cancellable periodic task on top of the Simulator — used for
// shuffle ticks and metric sampling.
#pragma once

#include <memory>

#include "sim/simulator.hpp"

namespace ppo::sim {

/// Handle to a periodic task; destroying or cancelling it stops the
/// task after any in-flight event fires (the event checks liveness).
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Starts `fn` at now + `phase`, then every `period`.
  static PeriodicTask start(Simulator& sim, Time phase, Time period,
                            EventFn fn);

  bool active() const { return state_ && state_->active; }
  void cancel();

  /// Shared liveness flag; public so the scheduling machinery in the
  /// implementation file can reference the type.
  struct State {
    bool active = true;
  };

 private:
  std::shared_ptr<State> state_;
};

}  // namespace ppo::sim
