// Cancellable periodic task on top of a SimulatorBackend — used for
// shuffle ticks and metric sampling.
#pragma once

#include <memory>

#include "sim/backend.hpp"

namespace ppo::sim {

/// Handle to a periodic task; destroying or cancelling it stops the
/// task after any in-flight event fires (the event checks liveness).
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Starts `fn` at now + `phase`, then every `period`. When `actor`
  /// is given, every tick is scheduled for that actor — required on
  /// the sharded backend, where a task must belong to a shard; the
  /// serial backend ignores it.
  static PeriodicTask start(SimulatorBackend& sim, Time phase, Time period,
                            EventFn fn, ActorId actor = kExternalActor);

  bool active() const { return state_ && state_->active; }
  void cancel();

  /// Rebuilds a task whose next tick was pending when a checkpoint was
  /// taken: re-inserts the tick at its recorded (next_fire, ticket)
  /// position without drawing anything; the chain then continues
  /// normally (each tick re-schedules the next). Only meaningful on
  /// backends with restore support (sim/restore.hpp).
  static PeriodicTask restore(SimulatorBackend& sim, Time next_fire,
                              EventTicket ticket, Time period, EventFn fn,
                              ActorId actor = kExternalActor);

  /// When a checkpoint is taken between ticks, these name the pending
  /// tick: its absolute fire time and its scheduling ticket.
  Time next_fire() const { return state_ ? state_->next_fire : 0.0; }
  EventTicket ticket() const {
    return state_ ? state_->ticket : EventTicket{};
  }

  /// Shared liveness flag plus the pending tick's identity; public so
  /// the scheduling machinery in the implementation file can reference
  /// the type.
  struct State {
    bool active = true;
    Time next_fire = 0.0;
    EventTicket ticket;
  };

 private:
  std::shared_ptr<State> state_;
};

}  // namespace ppo::sim
