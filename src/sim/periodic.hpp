// Cancellable periodic task on top of a SimulatorBackend — used for
// shuffle ticks and metric sampling.
#pragma once

#include <memory>

#include "sim/backend.hpp"

namespace ppo::sim {

/// Handle to a periodic task; destroying or cancelling it stops the
/// task after any in-flight event fires (the event checks liveness).
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Starts `fn` at now + `phase`, then every `period`. When `actor`
  /// is given, every tick is scheduled for that actor — required on
  /// the sharded backend, where a task must belong to a shard; the
  /// serial backend ignores it.
  static PeriodicTask start(SimulatorBackend& sim, Time phase, Time period,
                            EventFn fn, ActorId actor = kExternalActor);

  bool active() const { return state_ && state_->active; }
  void cancel();

  /// Shared liveness flag; public so the scheduling machinery in the
  /// implementation file can reference the type.
  struct State {
    bool active = true;
  };

 private:
  std::shared_ptr<State> state_;
};

}  // namespace ppo::sim
