#include "sim/backend.hpp"

#include <utility>

#include "common/check.hpp"

namespace ppo::sim {

void SimulatorBackend::schedule_after(Time delay, EventFn fn) {
  PPO_CHECK_MSG(delay >= 0.0, "negative delay");
  schedule_at(now() + delay, std::move(fn));
}

void SimulatorBackend::schedule_for(ActorId actor, Time delay, EventFn fn) {
  PPO_CHECK_MSG(delay >= 0.0, "negative delay");
  schedule_at_for(actor, now() + delay, std::move(fn));
}

}  // namespace ppo::sim
