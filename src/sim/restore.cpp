#include "sim/restore.hpp"

#include <utility>

#include "common/check.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"

namespace ppo::sim {

void restore_event_any(SimulatorBackend& sim, Time t, EventTicket ticket,
                       ActorId target, EventFn fn) {
  if (auto* serial = dynamic_cast<Simulator*>(&sim)) {
    serial->restore_event(t, ticket.seq, std::move(fn));
    return;
  }
  if (auto* sharded = dynamic_cast<ShardedSimulator*>(&sim)) {
    sharded->restore_event(t, ticket.origin, ticket.seq, target,
                           std::move(fn));
    return;
  }
  PPO_CHECK_MSG(false, "checkpoint restore needs a real simulator backend");
}

}  // namespace ppo::sim
