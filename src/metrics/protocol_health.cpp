#include "metrics/protocol_health.hpp"

#include <limits>

namespace ppo::metrics {

namespace {
std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  return a > max - b ? max : a + b;
}
}  // namespace

double ProtocolHealth::completion_rate() const {
  // Retries can exceed requests in a merge of partial snapshots (a
  // retry counted in one window, its original request in another);
  // clamp instead of wrapping to a huge denominator.
  const std::uint64_t initiated =
      requests_sent >= request_retries ? requests_sent - request_retries : 0;
  if (initiated == 0) return 0.0;
  return static_cast<double>(exchanges_completed) /
         static_cast<double>(initiated);
}

double ProtocolHealth::honest_completion_rate() const {
  const std::uint64_t initiated =
      honest_requests_sent >= honest_request_retries
          ? honest_requests_sent - honest_request_retries
          : 0;
  if (initiated == 0) return 0.0;
  return static_cast<double>(honest_exchanges_completed) /
         static_cast<double>(initiated);
}

double ProtocolHealth::delivery_rate() const {
  if (messages_sent == 0) return 0.0;
  return static_cast<double>(messages_delivered) /
         static_cast<double>(messages_sent);
}

ProtocolHealth& ProtocolHealth::merge(const ProtocolHealth& other) {
  requests_sent = saturating_add(requests_sent, other.requests_sent);
  responses_sent = saturating_add(responses_sent, other.responses_sent);
  exchanges_completed =
      saturating_add(exchanges_completed, other.exchanges_completed);
  request_timeouts = saturating_add(request_timeouts, other.request_timeouts);
  request_retries = saturating_add(request_retries, other.request_retries);
  exchanges_aborted =
      saturating_add(exchanges_aborted, other.exchanges_aborted);
  stale_responses = saturating_add(stale_responses, other.stale_responses);
  messages_sent = saturating_add(messages_sent, other.messages_sent);
  messages_delivered =
      saturating_add(messages_delivered, other.messages_delivered);
  messages_dropped = saturating_add(messages_dropped, other.messages_dropped);
  forged_rejected = saturating_add(forged_rejected, other.forged_rejected);
  requests_rate_limited =
      saturating_add(requests_rate_limited, other.requests_rate_limited);
  displacements_damped =
      saturating_add(displacements_damped, other.displacements_damped);
  forged_injected = saturating_add(forged_injected, other.forged_injected);
  replays_injected = saturating_add(replays_injected, other.replays_injected);
  eclipse_records_injected = saturating_add(eclipse_records_injected,
                                            other.eclipse_records_injected);
  responses_suppressed =
      saturating_add(responses_suppressed, other.responses_suppressed);
  slots_eclipsed = saturating_add(slots_eclipsed, other.slots_eclipsed);
  honest_requests_sent =
      saturating_add(honest_requests_sent, other.honest_requests_sent);
  honest_request_retries =
      saturating_add(honest_request_retries, other.honest_request_retries);
  honest_exchanges_completed = saturating_add(
      honest_exchanges_completed, other.honest_exchanges_completed);
  return *this;
}

}  // namespace ppo::metrics
