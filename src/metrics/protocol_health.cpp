#include "metrics/protocol_health.hpp"

namespace ppo::metrics {

double ProtocolHealth::completion_rate() const {
  const std::uint64_t initiated = requests_sent - request_retries;
  if (initiated == 0) return 0.0;
  return static_cast<double>(exchanges_completed) /
         static_cast<double>(initiated);
}

double ProtocolHealth::delivery_rate() const {
  if (messages_sent == 0) return 0.0;
  return static_cast<double>(messages_delivered) /
         static_cast<double>(messages_sent);
}

ProtocolHealth& ProtocolHealth::merge(const ProtocolHealth& other) {
  requests_sent += other.requests_sent;
  responses_sent += other.responses_sent;
  exchanges_completed += other.exchanges_completed;
  request_timeouts += other.request_timeouts;
  request_retries += other.request_retries;
  exchanges_aborted += other.exchanges_aborted;
  stale_responses += other.stale_responses;
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  messages_dropped += other.messages_dropped;
  return *this;
}

}  // namespace ppo::metrics
