// Protocol-level degradation accounting (fault-tolerance extension):
// aggregates the per-node shuffle counters and the transport's
// sent/delivered tallies into one health record that every figure's
// JSON report can carry.
#pragma once

#include <cstdint>

namespace ppo::metrics {

struct ProtocolHealth {
  // Overlay-protocol counters (summed over nodes).
  std::uint64_t requests_sent = 0;   // retransmissions included
  std::uint64_t responses_sent = 0;
  std::uint64_t exchanges_completed = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t request_retries = 0;
  std::uint64_t exchanges_aborted = 0;
  std::uint64_t stale_responses = 0;

  // Transport-level accounting.
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;

  /// Fraction of initiated exchanges that saw their response.
  /// Retransmissions of the same exchange are not double-counted in
  /// the denominator.
  double completion_rate() const;

  /// Fraction of accepted sends the transport actually delivered.
  double delivery_rate() const;

  /// Counter-wise sum, saturating at the uint64 maximum instead of
  /// wrapping (replicated sweeps merge many runs).
  ProtocolHealth& merge(const ProtocolHealth& other);
};

}  // namespace ppo::metrics
