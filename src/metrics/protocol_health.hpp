// Protocol-level degradation accounting (fault-tolerance extension):
// aggregates the per-node shuffle counters and the transport's
// sent/delivered tallies into one health record that every figure's
// JSON report can carry.
#pragma once

#include <cstdint>

namespace ppo::metrics {

struct ProtocolHealth {
  // Overlay-protocol counters (summed over nodes).
  std::uint64_t requests_sent = 0;   // retransmissions included
  std::uint64_t responses_sent = 0;
  std::uint64_t exchanges_completed = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t request_retries = 0;
  std::uint64_t exchanges_aborted = 0;
  std::uint64_t stale_responses = 0;

  // Transport-level accounting.
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;

  // Byzantine-adversary accounting (§III-E extension). Defense side:
  // what the protocol's countermeasures caught.
  std::uint64_t forged_rejected = 0;       // dropped by merge validation
  std::uint64_t requests_rate_limited = 0; // dropped by per-peer limiter
  std::uint64_t displacements_damped = 0;  // sampler slot-churn damping
  // Attack side: what the adversary engine injected (0 without one).
  std::uint64_t forged_injected = 0;
  std::uint64_t replays_injected = 0;
  std::uint64_t eclipse_records_injected = 0;
  std::uint64_t responses_suppressed = 0;
  /// Honest sampler slots resolving to an attacker at snapshot time.
  std::uint64_t slots_eclipsed = 0;
  /// The same shuffle counters restricted to HONEST nodes. Equal to
  /// the global counters without an adversary; under attack they are
  /// the fair basis for comparing defenses (the global rate also
  /// counts the attackers' own deliberately-starved exchanges).
  std::uint64_t honest_requests_sent = 0;
  std::uint64_t honest_request_retries = 0;
  std::uint64_t honest_exchanges_completed = 0;

  /// Fraction of initiated exchanges that saw their response.
  /// Retransmissions of the same exchange are not double-counted in
  /// the denominator.
  double completion_rate() const;

  /// completion_rate() over the honest subset.
  double honest_completion_rate() const;

  /// Fraction of accepted sends the transport actually delivered.
  double delivery_rate() const;

  /// Counter-wise sum, saturating at the uint64 maximum instead of
  /// wrapping (replicated sweeps merge many runs).
  ProtocolHealth& merge(const ProtocolHealth& other);
};

}  // namespace ppo::metrics
