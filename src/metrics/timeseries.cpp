#include "metrics/timeseries.hpp"

#include "common/check.hpp"

namespace ppo::metrics {

double TimeSeries::last_value() const {
  PPO_CHECK_MSG(!values_.empty(), "empty time series");
  return values_.back();
}

double TimeSeries::mean_since(double from) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= from) {
      sum += values_[i];
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void print_time_series(std::ostream& os, const std::string& title,
                       const std::vector<TimeSeries>& series, int precision) {
  PPO_CHECK_MSG(!series.empty(), "no series to print");
  const auto& grid = series.front().times();
  std::vector<Series> columns;
  for (const auto& s : series) {
    PPO_CHECK_MSG(s.times() == grid, "time grids differ across series");
    columns.push_back(Series{s.name(), s.values()});
  }
  print_series_table(os, title, "time", grid, columns, precision);
}

}  // namespace ppo::metrics
