// Time-series collection for the convergence / overhead figures.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"

namespace ppo::metrics {

/// One sampled (time, value) trace.
class TimeSeries {
 public:
  /// Default-constructs with an empty name so containers of traces
  /// (e.g. the runner's per-cell result slots) can be pre-sized.
  explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

  void record(double time, double value) {
    times_.push_back(time);
    values_.push_back(value);
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  std::size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double last_value() const;

  /// Mean of the values sampled at time >= from.
  double mean_since(double from) const;

 private:
  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

/// Aligns several series sampled on the SAME time grid into a
/// printable block. Throws if grids differ.
void print_time_series(std::ostream& os, const std::string& title,
                       const std::vector<TimeSeries>& series,
                       int precision = 4);

}  // namespace ppo::metrics
