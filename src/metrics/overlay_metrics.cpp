#include "metrics/overlay_metrics.hpp"

#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/paths.hpp"

namespace ppo::metrics {

GraphMetrics measure_graph(graph::GraphView g, const graph::NodeMask& online,
                           std::size_t total_nodes, Rng& rng,
                           std::size_t apl_sources) {
  GraphMetrics out;
  const auto comps = graph::connected_components(g, online);
  std::size_t included = 0;
  for (const auto c : comps.component_of)
    included += (c != graph::Components::kExcluded);
  out.online_nodes = included;
  out.largest_component = comps.largest_size();
  out.fraction_disconnected =
      included == 0 ? 0.0
                    : static_cast<double>(included - out.largest_component) /
                          static_cast<double>(included);

  out.avg_path_length = graph::average_path_length(g, rng, online, apl_sources);
  // Same definition as graph::normalized_average_path_length, reusing
  // the component decomposition and APL already computed above.
  out.normalized_avg_path_length =
      out.largest_component <= 1
          ? static_cast<double>(total_nodes)
          : out.avg_path_length /
                static_cast<double>(out.largest_component) *
                static_cast<double>(total_nodes);

  out.degree = graph::degree_histogram(g, online);

  // Count edges with both endpoints online by neighbor iteration
  // (u < v counts each once) — GraphView has no materialized edge
  // list, and this avoids the old path's edge-vector allocation.
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!online.contains(u)) continue;
    for (const graph::NodeId v : g.neighbors(u))
      out.online_edges += (u < v && online.contains(v));
  }

  return out;
}

}  // namespace ppo::metrics
