#include "metrics/overlay_metrics.hpp"

#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/paths.hpp"

namespace ppo::metrics {

GraphMetrics measure_graph(const graph::Graph& g,
                           const graph::NodeMask& online,
                           std::size_t total_nodes, Rng& rng,
                           std::size_t apl_sources) {
  GraphMetrics out;
  const auto comps = graph::connected_components(g, online);
  std::size_t included = 0;
  for (const auto c : comps.component_of)
    included += (c != graph::Components::kExcluded);
  out.online_nodes = included;
  out.largest_component = comps.largest_size();
  out.fraction_disconnected =
      included == 0 ? 0.0
                    : static_cast<double>(included - out.largest_component) /
                          static_cast<double>(included);

  out.avg_path_length = graph::average_path_length(g, rng, online, apl_sources);
  // Same definition as graph::normalized_average_path_length, reusing
  // the component decomposition and APL already computed above.
  out.normalized_avg_path_length =
      out.largest_component <= 1
          ? static_cast<double>(total_nodes)
          : out.avg_path_length /
                static_cast<double>(out.largest_component) *
                static_cast<double>(total_nodes);

  out.degree = graph::degree_histogram(g, online);

  for (const auto& [u, v] : g.edges())
    out.online_edges += (online.contains(u) && online.contains(v));

  return out;
}

}  // namespace ppo::metrics
