#include "metrics/streaming_connectivity.hpp"

#include <algorithm>

namespace ppo::metrics {

graph::NodeId StreamingConnectivity::find(graph::NodeId v) {
  if (gen_of_[v] != gen_) {
    gen_of_[v] = gen_;
    parent_[v] = v;
    size_[v] = 1;
  }
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

double StreamingConnectivity::fraction_disconnected(
    std::size_t n,
    std::span<const std::pair<graph::NodeId, graph::NodeId>> edges,
    const graph::NodeMask& online) {
  ++gen_;
  if (parent_.size() < n) {
    parent_.resize(n);
    size_.resize(n);
    gen_of_.resize(n, 0);
  }

  std::uint32_t largest = 0;
  for (const auto& [u, v] : edges) {
    if (!online.contains(u) || !online.contains(v)) continue;
    graph::NodeId ru = find(u);
    graph::NodeId rv = find(v);
    if (ru == rv) continue;
    if (size_[ru] < size_[rv]) std::swap(ru, rv);
    parent_[rv] = ru;
    size_[ru] += size_[rv];
    largest = std::max(largest, size_[ru]);
  }

  const std::size_t included = online.count(n);
  if (included == 0) {
    largest_ = 0;
    return 0.0;
  }
  // An online node with no online edges is a component of size 1.
  largest_ = std::max<std::size_t>(largest, 1);
  return static_cast<double>(included - largest_) /
         static_cast<double>(included);
}

}  // namespace ppo::metrics
