// The paper's robustness metrics (§IV-C), all evaluated on the
// subgraph induced by the online nodes.
#pragma once

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace ppo::metrics {

struct GraphMetrics {
  /// Fraction of online nodes outside the largest connected
  /// component (0 = fully connected).
  double fraction_disconnected = 0.0;

  /// Average path length in the LCC / |LCC| * total nodes.
  double normalized_avg_path_length = 0.0;

  /// Raw average path length within the LCC.
  double avg_path_length = 0.0;

  std::size_t online_nodes = 0;
  std::size_t largest_component = 0;
  /// Edges with both endpoints online.
  std::size_t online_edges = 0;

  /// Degree distribution over online nodes, counting only online
  /// neighbors (Figure 5's data).
  Histogram degree;
};

/// Measures `g` restricted to `online`; `total_nodes` is the full
/// population (offline included) used by the normalization.
/// `apl_sources` bounds the BFS sampling for path lengths. Accepts
/// any graph backing store (adjacency-list Graph, CsrGraph, or a
/// builder) via GraphView; sorted neighbor slices are NOT required —
/// nothing here probes edge membership.
GraphMetrics measure_graph(graph::GraphView g, const graph::NodeMask& online,
                           std::size_t total_nodes, Rng& rng,
                           std::size_t apl_sources = 48);

}  // namespace ppo::metrics
