// Streaming connectivity for the trace loops (Figure 8): the
// time-series only needs the fraction of online nodes outside the
// largest component, so a single union-find pass over the overlay
// edge list replaces the full measure_graph() snapshot (components +
// BFS path sampling + degree histogram) per sample point.
//
// The disjoint-set arrays are generation-stamped: measure() bumps a
// generation counter instead of clearing, and find() lazily
// initializes a node the first time the current generation touches
// it. Repeated samples over a large population reset in O(1).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace ppo::metrics {

class StreamingConnectivity {
 public:
  /// Fraction of online nodes outside the largest connected component
  /// of the subgraph induced by `online` on `edges` — identical to
  /// GraphMetrics::fraction_disconnected on the same edge set.
  /// Duplicate edges are harmless (redundant unions). `n` is the
  /// node-id upper bound.
  double fraction_disconnected(
      std::size_t n,
      std::span<const std::pair<graph::NodeId, graph::NodeId>> edges,
      const graph::NodeMask& online);

  /// Size of the largest online component found by the last call.
  std::size_t largest_component() const { return largest_; }

 private:
  graph::NodeId find(graph::NodeId v);

  std::vector<graph::NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::vector<std::uint64_t> gen_of_;
  std::uint64_t gen_ = 0;
  std::size_t largest_ = 0;
};

}  // namespace ppo::metrics
