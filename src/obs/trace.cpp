#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "common/logging.hpp"

namespace ppo::obs {

namespace {

// PPO_LOG(kTrace) sink: turns kTrace log messages into kLog records.
void trace_log_sink(const std::string& message) {
  detail::emit_log(kExternalOrigin, message);
}
// Tracks which tracer this thread's cached buffer belongs to, so a
// fresh install after an uninstall re-attaches instead of writing into
// a dead tracer's buffer.
thread_local Tracer* tls_owner = nullptr;
thread_local void* tls_buffer = nullptr;

struct CategoryName {
  std::uint32_t bit;
  const char* name;
};
constexpr CategoryName kCategoryNames[] = {
    {static_cast<std::uint32_t>(TraceCategory::kSim), "sim"},
    {static_cast<std::uint32_t>(TraceCategory::kShard), "shard"},
    {static_cast<std::uint32_t>(TraceCategory::kShuffle), "shuffle"},
    {static_cast<std::uint32_t>(TraceCategory::kPseudonym), "pseudonym"},
    {static_cast<std::uint32_t>(TraceCategory::kTransport), "transport"},
    {static_cast<std::uint32_t>(TraceCategory::kChurn), "churn"},
    {static_cast<std::uint32_t>(TraceCategory::kLog), "log"},
    {static_cast<std::uint32_t>(TraceCategory::kUser), "user"},
    {static_cast<std::uint32_t>(TraceCategory::kAdversary), "adversary"},
    {static_cast<std::uint32_t>(TraceCategory::kInference), "inference"},
    {static_cast<std::uint32_t>(TraceCategory::kDht), "dht"},
    {static_cast<std::uint32_t>(TraceCategory::kRouting), "routing"},
};
}  // namespace

Tracer::Tracer(std::size_t capacity_per_buffer, TraceSink* sink)
    : capacity_per_buffer_(capacity_per_buffer), sink_(sink) {}

Tracer::Buffer* Tracer::attach_buffer() {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  return buffers_.back().get();
}

void Tracer::emit(TraceRecord&& record) {
  auto* buffer = static_cast<Buffer*>(tls_buffer);
  if (tls_owner != this || buffer == nullptr) {
    buffer = attach_buffer();
    tls_owner = this;
    tls_buffer = buffer;
  }
  if (buffer->records.size() >= capacity_per_buffer_) {
    if (sink_ == nullptr) {
      ++buffer->dropped;
      return;
    }
    flush_buffer(*buffer);
  }
  record.seq = buffer->seq++;
  buffer->records.push_back(std::move(record));
}

void Tracer::flush_buffer(Buffer& buffer) {
  if (buffer.records.empty()) return;
  std::lock_guard<std::mutex> lock(sink_mutex_);
  flushed_ += buffer.records.size();
  sink_->write(std::move(buffer.records));
  buffer.records.clear();
}

void Tracer::flush_to_sink() {
  if (sink_ == nullptr) return;
  std::lock_guard<std::mutex> attach(attach_mutex_);
  for (const auto& b : buffers_) flush_buffer(*b);
}

std::vector<TraceRecord> Tracer::merged() const {
  std::vector<TraceRecord> out;
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->records.size();
    out.reserve(total);
    // Concatenation order = buffer attach order; the stable sort below
    // keeps it as the tie-break after (time, origin), yielding the
    // canonical (time, origin, attach_order, seq) order.
    for (const auto& b : buffers_)
      out.insert(out.end(), b->records.begin(), b->records.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.origin < b.origin;
                   });
  return out;
}

std::uint64_t Tracer::records_recorded() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  std::uint64_t n = records_flushed();
  for (const auto& b : buffers_) n += b->records.size();
  return n;
}

std::uint64_t Tracer::records_flushed() const {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  return flushed_;
}

std::uint64_t Tracer::records_dropped() const {
  std::lock_guard<std::mutex> lock(attach_mutex_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->dropped;
  return n;
}

void install_tracer(Tracer* tracer, std::uint32_t mask) {
  detail::g_tracer.store(tracer, std::memory_order_release);
  detail::g_trace_mask.store(tracer != nullptr ? mask : kTraceNone,
                             std::memory_order_release);
  const bool route_logs =
      tracer != nullptr &&
      (mask & static_cast<std::uint32_t>(TraceCategory::kLog)) != 0;
  set_trace_log_sink(route_logs ? &trace_log_sink : nullptr);
}

void uninstall_tracer() {
  set_trace_log_sink(nullptr);
  detail::g_trace_mask.store(kTraceNone, std::memory_order_release);
  detail::g_tracer.store(nullptr, std::memory_order_release);
}

std::uint32_t trace_mask() {
  return detail::g_trace_mask.load(std::memory_order_acquire);
}

std::uint32_t parse_trace_categories(const std::string& spec) {
  std::string s;
  for (char c : spec)
    if (!std::isspace(static_cast<unsigned char>(c)))
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s.empty() || s == "none" || s == "off") return kTraceNone;
  if (s == "all") return kTraceAll;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string name = s.substr(pos, comma - pos);
    bool found = false;
    for (const auto& entry : kCategoryNames) {
      if (name == entry.name) {
        mask |= entry.bit;
        found = true;
        break;
      }
    }
    if (!found && !name.empty())
      throw std::invalid_argument("unknown trace category: " + name);
    pos = comma + 1;
  }
  return mask;
}

const char* trace_category_name(TraceCategory cat) {
  for (const auto& entry : kCategoryNames)
    if (entry.bit == static_cast<std::uint32_t>(cat)) return entry.name;
  return "?";
}

namespace detail {

namespace {
TraceRecord make_record(TraceCategory cat, TracePhase phase, const char* name,
                        std::uint32_t origin, std::uint64_t id, double value) {
  TraceRecord r;
  r.time = sim_time_context_active() ? sim_time_context() : 0.0;
  r.origin = origin;
  r.shard = g_trace_shard;
  r.category = cat;
  r.phase = phase;
  r.name = name;
  r.id = id;
  r.value = value;
  return r;
}

void dispatch(TraceRecord&& record) {
  Tracer* tracer = g_tracer.load(std::memory_order_acquire);
  if (tracer != nullptr) tracer->emit(std::move(record));
}
}  // namespace

void emit(TraceCategory cat, TracePhase phase, const char* name,
          std::uint32_t origin, std::uint64_t id, double value) {
  dispatch(make_record(cat, phase, name, origin, id, value));
}

void emit(TraceCategory cat, TracePhase phase, const char* name,
          std::uint32_t origin, std::uint64_t id, double value, TraceArg a0) {
  TraceRecord r = make_record(cat, phase, name, origin, id, value);
  r.args[0] = a0;
  dispatch(std::move(r));
}

void emit(TraceCategory cat, TracePhase phase, const char* name,
          std::uint32_t origin, std::uint64_t id, double value, TraceArg a0,
          TraceArg a1) {
  TraceRecord r = make_record(cat, phase, name, origin, id, value);
  r.args[0] = a0;
  r.args[1] = a1;
  dispatch(std::move(r));
}

void emit_log(std::uint32_t origin, std::string text) {
  TraceRecord r = make_record(TraceCategory::kLog, TracePhase::kInstant, "log",
                              origin, 0, 0.0);
  r.text = std::move(text);
  dispatch(std::move(r));
}

}  // namespace detail

}  // namespace ppo::obs
