// Named metrics registry: counters, gauges and histograms with
// free-form dimensions (per-node, per-shard, ...), scraped into figure
// `--json` reports next to ProtocolHealth and served live by the
// telemetry plane (src/telemetry) as Prometheus text format.
//
// Two usage modes share the one class:
//
//  - Scrape-time (the figure benches): populated single-threaded from
//    run results after the simulation finishes. The ordered maps give
//    deterministic layout, so reports diff cleanly.
//
//  - Live (service mode): installed process-wide via
//    install_live_metrics(), then worker threads bump counters and
//    observe() streaming histograms while a wall-clock scrape thread
//    renders concurrent snapshots. Structure (map) mutations and
//    plain counter/gauge writes take a shared_mutex; streaming
//    histogram samples are lock-free atomic increments behind a
//    shared (reader) lock. snapshot() is the race-free read path —
//    everything concurrent must go through it, never through the raw
//    map accessors.
//
// The live path is telemetry-only by contract: observations read
// simulation state, never write it, so trajectories are bit-identical
// with a live registry installed or not.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "obs/streaming_histogram.hpp"
#include "runner/json.hpp"

namespace ppo::obs {

/// Dimension list rendered into the metric key, e.g. {{"shard","3"}}.
using MetricDims = std::vector<std::pair<std::string, std::string>>;

/// Prometheus-style key: name alone, or `name{k=v,k2=v2}` with
/// dimensions in the order given.
std::string metric_key(const std::string& name, const MetricDims& dims);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// Deep copy at a quiescent point (benches return registries by
  /// value). The source is locked during the copy.
  MetricsRegistry(const MetricsRegistry& other);
  MetricsRegistry& operator=(const MetricsRegistry& other);

  /// Adds to a (creating-on-first-use) counter. Thread-safe.
  void add_counter(const std::string& name, std::uint64_t delta,
                   const MetricDims& dims = {});

  /// Sets a gauge to its latest value. Thread-safe.
  void set_gauge(const std::string& name, double value,
                 const MetricDims& dims = {});

  /// Histogram cell; add samples via the returned reference.
  /// Scrape-time only: the reference is mutated OUTSIDE the lock, so
  /// it must not race with snapshot() — live paths use streaming().
  Histogram& histogram(const std::string& name, const MetricDims& dims = {});

  /// Streaming (log-bucketed, lock-free) histogram cell for live
  /// observation. The reference is stable for the registry's lifetime;
  /// observe() on it is thread-safe against concurrent snapshot().
  StreamingHistogram& streaming(const std::string& name,
                                const MetricDims& dims = {});

  /// One-shot sample into a streaming histogram: shared-lock lookup on
  /// the hot path, creation on first use. Thread-safe.
  void observe(const std::string& name, double value,
               const MetricDims& dims = {});

  std::uint64_t counter(const std::string& key) const;  // 0 if absent
  bool empty() const;

  /// Race-free point-in-time copy of every cell; the concurrent read
  /// path (Prometheus rendering, JSONL sampling, to_json).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
    std::map<std::string, StreamingHistogram::Snapshot> streaming;

    bool empty() const {
      return counters.empty() && gauges.empty() && histograms.empty() &&
             streaming.empty();
    }
  };
  Snapshot snapshot() const;

  // Raw map accessors for quiescent single-threaded consumers (figure
  // JSON assembly). Do not hold these across concurrent updates — use
  // snapshot() instead.
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  /// node-based map: references stay valid across inserts, and
  /// StreamingHistogram's atomics never move once created.
  std::map<std::string, StreamingHistogram> streaming_;
};

/// {"counters": {...}, "gauges": {...}, "histograms": {key: {count,
/// mean, p50, p90, p95, p99, p999, max}}, "streaming": {key: {count,
/// mean, p50, p95, p99, p999, max}}} — keys sorted, so reports diff
/// cleanly. Reads through snapshot(), so it is safe concurrently with
/// live updates.
runner::Json to_json(const MetricsRegistry& registry);
runner::Json to_json(const MetricsRegistry::Snapshot& snapshot);

// --- live registry plumbing (mirrors the tracer's install pattern) --
//
// Instrumentation sites guard with `if (auto* reg = live_metrics())`:
// one relaxed atomic load plus a branch when telemetry is off, so the
// figure benches pay nothing. Install/uninstall only at quiescent
// points (no simulation windows in flight); the registry must outlive
// its installation.

namespace detail {
inline std::atomic<MetricsRegistry*> g_live_metrics{nullptr};
}

inline MetricsRegistry* live_metrics() {
  return detail::g_live_metrics.load(std::memory_order_relaxed);
}

void install_live_metrics(MetricsRegistry* registry);
void uninstall_live_metrics();

}  // namespace ppo::obs
