// Named metrics registry: counters, gauges and histograms with
// free-form dimensions (per-node, per-shard, ...), scraped into figure
// `--json` reports next to ProtocolHealth. Populated at scrape time
// from run results — it is not a hot-path structure, so it favours a
// deterministic, ordered layout over write throughput.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "runner/json.hpp"

namespace ppo::obs {

/// Dimension list rendered into the metric key, e.g. {{"shard","3"}}.
using MetricDims = std::vector<std::pair<std::string, std::string>>;

/// Prometheus-style key: name alone, or `name{k=v,k2=v2}` with
/// dimensions in the order given.
std::string metric_key(const std::string& name, const MetricDims& dims);

class MetricsRegistry {
 public:
  /// Adds to a (creating-on-first-use) counter.
  void add_counter(const std::string& name, std::uint64_t delta,
                   const MetricDims& dims = {});

  /// Sets a gauge to its latest value.
  void set_gauge(const std::string& name, double value,
                 const MetricDims& dims = {});

  /// Histogram cell; add samples via the returned reference.
  Histogram& histogram(const std::string& name, const MetricDims& dims = {});

  std::uint64_t counter(const std::string& key) const;  // 0 if absent
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// {"counters": {...}, "gauges": {...}, "histograms": {key: {count,
/// mean, p50, p90, p99, max}}} — keys sorted, so reports diff cleanly.
runner::Json to_json(const MetricsRegistry& registry);

}  // namespace ppo::obs
