// Lock-free streaming histogram over log-spaced buckets, the live
// counterpart of common/histogram.hpp's sparse integer Histogram.
//
// Built for the telemetry plane: worker threads observe() values
// (latencies in seconds, hop counts, queue depths) with one relaxed
// atomic increment per sample while a scrape thread snapshots the
// buckets concurrently — no mutex, no allocation, race-free under
// TSan. Quantile estimates come from the bucket boundaries, so their
// relative error is bounded by the bucket growth factor
// (2^(1/8) - 1 ~ 9%), which is plenty for p50/p95/p99/p99.9 gauges.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppo::obs {

class StreamingHistogram {
 public:
  /// 8 sub-buckets per power of two between 2^kMinExp and 2^kMaxExp:
  /// ~60 nanoseconds to ~10^12 when samples are latencies in seconds
  /// (and plenty of headroom for counts — hops, queue depths), with
  /// out-of-range samples clamped into the edge buckets. 512 buckets
  /// = 4 KiB of atomics per histogram.
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -24;
  static constexpr int kMaxExp = 40;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>((kMaxExp - kMinExp) * kSubBuckets);

  StreamingHistogram() = default;

  /// Deep value copy (relaxed loads). Only meaningful at quiescent
  /// points — registries are copied when benches return them by value,
  /// never while workers observe.
  StreamingHistogram(const StreamingHistogram& other);
  StreamingHistogram& operator=(const StreamingHistogram& other);

  /// Records one sample. Thread-safe and lock-free: one bucket
  /// fetch_add plus CAS loops for the sum/max cells.
  void observe(double value);

  /// Bucket index a value lands in (clamped to the edge buckets;
  /// values <= 0 land in bucket 0).
  static std::size_t bucket_index(double value);

  /// Exclusive upper bound of bucket `i` (the Prometheus `le` value).
  static double bucket_upper_bound(std::size_t i);

  /// Point-in-time copy, safe to take while other threads observe.
  /// Counts are each individually consistent (monotone snapshots may
  /// disagree by in-flight samples; never torn).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    bool empty() const { return count == 0; }
    double mean() const { return count == 0 ? 0.0 : sum / double(count); }
    /// Upper bound of the first bucket holding quantile q of the mass
    /// (0 when empty). q outside [0,1] is clamped.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }
  };
  Snapshot snapshot() const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  /// Stored as bit patterns so CAS loops work pre-atomic<double>
  /// fetch_add; see observe().
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> max_bits_{0};
};

}  // namespace ppo::obs
