#include "obs/streaming_histogram.hpp"

#include <bit>
#include <cmath>

namespace ppo::obs {

StreamingHistogram::StreamingHistogram(const StreamingHistogram& other) {
  *this = other;
}

StreamingHistogram& StreamingHistogram::operator=(
    const StreamingHistogram& other) {
  if (this == &other) return *this;
  for (std::size_t i = 0; i < kBuckets; ++i)
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_bits_.store(other.sum_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  max_bits_.store(other.max_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  return *this;
}

std::size_t StreamingHistogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN clamp low
  const double f = std::log2(value) * kSubBuckets;
  const double offset = std::floor(f) - double(kMinExp * kSubBuckets);
  if (offset < 0.0) return 0;
  if (offset >= double(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(offset);
}

double StreamingHistogram::bucket_upper_bound(std::size_t i) {
  return std::exp2(
      (double(i) + 1.0 + double(kMinExp * kSubBuckets)) / kSubBuckets);
}

void StreamingHistogram::observe(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Sum and max via CAS over bit patterns: atomic<double>::fetch_add
  // is C++20 but still libcall-heavy on some toolchains, and max has
  // no atomic primitive at all.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double desired = std::bit_cast<double>(expected) + value;
    if (sum_bits_.compare_exchange_weak(expected,
                                        std::bit_cast<std::uint64_t>(desired),
                                        std::memory_order_relaxed))
      break;
  }
  expected = max_bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) < value) {
    if (max_bits_.compare_exchange_weak(expected,
                                        std::bit_cast<std::uint64_t>(value),
                                        std::memory_order_relaxed))
      break;
  }
}

StreamingHistogram::Snapshot StreamingHistogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  snap.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  return snap;
}

double StreamingHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Smallest bucket whose cumulative count covers q of the mass;
  // ceil() so q = 0 still needs at least one sample, matching
  // Histogram::quantile's "at least q of the mass" contract.
  const double target_mass = q * double(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (double(cumulative) >= target_mass && cumulative > 0)
      return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

}  // namespace ppo::obs
