// Deterministic simulation-time event tracer.
//
// Design constraints, in order:
//  1. Zero overhead when disabled: every PPO_TRACE_* site compiles to
//     one relaxed atomic load + branch; argument expressions are only
//     evaluated when the category is enabled.
//  2. Must not perturb trajectories: emitting a record touches no RNG,
//     no simulation state and no shared mutable state on the hot path
//     (per-thread buffers, attached under a mutex only on the first
//     record a thread ever writes).
//  3. Canonical merge order: records are merged in (sim_time, origin,
//     attach_order, seq) order. An actor is pinned to one shard and a
//     window executes on one thread, so all records for a given
//     (time, origin) land in a single buffer and their relative order
//     is the K-invariant execution order.
//
// Usage: construct a Tracer, install_tracer(&tracer, mask), run the
// simulation, uninstall_tracer(), then read tracer.merged() or hand it
// to the exporters in trace_export.hpp. Install/uninstall only at
// quiescent points (no simulation windows in flight).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/simtime.hpp"

namespace ppo::obs {

/// Bit-mask categories; `--trace=shuffle,churn` style filtering.
enum class TraceCategory : std::uint32_t {
  kSim = 1u << 0,        // backend internals (windows, barriers)
  kShard = 1u << 1,      // per-shard load/stall profile records
  kShuffle = 1u << 2,    // overlay exchange spans + instants
  kPseudonym = 1u << 3,  // mints, expiries
  kTransport = 1u << 4,  // fault-layer drops
  kChurn = 1u << 5,      // node up/down transitions
  kLog = 1u << 6,        // kTrace-level log messages routed here
  kUser = 1u << 7,       // ad-hoc instrumentation
  kAdversary = 1u << 8,  // Byzantine attack/defense events
  kInference = 1u << 9,  // passive-observer observation events
  kDht = 1u << 10,       // DHT lookup spans
  kRouting = 1u << 11,   // pseudonym-routing walk spans
};

inline constexpr std::uint32_t kTraceNone = 0;
inline constexpr std::uint32_t kTraceAll = 0xFFFu;

/// Record shape, loosely after Chrome's trace_event phases.
enum class TracePhase : std::uint8_t {
  kInstant,  // point event
  kCounter,  // named counter sample (value)
  kBegin,    // async span open (id pairs it with kEnd)
  kEnd,      // async span close
};

/// Origin id for records emitted outside any actor context (barriers,
/// setup code). Matches sim::kExternalActor's value without depending
/// on the sim library.
inline constexpr std::uint32_t kExternalOrigin = 0xFFFFFFFFu;

struct TraceArg {
  const char* key;  // string literal
  double value;
};

struct TraceRecord {
  double time = 0.0;
  std::uint32_t origin = kExternalOrigin;  // node/actor id
  std::uint32_t shard = 0;
  TraceCategory category = TraceCategory::kUser;
  TracePhase phase = TracePhase::kInstant;
  const char* name = "";  // string literal; never freed
  std::uint64_t id = 0;   // span correlation id / counter dimension
  double value = 0.0;     // counter sample
  TraceArg args[2] = {{nullptr, 0.0}, {nullptr, 0.0}};
  std::string text;       // only set for kLog records
  std::uint64_t seq = 0;  // per-buffer emission order
};

/// Receives batches of records evicted from a full per-thread buffer
/// (and the final drain from Tracer::flush_to_sink). Calls are
/// serialized by the Tracer; a batch preserves one buffer's emission
/// order but batches from different buffers interleave in flush order,
/// not canonical order — streaming trades global ordering for bounded
/// memory. Implementations must not emit trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(std::vector<TraceRecord>&& batch) = 0;
};

/// Collects records into per-thread buffers; merge happens off the hot
/// path in merged(). A Tracer must outlive its installation.
class Tracer {
 public:
  /// `capacity_per_buffer`: records beyond this are counted as dropped
  /// instead of stored, bounding memory for runaway traces. With a
  /// `sink`, a full buffer is flushed to the sink and reused instead —
  /// long runs lose nothing; call flush_to_sink() at the end to drain
  /// what is still resident.
  explicit Tracer(std::size_t capacity_per_buffer = 1u << 22,
                  TraceSink* sink = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// All still-resident records in canonical (time, origin,
  /// attach_order, seq) order. Call only while no thread is emitting
  /// (after uninstall or at a barrier). Records already flushed to the
  /// sink are not included.
  std::vector<TraceRecord> merged() const;

  /// Drains every buffer to the sink (no-op without one). Call only at
  /// quiescent points.
  void flush_to_sink();

  /// Total records accepted, including those flushed to the sink.
  std::uint64_t records_recorded() const;
  std::uint64_t records_dropped() const;
  std::uint64_t records_flushed() const;

  // -- internal, called via the emit path --
  void emit(TraceRecord&& record);

 private:
  struct Buffer {
    std::vector<TraceRecord> records;
    std::uint64_t seq = 0;
    std::uint64_t dropped = 0;
  };

  Buffer* attach_buffer();
  void flush_buffer(Buffer& buffer);

  std::size_t capacity_per_buffer_;
  TraceSink* sink_;
  mutable std::mutex attach_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  mutable std::mutex sink_mutex_;
  std::uint64_t flushed_ = 0;  // guarded by sink_mutex_
};

namespace detail {
// Hot-path globals. The mask is the only thing read when tracing is
// off; the tracer pointer is read only after the mask check passes.
inline std::atomic<std::uint32_t> g_trace_mask{kTraceNone};
inline std::atomic<Tracer*> g_tracer{nullptr};

// Shard of the event executing on this thread; published by the
// simulation backends, folded into every record.
inline thread_local std::uint32_t g_trace_shard = 0;

void emit(TraceCategory cat, TracePhase phase, const char* name,
          std::uint32_t origin, std::uint64_t id, double value);
void emit(TraceCategory cat, TracePhase phase, const char* name,
          std::uint32_t origin, std::uint64_t id, double value,
          TraceArg a0);
void emit(TraceCategory cat, TracePhase phase, const char* name,
          std::uint32_t origin, std::uint64_t id, double value,
          TraceArg a0, TraceArg a1);
void emit_log(std::uint32_t origin, std::string text);
}  // namespace detail

/// True when `cat` is being traced. The disabled path is one relaxed
/// load plus a branch.
inline bool trace_enabled(TraceCategory cat) {
  return (detail::g_trace_mask.load(std::memory_order_relaxed) &
          static_cast<std::uint32_t>(cat)) != 0;
}

/// True when any category is enabled.
inline bool tracing_active() {
  return detail::g_trace_mask.load(std::memory_order_relaxed) != 0;
}

/// Routes PPO_TRACE_* records with categories in `mask` into `tracer`.
/// Only call at quiescent points; `tracer` must outlive the install.
void install_tracer(Tracer* tracer, std::uint32_t mask);
void uninstall_tracer();

/// Current category mask (0 when no tracer installed).
std::uint32_t trace_mask();

/// Publishes the shard executing on this thread (backends only).
inline void set_trace_shard(std::uint32_t shard) {
  detail::g_trace_shard = shard;
}

/// Parses "all", "none"/"" or a comma list of category names
/// (sim, shard, shuffle, pseudonym, transport, churn, log, user,
/// adversary, inference, dht, routing) into a mask. Throws
/// std::invalid_argument on unknown names.
std::uint32_t parse_trace_categories(const std::string& spec);

/// Category bit → lower-case name ("shuffle"); "?" for unknown bits.
const char* trace_category_name(TraceCategory cat);

}  // namespace ppo::obs

// Instant event. Optional trailing args: up to two
// ppo::obs::TraceArg{"key", value} initializers, evaluated only when
// the category is enabled.
#define PPO_TRACE_EVENT(cat, name, origin, ...)                             \
  do {                                                                      \
    if (::ppo::obs::trace_enabled(cat))                                     \
      ::ppo::obs::detail::emit(cat, ::ppo::obs::TracePhase::kInstant, name, \
                               static_cast<std::uint32_t>(origin), 0, 0.0   \
                                   __VA_OPT__(, ) __VA_ARGS__);             \
  } while (0)

// Counter sample: a named value at the current sim time.
#define PPO_TRACE_COUNTER(cat, name, origin, value)                         \
  do {                                                                      \
    if (::ppo::obs::trace_enabled(cat))                                     \
      ::ppo::obs::detail::emit(cat, ::ppo::obs::TracePhase::kCounter, name, \
                               static_cast<std::uint32_t>(origin), 0,       \
                               static_cast<double>(value));                 \
  } while (0)

// Async span open/close; `id` correlates the pair (unique per open
// span, e.g. (node << 32) | exchange_id).
#define PPO_TRACE_SPAN_BEGIN(cat, name, origin, id, ...)                  \
  do {                                                                    \
    if (::ppo::obs::trace_enabled(cat))                                   \
      ::ppo::obs::detail::emit(cat, ::ppo::obs::TracePhase::kBegin, name, \
                               static_cast<std::uint32_t>(origin),        \
                               static_cast<std::uint64_t>(id), 0.0        \
                                   __VA_OPT__(, ) __VA_ARGS__);           \
  } while (0)

#define PPO_TRACE_SPAN_END(cat, name, origin, id, ...)                  \
  do {                                                                  \
    if (::ppo::obs::trace_enabled(cat))                                 \
      ::ppo::obs::detail::emit(cat, ::ppo::obs::TracePhase::kEnd, name, \
                               static_cast<std::uint32_t>(origin),      \
                               static_cast<std::uint64_t>(id), 0.0      \
                                   __VA_OPT__(, ) __VA_ARGS__);         \
  } while (0)
