#include "obs/metrics_registry.hpp"

#include <mutex>

namespace ppo::obs {

std::string metric_key(const std::string& name, const MetricDims& dims) {
  if (dims.empty()) return name;
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : dims) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry& other) {
  *this = other;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  std::shared_lock other_lock(other.mutex_);
  std::unique_lock lock(mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  streaming_ = other.streaming_;
  return *this;
}

void MetricsRegistry::add_counter(const std::string& name, std::uint64_t delta,
                                  const MetricDims& dims) {
  std::unique_lock lock(mutex_);
  counters_[metric_key(name, dims)] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value,
                                const MetricDims& dims) {
  std::unique_lock lock(mutex_);
  gauges_[metric_key(name, dims)] = value;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricDims& dims) {
  std::unique_lock lock(mutex_);
  return histograms_[metric_key(name, dims)];
}

StreamingHistogram& MetricsRegistry::streaming(const std::string& name,
                                               const MetricDims& dims) {
  const std::string key = metric_key(name, dims);
  {
    std::shared_lock lock(mutex_);
    const auto it = streaming_.find(key);
    if (it != streaming_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  return streaming_[key];
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const MetricDims& dims) {
  streaming(name, dims).observe(value);
}

std::uint64_t MetricsRegistry::counter(const std::string& key) const {
  std::shared_lock lock(mutex_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

bool MetricsRegistry::empty() const {
  std::shared_lock lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         streaming_.empty();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::shared_lock lock(mutex_);
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histograms = histograms_;
  for (const auto& [key, hist] : streaming_)
    snap.streaming.emplace(key, hist.snapshot());
  return snap;
}

void install_live_metrics(MetricsRegistry* registry) {
  detail::g_live_metrics.store(registry, std::memory_order_release);
}

void uninstall_live_metrics() {
  detail::g_live_metrics.store(nullptr, std::memory_order_release);
}

runner::Json to_json(const MetricsRegistry& registry) {
  return to_json(registry.snapshot());
}

runner::Json to_json(const MetricsRegistry::Snapshot& snapshot) {
  auto doc = runner::Json::object();
  auto counters = runner::Json::object();
  for (const auto& [key, value] : snapshot.counters) counters[key] = value;
  doc["counters"] = std::move(counters);
  auto gauges = runner::Json::object();
  for (const auto& [key, value] : snapshot.gauges) gauges[key] = value;
  doc["gauges"] = std::move(gauges);
  auto histograms = runner::Json::object();
  for (const auto& [key, h] : snapshot.histograms) {
    auto cell = runner::Json::object();
    cell["count"] = static_cast<std::uint64_t>(h.total());
    cell["mean"] = h.empty() ? 0.0 : h.mean();
    cell["p50"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.50));
    cell["p90"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.90));
    cell["p95"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.95));
    cell["p99"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.99));
    cell["p999"] =
        static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.999));
    cell["max"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.max_value());
    histograms[key] = std::move(cell);
  }
  doc["histograms"] = std::move(histograms);
  auto streaming = runner::Json::object();
  for (const auto& [key, s] : snapshot.streaming) {
    auto cell = runner::Json::object();
    cell["count"] = s.count;
    cell["mean"] = s.mean();
    cell["p50"] = s.p50();
    cell["p95"] = s.p95();
    cell["p99"] = s.p99();
    cell["p999"] = s.p999();
    cell["max"] = s.max;
    streaming[key] = std::move(cell);
  }
  doc["streaming"] = std::move(streaming);
  return doc;
}

}  // namespace ppo::obs
