#include "obs/metrics_registry.hpp"

namespace ppo::obs {

std::string metric_key(const std::string& name, const MetricDims& dims) {
  if (dims.empty()) return name;
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : dims) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

void MetricsRegistry::add_counter(const std::string& name, std::uint64_t delta,
                                  const MetricDims& dims) {
  counters_[metric_key(name, dims)] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value,
                                const MetricDims& dims) {
  gauges_[metric_key(name, dims)] = value;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricDims& dims) {
  return histograms_[metric_key(name, dims)];
}

std::uint64_t MetricsRegistry::counter(const std::string& key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

runner::Json to_json(const MetricsRegistry& registry) {
  auto doc = runner::Json::object();
  auto counters = runner::Json::object();
  for (const auto& [key, value] : registry.counters()) counters[key] = value;
  doc["counters"] = std::move(counters);
  auto gauges = runner::Json::object();
  for (const auto& [key, value] : registry.gauges()) gauges[key] = value;
  doc["gauges"] = std::move(gauges);
  auto histograms = runner::Json::object();
  for (const auto& [key, h] : registry.histograms()) {
    auto cell = runner::Json::object();
    cell["count"] = static_cast<std::uint64_t>(h.total());
    cell["mean"] = h.empty() ? 0.0 : h.mean();
    cell["p50"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.50));
    cell["p90"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.90));
    cell["p99"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.quantile(0.99));
    cell["max"] = static_cast<std::uint64_t>(h.empty() ? 0 : h.max_value());
    histograms[key] = std::move(cell);
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

}  // namespace ppo::obs
