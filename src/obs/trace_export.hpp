// Exporters for merged trace records: Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and line-delimited JSON
// for ad-hoc tooling (jq, tools/trace_summarize).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ppo::obs {

/// Chrome trace_event document ({"traceEvents": [...]}) for records in
/// canonical merge order. Mapping: sim seconds → microsecond `ts`,
/// shard → `pid`, origin → `tid`; spans become async nestable b/e
/// pairs correlated by hex id; counters become "C" events.
std::string chrome_trace_json(const std::vector<TraceRecord>& records);

/// One compact JSON object per record, newline-delimited, in the given
/// order. Fields: t, origin (absent for external), shard, cat, ph,
/// name, and id/value/args/text when set.
std::string trace_jsonl(const std::vector<TraceRecord>& records);

/// Writes `content` to `path`; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

/// TraceSink streaming each evicted batch as JSONL straight to a file,
/// so a traced run bounded only by disk loses no records when the
/// in-memory buffers fill. Lines arrive in flush order (per-buffer
/// emission order within a batch); pipe through `sort` on the `t`
/// field or tools/trace_summarize when canonical order matters.
/// Construct, pass to Tracer, call tracer.flush_to_sink() at the end,
/// then close() (also done by the destructor, which swallows errors).
class JsonlStreamSink : public TraceSink {
 public:
  explicit JsonlStreamSink(const std::string& path);
  ~JsonlStreamSink() override;

  void write(std::vector<TraceRecord>&& batch) override;

  /// Flushes and closes the file; throws std::runtime_error if any
  /// write failed.
  void close();

  std::uint64_t lines_written() const { return lines_written_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t lines_written_ = 0;
};

}  // namespace ppo::obs
