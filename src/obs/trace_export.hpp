// Exporters for merged trace records: Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and line-delimited JSON
// for ad-hoc tooling (jq, tools/trace_summarize).
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ppo::obs {

/// Chrome trace_event document ({"traceEvents": [...]}) for records in
/// canonical merge order. Mapping: sim seconds → microsecond `ts`,
/// shard → `pid`, origin → `tid`; spans become async nestable b/e
/// pairs correlated by hex id; counters become "C" events.
std::string chrome_trace_json(const std::vector<TraceRecord>& records);

/// One compact JSON object per record, newline-delimited, in the given
/// order. Fields: t, origin (absent for external), shard, cat, ph,
/// name, and id/value/args/text when set.
std::string trace_jsonl(const std::vector<TraceRecord>& records);

/// Writes `content` to `path`; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace ppo::obs
