#include "obs/trace_export.hpp"

#include <fstream>
#include <stdexcept>

#include "runner/json.hpp"

namespace ppo::obs {

namespace {

const char* phase_code(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInstant:
      return "i";
    case TracePhase::kCounter:
      return "C";
    case TracePhase::kBegin:
      return "b";
    case TracePhase::kEnd:
      return "e";
  }
  return "i";
}

std::string hex_id(std::uint64_t id) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  bool leading = true;
  for (int shift = 60; shift >= 0; shift -= 4) {
    unsigned nibble = (id >> shift) & 0xF;
    if (leading && nibble == 0 && shift != 0) continue;
    leading = false;
    s += digits[nibble];
  }
  return s;
}

runner::Json args_json(const TraceRecord& r) {
  auto args = runner::Json::object();
  if (r.phase == TracePhase::kCounter) args["value"] = r.value;
  for (const auto& a : r.args)
    if (a.key != nullptr) args[a.key] = a.value;
  if (!r.text.empty()) args["message"] = r.text;
  return args;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceRecord>& records) {
  std::string out = "{\"traceEvents\":[";
  std::string line;
  bool first = true;
  for (const auto& r : records) {
    auto ev = runner::Json::object();
    ev["name"] = r.name;
    ev["cat"] = trace_category_name(r.category);
    ev["ph"] = phase_code(r.phase);
    if (r.phase == TracePhase::kBegin || r.phase == TracePhase::kEnd)
      ev["id"] = hex_id(r.id);
    ev["ts"] = r.time * 1e6;  // sim seconds -> trace microseconds
    ev["pid"] = static_cast<std::uint64_t>(r.shard);
    ev["tid"] = static_cast<std::uint64_t>(r.origin);
    if (r.phase == TracePhase::kInstant) ev["s"] = "t";  // thread-scoped
    auto args = args_json(r);
    if (args.size() > 0) ev["args"] = std::move(args);
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += ev.dump();
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string trace_jsonl(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    auto line = runner::Json::object();
    line["t"] = r.time;
    if (r.origin != kExternalOrigin)
      line["origin"] = static_cast<std::uint64_t>(r.origin);
    line["shard"] = static_cast<std::uint64_t>(r.shard);
    line["cat"] = trace_category_name(r.category);
    line["ph"] = phase_code(r.phase);
    line["name"] = r.name;
    if (r.phase == TracePhase::kBegin || r.phase == TracePhase::kEnd)
      line["id"] = r.id;
    if (r.phase == TracePhase::kCounter) line["value"] = r.value;
    for (const auto& a : r.args)
      if (a.key != nullptr) line[a.key] = a.value;
    if (!r.text.empty()) line["message"] = r.text;
    out += line.dump();
    out += '\n';
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << content;
  if (!out) throw std::runtime_error("write failed: " + path);
}

JsonlStreamSink::JsonlStreamSink(const std::string& path)
    : path_(path), out_(path, std::ios::binary) {
  if (!out_) throw std::runtime_error("cannot open for write: " + path);
}

JsonlStreamSink::~JsonlStreamSink() {
  try {
    close();
  } catch (...) {
  }
}

void JsonlStreamSink::write(std::vector<TraceRecord>&& batch) {
  if (!out_.is_open()) return;
  out_ << trace_jsonl(batch);
  lines_written_ += batch.size();
}

void JsonlStreamSink::close() {
  if (!out_.is_open()) return;
  out_.flush();
  const bool ok = static_cast<bool>(out_);
  out_.close();
  if (!ok) throw std::runtime_error("write failed: " + path_);
}

}  // namespace ppo::obs
