// Minimal command-line flag parsing for the benches and examples.
//
// Flags take the form --name=value or --name value; bare --name is a
// boolean true. Unknown positional arguments are collected. Every
// flag can also be supplied via environment variable PPO_<NAME>
// (upper-cased, dashes to underscores), which the benchmark loop uses
// to scale runs without editing commands.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppo {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if the flag was given on the command line or via env.
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  /// Returns the raw value for `name`, checking command line first,
  /// then the PPO_<NAME> environment variable. Empty optional-like
  /// behaviour is signalled through `found`.
  std::string raw(const std::string& name, bool& found) const;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ppo
