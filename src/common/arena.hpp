// Chunked bump allocator for simulation hot state.
//
// At crawl scale (10^6 nodes) the per-node containers — cache entries,
// sampler slots, pending-exchange sets — used to cost a dozen heap
// allocations per node plus allocator metadata. The overlay services
// instead carve all of it out of one Arena: node state lives exactly
// as long as the service, so nothing is ever freed individually and a
// bump pointer is the whole allocator. Chunks never relocate, so
// handed-out spans stay valid for the arena's lifetime (including
// across moves of the owning object).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace ppo {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 256 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Value-initialized span of `count` Ts. Only trivially destructible
  /// types: the arena never runs destructors.
  template <typename T>
  std::span<T> allocate_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");
    if (count == 0) return {};
    T* first =
        static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (first + i) T{};
    return {first, count};
  }

  /// Bytes handed out (excluding alignment padding and chunk slack).
  std::size_t bytes_used() const { return used_; }
  /// Bytes reserved from the heap across all chunks.
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    if (!chunks_.empty()) {
      Chunk& c = chunks_.back();
      const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        c.used = aligned + bytes;
        used_ += bytes;
        return c.data.get() + aligned;
      }
    }
    const std::size_t size = std::max(chunk_bytes_, bytes + align);
    Chunk c{std::make_unique<std::byte[]>(size), size, 0};
    // A fresh chunk from operator new[] is aligned for any fundamental
    // type; re-align the bump offset anyway for safety.
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const std::size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
    PPO_CHECK(aligned + bytes <= size);
    c.used = aligned + bytes;
    reserved_ += size;
    used_ += bytes;
    chunks_.push_back(std::move(c));
    return chunks_.back().data.get() + aligned;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

/// Fixed-capacity record block carved from an arena (or self-owned for
/// standalone construction in tests). The pooled replacement for a
/// per-exchange heap vector: one block per node, reused by every
/// exchange, zero steady-state allocation.
template <typename T>
class FixedBlock {
 public:
  FixedBlock() = default;
  FixedBlock(Arena& arena, std::size_t capacity)
      : storage_(arena.allocate_span<T>(capacity)) {}
  explicit FixedBlock(std::size_t capacity)
      : owned_(capacity), storage_(owned_.data(), owned_.size()) {}

  // Moves keep spans valid (arena chunks and vector buffers do not
  // relocate on move); copies would alias the storage, so: no copies.
  FixedBlock(FixedBlock&&) noexcept = default;
  FixedBlock& operator=(FixedBlock&&) noexcept = default;
  FixedBlock(const FixedBlock&) = delete;
  FixedBlock& operator=(const FixedBlock&) = delete;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return storage_.size(); }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }
  T& back() { return storage_[size_ - 1]; }
  const T& back() const { return storage_[size_ - 1]; }

  void clear() { size_ = 0; }
  void pop_back() {
    PPO_CHECK_MSG(size_ > 0, "pop_back on empty block");
    --size_;
  }
  void push_back(const T& value) {
    PPO_CHECK_MSG(size_ < storage_.size(), "fixed block overflow");
    storage_[size_++] = value;
  }

  /// Replaces the contents with `values` (must fit).
  void assign(std::span<const T> values) {
    PPO_CHECK_MSG(values.size() <= storage_.size(), "fixed block overflow");
    for (std::size_t i = 0; i < values.size(); ++i) storage_[i] = values[i];
    size_ = values.size();
  }

  std::span<const T> items() const { return storage_.first(size_); }

 private:
  std::vector<T> owned_;
  std::span<T> storage_;
  std::size_t size_ = 0;
};

}  // namespace ppo
