// Small open-addressing hash map from uint64 keys to uint32 values,
// built for simulation hot paths: contiguous storage, no per-node
// allocation, linear probing with backward-shift deletion. Used by
// the pseudonym cache, where std::unordered_map's node allocations
// dominated the profile.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ppo {

class FlatMap64 {
 public:
  /// Sizes the table for about `expected` entries without growth.
  explicit FlatMap64(std::size_t expected = 16);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent. Valid
  /// until the next insert/erase.
  std::uint32_t* find(std::uint64_t key);
  const std::uint32_t* find(std::uint64_t key) const;

  /// Inserts (key, value); the key must not be present.
  void insert(std::uint64_t key, std::uint32_t value);

  /// Removes `key`; returns false when absent.
  bool erase(std::uint64_t key);

  void clear();

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
    bool occupied = false;
  };

  static std::uint64_t mix(std::uint64_t key);
  std::size_t probe_start(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }
  void grow();

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ppo
