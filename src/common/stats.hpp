// Streaming and batch descriptive statistics used by the metric
// collectors and the benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace ppo {

/// Welford online accumulator: mean/variance/min/max without storing
/// the samples.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Half-width of the normal-approximation 95% confidence interval of
/// the mean (1.96 * stddev / sqrt(n)); 0 for fewer than two samples.
double ci95_half_width(const RunningStats& stats);

/// Percentile of a sample set with linear interpolation between order
/// statistics. `q` in [0,1]. Sorts a copy; fine for metric-sized data.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& values);

/// Pearson chi-square statistic of `observed` counts against uniform
/// expectation. Used by the sampler-uniformity property tests.
double chi_square_uniform(const std::vector<std::size_t>& observed);

}  // namespace ppo
