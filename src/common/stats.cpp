#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ppo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double ci95_half_width(const RunningStats& stats) {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() /
         std::sqrt(static_cast<double>(stats.count()));
}

double percentile(std::vector<double> values, double q) {
  PPO_CHECK_MSG(!values.empty(), "percentile of empty sample");
  PPO_CHECK_MSG(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double chi_square_uniform(const std::vector<std::size_t>& observed) {
  PPO_CHECK_MSG(!observed.empty(), "chi_square_uniform of empty counts");
  std::size_t total = 0;
  for (std::size_t c : observed) total += c;
  if (total == 0) return 0.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double chi2 = 0.0;
  for (std::size_t c : observed) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

}  // namespace ppo
