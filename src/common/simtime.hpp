// Thread-local "current simulation time" slot, published by whichever
// simulation backend is executing events on this thread and read by
// the logging prefix and the ppo_obs tracer. Lives in ppo_common so
// low-level consumers (logging) need no dependency on the sim or obs
// libraries; the publishers pay two plain TLS stores per event.
#pragma once

namespace ppo {

namespace detail {
inline thread_local double g_sim_time = 0.0;
inline thread_local bool g_sim_time_active = false;
}  // namespace detail

/// Publishes the sim time of the event executing on this thread.
inline void set_sim_time_context(double t) {
  detail::g_sim_time = t;
  detail::g_sim_time_active = true;
}

/// Marks this thread as outside any simulation run.
inline void clear_sim_time_context() { detail::g_sim_time_active = false; }

/// True while a backend has published a time on this thread.
inline bool sim_time_context_active() { return detail::g_sim_time_active; }

/// Last published sim time (0.0 if never set).
inline double sim_time_context() { return detail::g_sim_time; }

}  // namespace ppo
