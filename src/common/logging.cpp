#include "common/logging.hpp"

#include <cctype>
#include <iostream>

namespace ppo {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

LogLevel parse_log_level(const std::string& name) {
  std::string s;
  for (char c : name) s += static_cast<char>(std::tolower(c));
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace ppo
