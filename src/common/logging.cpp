#include "common/logging.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "common/simtime.hpp"

namespace ppo {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::string wall_timestamp() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&t, &tm);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms.count()));
  return buf;
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

LogLevel parse_log_level(const std::string& name) {
  std::string s;
  for (char c : name) s += static_cast<char>(std::tolower(c));
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

void set_trace_log_sink(TraceLogSink sink) {
  detail::g_trace_log_sink.store(sink, std::memory_order_release);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (level == LogLevel::kTrace) {
    if (TraceLogSink sink = g_trace_log_sink.load(std::memory_order_acquire))
      sink(message);
    if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  }
  std::string line = "[" + wall_timestamp() + "] [" + level_name(level) + "]";
  if (sim_time_context_active()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), " (t=%.6f)", sim_time_context());
    line += buf;
  }
  line += ' ';
  line += message;
  std::cerr << line << '\n';
}
}  // namespace detail

}  // namespace ppo
