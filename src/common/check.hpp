// Lightweight invariant checking used across the library.
//
// PPO_CHECK is always on (cheap, used for API misuse and protocol
// invariants); PPO_DCHECK compiles out in NDEBUG builds and is used on
// hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ppo {

/// Thrown when a PPO_CHECK invariant fails. Carries the failing
/// expression text and location so tests can assert on misuse.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace ppo

#define PPO_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::ppo::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define PPO_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::ppo::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PPO_DCHECK(expr) ((void)0)
#else
#define PPO_DCHECK(expr) PPO_CHECK(expr)
#endif
