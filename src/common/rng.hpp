// Deterministic, splittable random number generation.
//
// Every stochastic component in the library draws from an Rng seeded
// from a single root seed, so whole experiments are bit-reproducible.
// The generator is xoshiro256**, seeded via SplitMix64 as its authors
// recommend; `split()` derives statistically independent child streams
// so subsystems cannot perturb each other's draws.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace ppo {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for deriving child stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless stream-seed derivation: a deterministic function of the
/// root seed and up to three stream coordinates (e.g. a subsystem tag,
/// a node id and a per-link message index). Unlike Rng::split(), the
/// result does not depend on any call order, which makes it the right
/// tool for K-invariant per-node / per-link streams in the sharded
/// simulation core: the stream a component draws from is a pure
/// function of *what* it is, never of *when* it was created.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a,
                          std::uint64_t b = 0, std::uint64_t c = 0);

/// xoshiro256** PRNG wrapped with the distribution helpers the library
/// needs. Not thread-safe; use one Rng per logical component.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// true with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (= 1/rate).
  double exponential(double mean);

  /// Pareto(shape, scale) with support [scale, inf).
  /// mean = scale * shape / (shape - 1) for shape > 1.
  double pareto(double shape, double scale);

  /// Standard normal via Box-Muller (no cached spare; simple & stateless).
  double normal(double mean, double stddev);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Reservoir-samples `k` distinct elements from `v` (order unspecified).
  /// If k >= v.size(), returns a shuffled copy of `v`.
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    if (k >= v.size()) {
      std::vector<T> all = v;
      shuffle(all);
      return all;
    }
    std::vector<T> out(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k));
    for (std::size_t i = k; i < v.size(); ++i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i + 1));
      if (j < k) out[j] = v[i];
    }
    return out;
  }

  /// Derives an independent child generator. Children with different
  /// call orders on the parent have uncorrelated streams.
  Rng split();

  /// Raw xoshiro256** state, for checkpoint/restore. A generator whose
  /// state is exported and later re-imported continues the exact same
  /// stream; no draws are lost or repeated.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ppo
