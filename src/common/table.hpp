// Console table / data-series printing shared by the benchmark
// harnesses, so every figure reproduction prints the same layout the
// paper's plots encode (x column + one column per series).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppo {

/// A named y-series over a shared x axis; NaN marks "no value here".
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints a figure-style data block:
///
///   # <title>
///   <x_label>  <series-1>  <series-2> ...
///   0.125      0.70        0.01
///
/// Missing values (NaN) print as "-". Column widths auto-fit.
void print_series_table(std::ostream& os, const std::string& title,
                        const std::string& x_label,
                        const std::vector<double>& xs,
                        const std::vector<Series>& series,
                        int precision = 4);

/// Prints an aligned key/value or multi-column table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

  /// Formats a double with fixed precision, trimming trailing zeros.
  static std::string num(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppo
