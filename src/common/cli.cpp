#include "common/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "common/check.hpp"

namespace ppo {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

std::string Cli::raw(const std::string& name, bool& found) const {
  const auto it = flags_.find(name);
  if (it != flags_.end()) {
    found = true;
    return it->second;
  }
  std::string env_name = "PPO_";
  for (char c : name)
    env_name += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  if (const char* env = std::getenv(env_name.c_str())) {
    found = true;
    return env;
  }
  found = false;
  return {};
}

bool Cli::has(const std::string& name) const {
  bool found = false;
  raw(name, found);
  return found;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  bool found = false;
  std::string v = raw(name, found);
  return found ? v : fallback;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  bool found = false;
  const std::string v = raw(name, found);
  if (!found) return fallback;
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    PPO_CHECK_MSG(false, "flag --" + name + " expects an integer, got '" + v + "'");
  }
  return fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  bool found = false;
  const std::string v = raw(name, found);
  if (!found) return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    PPO_CHECK_MSG(false, "flag --" + name + " expects a number, got '" + v + "'");
  }
  return fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  bool found = false;
  const std::string v = raw(name, found);
  if (!found) return fallback;
  return v == "true" || v == "1" || v == "yes" || v == "on" || v.empty();
}

}  // namespace ppo
