#include "common/histogram.hpp"

#include "common/check.hpp"

namespace ppo {

void Histogram::add(std::size_t value, std::size_t count) {
  counts_[value] += count;
  total_ += count;
}

std::size_t Histogram::count(std::size_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::size_t, std::size_t>> Histogram::bins() const {
  return {counts_.begin(), counts_.end()};
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& [v, c] : counts_)
    s += static_cast<double>(v) * static_cast<double>(c);
  return s / static_cast<double>(total_);
}

std::size_t Histogram::quantile(double q) const {
  PPO_CHECK_MSG(total_ > 0, "quantile of empty histogram");
  PPO_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  const auto target = static_cast<std::size_t>(
      q * static_cast<double>(total_));
  std::size_t cum = 0;
  for (const auto& [v, c] : counts_) {
    cum += c;
    if (cum > target || cum == total_) return v;
  }
  return counts_.rbegin()->first;
}

std::size_t Histogram::min_value() const {
  PPO_CHECK_MSG(total_ > 0, "min_value of empty histogram");
  return counts_.begin()->first;
}

std::size_t Histogram::max_value() const {
  PPO_CHECK_MSG(total_ > 0, "max_value of empty histogram");
  return counts_.rbegin()->first;
}

}  // namespace ppo
