#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ppo {

namespace {
std::string format_value(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

void print_aligned(std::ostream& os,
                   const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  }
}
}  // namespace

void print_series_table(std::ostream& os, const std::string& title,
                        const std::string& x_label,
                        const std::vector<double>& xs,
                        const std::vector<Series>& series, int precision) {
  for (const auto& s : series)
    PPO_CHECK_MSG(s.values.size() == xs.size(),
                  "series '" + s.name + "' length mismatch with x axis");
  os << "# " << title << '\n';
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{x_label};
  for (const auto& s : series) header.push_back(s.name);
  rows.push_back(std::move(header));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{format_value(xs[i], precision)};
    for (const auto& s : series)
      row.push_back(format_value(s.values[i], precision));
    rows.push_back(std::move(row));
  }
  print_aligned(os, rows);
  os << '\n';
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  PPO_CHECK_MSG(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> all;
  all.push_back(header_);
  for (const auto& r : rows_) all.push_back(r);
  print_aligned(os, all);
}

std::string TextTable::num(double v, int precision) {
  return format_value(v, precision);
}

}  // namespace ppo
