#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ppo {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c) {
  // Chain SplitMix64 steps, folding one coordinate into the state
  // before each step; every coordinate perturbs all later outputs.
  std::uint64_t state = root;
  std::uint64_t out = splitmix64(state);
  state ^= a * 0xFF51AFD7ED558CCDULL;
  out ^= splitmix64(state);
  state ^= b * 0xC4CEB9FE1A85EC53ULL;
  out ^= splitmix64(state);
  state ^= c * 0xD6E8FEB86659FD93ULL;
  out ^= splitmix64(state);
  return out;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  PPO_CHECK_MSG(bound > 0, "uniform_u64 bound must be positive");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PPO_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  PPO_CHECK_MSG(lo <= hi, "uniform_double requires lo <= hi");
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::exponential(double mean) {
  PPO_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
  double u;
  do {
    u = uniform_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double shape, double scale) {
  PPO_CHECK_MSG(shape > 0.0 && scale > 0.0, "pareto parameters must be positive");
  double u;
  do {
    u = uniform_double();
  } while (u == 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform_double();
  } while (u1 == 0.0);
  const double u2 = uniform_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace ppo
