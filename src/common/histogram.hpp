// Integer-valued histogram (e.g. node degrees) with helpers for the
// paper's "number of nodes vs degree" plots.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace ppo {

/// Sparse histogram over non-negative integer values.
class Histogram {
 public:
  void add(std::size_t value, std::size_t count = 1);

  /// Count at exactly `value` (0 if absent).
  std::size_t count(std::size_t value) const;

  std::size_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Sorted (value, count) pairs.
  std::vector<std::pair<std::size_t, std::size_t>> bins() const;

  /// Mean of the distribution.
  double mean() const;

  /// Smallest value v such that at least q of the mass is <= v.
  std::size_t quantile(double q) const;

  std::size_t min_value() const;
  std::size_t max_value() const;

 private:
  std::map<std::size_t, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ppo
