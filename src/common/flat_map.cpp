#include "common/flat_map.hpp"

namespace ppo {

namespace {
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlatMap64::FlatMap64(std::size_t expected) {
  // Cap load factor around 0.5 for short probe chains.
  const std::size_t capacity = next_pow2(std::max<std::size_t>(16, expected * 2));
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

std::uint64_t FlatMap64::mix(std::uint64_t key) {
  // SplitMix64 finalizer: full-avalanche mixing of the key.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ULL;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBULL;
  key ^= key >> 31;
  return key;
}

std::uint32_t* FlatMap64::find(std::uint64_t key) {
  std::size_t i = probe_start(key);
  while (slots_[i].occupied) {
    if (slots_[i].key == key) return &slots_[i].value;
    i = (i + 1) & mask_;
  }
  return nullptr;
}

const std::uint32_t* FlatMap64::find(std::uint64_t key) const {
  return const_cast<FlatMap64*>(this)->find(key);
}

void FlatMap64::insert(std::uint64_t key, std::uint32_t value) {
  PPO_DCHECK(find(key) == nullptr);
  if ((size_ + 1) * 2 > slots_.size()) grow();
  std::size_t i = probe_start(key);
  while (slots_[i].occupied) i = (i + 1) & mask_;
  slots_[i] = Slot{key, value, true};
  ++size_;
}

bool FlatMap64::erase(std::uint64_t key) {
  std::size_t i = probe_start(key);
  while (slots_[i].occupied && slots_[i].key != key) i = (i + 1) & mask_;
  if (!slots_[i].occupied) return false;

  // Backward-shift deletion: close the gap so probe chains stay
  // unbroken without tombstones.
  std::size_t gap = i;
  std::size_t j = (i + 1) & mask_;
  while (slots_[j].occupied) {
    const std::size_t home = probe_start(slots_[j].key);
    // Move j into the gap if its home position does not lie strictly
    // between the gap and j (cyclically) — standard Robin-Hood shift.
    const bool between = ((gap < j) ? (home > gap && home <= j)
                                    : (home > gap || home <= j));
    if (!between) {
      slots_[gap] = slots_[j];
      gap = j;
    }
    j = (j + 1) & mask_;
  }
  slots_[gap] = Slot{};
  --size_;
  return true;
}

void FlatMap64::clear() {
  for (auto& slot : slots_) slot = Slot{};
  size_ = 0;
}

void FlatMap64::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  size_ = 0;
  for (const Slot& slot : old)
    if (slot.occupied) insert(slot.key, slot.value);
}

}  // namespace ppo
