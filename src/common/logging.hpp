// Leveled logging to stderr. Off by default above WARN so simulation
// hot paths stay quiet; benches flip the level via --log or PPO_LOG.
#pragma once

#include <sstream>
#include <string>

namespace ppo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style logger: LogMessage(LogLevel::kInfo) << "x=" << x;
/// emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { detail::emit(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ppo

#define PPO_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::ppo::log_level())) \
    ;                                                   \
  else                                                  \
    ::ppo::LogMessage(level)

#define PPO_LOG_INFO PPO_LOG(::ppo::LogLevel::kInfo)
#define PPO_LOG_WARN PPO_LOG(::ppo::LogLevel::kWarn)
#define PPO_LOG_ERROR PPO_LOG(::ppo::LogLevel::kError)
#define PPO_LOG_DEBUG PPO_LOG(::ppo::LogLevel::kDebug)
