// Leveled logging to stderr. Off by default above WARN so simulation
// hot paths stay quiet; benches flip the level via --log or PPO_LOG.
//
// Messages are prefixed with the wall-clock timestamp and, when the
// calling thread is inside a simulation run, the current sim time:
//   [12:34:56.789] [INFO] (t=41.250000) message
//
// kTrace is below kDebug and has a second consumer: when a trace sink
// is installed (ppo_obs does this while a tracer with the `log`
// category is active), kTrace messages are captured as trace records
// even if the stderr threshold would discard them.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace ppo {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global threshold; messages below it are discarded (except kTrace
/// routing, see above).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"
/// (case-insensitive).
LogLevel parse_log_level(const std::string& name);

/// Sink kTrace messages are routed to regardless of the stderr
/// threshold; nullptr disables routing. Installed by the tracer.
using TraceLogSink = void (*)(const std::string& message);
void set_trace_log_sink(TraceLogSink sink);

namespace detail {
inline std::atomic<TraceLogSink> g_trace_log_sink{nullptr};
void emit(LogLevel level, const std::string& message);
}  // namespace detail

/// True when kTrace messages have somewhere to go.
inline bool trace_log_routed() {
  return detail::g_trace_log_sink.load(std::memory_order_relaxed) != nullptr;
}

/// Stream-style logger: LogMessage(LogLevel::kInfo) << "x=" << x;
/// emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { detail::emit(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ppo

#define PPO_LOG(level)                                                      \
  if (!(static_cast<int>(level) >= static_cast<int>(::ppo::log_level()) || \
        ((level) == ::ppo::LogLevel::kTrace && ::ppo::trace_log_routed())))  \
    ;                                                                       \
  else                                                                      \
    ::ppo::LogMessage(level)

#define PPO_LOG_TRACE PPO_LOG(::ppo::LogLevel::kTrace)
#define PPO_LOG_INFO PPO_LOG(::ppo::LogLevel::kInfo)
#define PPO_LOG_WARN PPO_LOG(::ppo::LogLevel::kWarn)
#define PPO_LOG_ERROR PPO_LOG(::ppo::LogLevel::kError)
#define PPO_LOG_DEBUG PPO_LOG(::ppo::LogLevel::kDebug)
