#include "adversary/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace ppo::adversary {

namespace {

// Per-attacker behaviour stream tag; fresh, see kRoleSeedTag note.
constexpr std::uint64_t kBehaviorSeedTag = 0xBE4A0ull;

constexpr auto kAdv = ppo::obs::TraceCategory::kAdversary;

}  // namespace

AdversaryEngine::AdversaryEngine(const AdversaryPlan& plan,
                                 std::size_t num_nodes, EngineConfig config)
    : plan_(plan),
      config_(config),
      assignment_(materialize_roles(plan, num_nodes)) {
  PPO_CHECK_MSG(config_.shuffle_length >= 1, "shuffle_length must be >= 1");
  PPO_CHECK_MSG(config_.pseudonym_bits >= 1 && config_.pseudonym_bits <= 64,
                "pseudonym_bits must be in [1,64]");
  states_.resize(num_nodes);
  redirect_.assign(num_nodes, kNoVictim);
  for (NodeId v = 0; v < static_cast<NodeId>(num_nodes); ++v) {
    if (assignment_.roles[v] == Role::kHonest) continue;
    states_[v].rng = Rng(derive_seed(plan_.seed ^ kBehaviorSeedTag, v));
    // Eclipsers aim their requests straight at the victim; the
    // services point polluters at a fixed trusted neighbour.
    if (assignment_.roles[v] == Role::kEclipser)
      redirect_[v] = assignment_.victim[v];
  }
}

void AdversaryEngine::set_reference_probe(
    std::function<std::vector<PseudonymValue>(NodeId)> probe) {
  probe_ = std::move(probe);
}

void AdversaryEngine::set_request_redirect(NodeId attacker, NodeId target) {
  redirect_[attacker] = target;
}

NodeId AdversaryEngine::redirect_request_target(NodeId from,
                                                NodeId original) const {
  const NodeId target = redirect_[from];
  return target == kNoVictim ? original : target;
}

double AdversaryEngine::tick_rate_multiplier(NodeId v) const {
  return assignment_.roles[v] == Role::kCachePolluter
             ? plan_.polluter_tick_multiplier
             : 1.0;
}

PseudonymRecord AdversaryEngine::forged_record(NodeState& st,
                                               sim::Time now) const {
  const PseudonymValue value = privacylink::random_pseudonym_value(
      st.rng, config_.pseudonym_bits);
  const double stretch =
      st.rng.uniform_double(0.5, plan_.forged_lifetime_factor);
  return PseudonymRecord{value, now + config_.pseudonym_lifetime * stretch};
}

void AdversaryEngine::fill_forged(NodeId from, sim::Time now,
                                  std::vector<PseudonymRecord>& set,
                                  NodeState& st) {
  // The own record rides last in every composed set; keep it so the
  // attacker stays reachable and keeps attracting exchanges.
  const bool keep_own = !set.empty();
  const PseudonymRecord own = keep_own ? set.back() : PseudonymRecord{};
  set.clear();
  const std::size_t forged =
      config_.shuffle_length - (keep_own ? 1 : 0);
  for (std::size_t i = 0; i < forged; ++i)
    set.push_back(forged_record(st, now));
  if (keep_own) set.push_back(own);
  st.counters.forged_injected += forged;
  PPO_TRACE_COUNTER(kAdv, "forged_injected", from, forged);
}

void AdversaryEngine::fill_replayed(NodeId from, sim::Time now,
                                    std::vector<PseudonymRecord>& set,
                                    NodeState& st) {
  if (st.memory.empty()) return;
  const bool keep_own = !set.empty();
  const PseudonymRecord own = keep_own ? set.back() : PseudonymRecord{};
  set.clear();
  const std::size_t replays =
      std::min(config_.shuffle_length - (keep_own ? 1 : 0),
               st.memory.size());
  for (std::size_t i = 0; i < replays; ++i) {
    PseudonymRecord record = st.memory[st.replay_cursor];
    st.replay_cursor = (st.replay_cursor + 1) % st.memory.size();
    // Re-inject the harvested (typically long-expired) value with a
    // forged extended expiry.
    const double stretch =
        st.rng.uniform_double(0.5, plan_.forged_lifetime_factor);
    record.expiry = now + config_.pseudonym_lifetime * stretch;
    set.push_back(record);
  }
  if (keep_own) set.push_back(own);
  st.counters.replays_injected += replays;
  PPO_TRACE_COUNTER(kAdv, "replays_injected", from, replays);
}

void AdversaryEngine::fill_eclipse(NodeId from, sim::Time now,
                                   std::vector<PseudonymRecord>& set,
                                   NodeState& st,
                                   std::vector<PseudonymRecord>& to_register) {
  const NodeId victim = assignment_.victim[from];
  if (victim == kNoVictim || !probe_) return;
  if (!st.refs_probed) {
    // Sampler references are fixed at node construction; one probe
    // per attacker suffices (and keeps cross-shard reads read-only).
    st.victim_refs = probe_(victim);
    st.refs_probed = true;
  }
  if (st.victim_refs.empty()) return;
  const bool keep_own = !set.empty();
  const PseudonymRecord own = keep_own ? set.back() : PseudonymRecord{};
  set.clear();
  const std::size_t wanted =
      std::min(plan_.eclipse_records,
               config_.shuffle_length - (keep_own ? 1 : 0));
  const PseudonymValue mask =
      config_.pseudonym_bits >= 64
          ? ~PseudonymValue{0}
          : ((PseudonymValue{1} << config_.pseudonym_bits) - 1);
  for (std::size_t i = 0; i < wanted; ++i) {
    const PseudonymValue ref =
        st.victim_refs[st.eclipse_cursor % st.victim_refs.size()];
    ++st.eclipse_cursor;
    const std::uint64_t delta = st.rng.uniform_u64(plan_.eclipse_offset) + 1;
    const PseudonymValue value =
        (st.rng.bernoulli(0.5) ? ref - delta : ref + delta) & mask;
    const PseudonymRecord record{value, now + config_.pseudonym_lifetime};
    set.push_back(record);
    to_register.push_back(record);
  }
  if (keep_own) set.push_back(own);
  st.counters.eclipse_records_injected += wanted;
  PPO_TRACE_COUNTER(kAdv, "eclipse_injected", from, wanted);
}

OutgoingVerdict AdversaryEngine::transform_outgoing(
    NodeId from, sim::Time now, bool is_response,
    std::vector<PseudonymRecord>& set) {
  OutgoingVerdict verdict;
  NodeState& st = states_[from];
  switch (assignment_.roles[from]) {
    case Role::kHonest:
      break;
    case Role::kCachePolluter:
      fill_forged(from, now, set, st);
      break;
    case Role::kReplayer:
      fill_replayed(from, now, set, st);
      break;
    case Role::kEclipser:
      fill_eclipse(from, now, set, st, verdict.to_register);
      break;
    case Role::kDropper:
      // Defector: harvest via requests, never reciprocate.
      if (is_response) {
        verdict.suppress = true;
        ++st.counters.responses_suppressed;
        PPO_TRACE_EVENT(kAdv, "response_suppressed", from);
      }
      break;
  }
  return verdict;
}

void AdversaryEngine::observe_received(
    NodeId to, const std::vector<PseudonymRecord>& set) {
  if (assignment_.roles[to] != Role::kReplayer) return;
  NodeState& st = states_[to];
  for (const PseudonymRecord& record : set) {
    if (st.memory.size() < plan_.replay_memory) {
      st.memory.push_back(record);
    } else {
      st.memory[st.memory_next] = record;
      st.memory_next = (st.memory_next + 1) % st.memory.size();
    }
  }
}

void AdversaryEngine::save_state(ckpt::Writer& w) const {
  w.tag(0x41445653u);  // 'ADVS'
  w.size(states_.size());
  for (const NodeState& st : states_) {
    w.rng(st.rng);
    w.size(st.memory.size());
    for (const auto& record : st.memory) {
      w.u64(record.value);
      w.f64(record.expiry);
    }
    w.u64(st.memory_next);
    w.u64(st.replay_cursor);
    w.u64_vec(st.victim_refs);
    w.b(st.refs_probed);
    w.u64(st.eclipse_cursor);
    w.u64(st.counters.forged_injected);
    w.u64(st.counters.replays_injected);
    w.u64(st.counters.eclipse_records_injected);
    w.u64(st.counters.responses_suppressed);
  }
  w.size(redirect_.size());
  for (const NodeId v : redirect_) w.u32(v);
}

void AdversaryEngine::load_state(ckpt::Reader& r) {
  r.tag(0x41445653u);
  if (r.size() != states_.size())
    throw ckpt::ParseError("adversary node count mismatch");
  for (NodeState& st : states_) {
    st.rng = r.rng();
    const std::size_t n = r.size();
    st.memory.clear();
    st.memory.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      PseudonymRecord record;
      record.value = r.u64();
      record.expiry = r.f64();
      st.memory.push_back(record);
    }
    st.memory_next = r.u64();
    st.replay_cursor = r.u64();
    st.victim_refs = r.u64_vec();
    st.refs_probed = r.b();
    st.eclipse_cursor = r.u64();
    st.counters.forged_injected = r.u64();
    st.counters.replays_injected = r.u64();
    st.counters.eclipse_records_injected = r.u64();
    st.counters.responses_suppressed = r.u64();
  }
  if (r.size() != redirect_.size())
    throw ckpt::ParseError("adversary redirect table mismatch");
  for (NodeId& v : redirect_) v = r.u32();
}

AdversaryEngine::Counters AdversaryEngine::total_counters() const {
  Counters total;
  for (const NodeState& st : states_) {
    total.forged_injected += st.counters.forged_injected;
    total.replays_injected += st.counters.replays_injected;
    total.eclipse_records_injected += st.counters.eclipse_records_injected;
    total.responses_suppressed += st.counters.responses_suppressed;
  }
  return total;
}

}  // namespace ppo::adversary
