// Deterministic Byzantine adversary models (paper §III-E). An
// AdversaryPlan is pure seeded data: it names the fraction of overlay
// nodes playing each attacker role plus the behavioural knobs, and
// materialize_roles() expands it into a concrete role assignment as a
// pure function of (plan, num_nodes) — identical on the serial and
// sharded backends and for every shard count K, mirroring how
// fault::materialize_node_crashes expands crash bursts.
//
// Roles (all internal/colluding attackers in the §III-E sense):
//  - cache polluters flood shuffle sets with forged records up to the
//    ℓ cap (and shuffle polluter_tick_multiplier× faster);
//  - eclipse attackers mint pseudonyms numerically close to a victim's
//    sampler reference values R to capture its slots, and aim their
//    shuffle requests at the victim;
//  - selective droppers (shuffle defectors) accept gossip but never
//    reciprocate: their responses are swallowed before the transport;
//  - replayers re-inject previously observed (typically expired)
//    records with forged extended expiries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ppo::adversary {

using NodeId = graph::NodeId;

enum class Role : std::uint8_t {
  kHonest = 0,
  kCachePolluter,
  kEclipser,
  kDropper,
  kReplayer,
};

/// Stable lower-case name for tables, traces and JSON.
const char* role_name(Role role);

struct AdversaryPlan {
  double polluter_fraction = 0.0;
  double eclipser_fraction = 0.0;
  double dropper_fraction = 0.0;
  double replayer_fraction = 0.0;

  /// Polluters run their shuffle tick this many times faster than the
  /// honest period (>= 1).
  double polluter_tick_multiplier = 4.0;

  /// Forged/replayed expiries are now + lifetime * U(0.5, factor).
  /// The > 1.0 portion is catchable by expiry validation
  /// (OverlayParams::validate_received); the rest passes validation
  /// but resolves to nothing — pure pollution.
  double forged_lifetime_factor = 2.0;

  /// Eclipse records injected per outgoing shuffle set.
  std::size_t eclipse_records = 8;
  /// Minted eclipse values land within this distance of a victim
  /// sampler reference (>= 1).
  std::uint64_t eclipse_offset = 1ull << 12;
  /// Records a replayer remembers for re-injection.
  std::size_t replay_memory = 64;

  std::uint64_t seed = 0xADE5;

  /// True iff any role fraction is positive. A disabled plan must be
  /// bit-identical to no plan at all: services skip engine
  /// construction entirely when this is false.
  bool enabled() const;

  /// Aborts (PPO_CHECK) on out-of-range knobs.
  void validate() const;
};

/// No victim assigned (eclipser with no honest node left to target).
inline constexpr NodeId kNoVictim = static_cast<NodeId>(-1);

struct RoleAssignment {
  std::vector<Role> roles;     // size num_nodes
  std::vector<NodeId> victim;  // eclipser -> honest victim, else kNoVictim
  std::size_t attacker_count = 0;
};

/// Expands the plan over `num_nodes` nodes. Role counts are
/// round(fraction * num_nodes) per role, assigned over a seeded
/// shuffle of the id space so roles are disjoint; every eclipser draws
/// a victim among the remaining honest nodes.
RoleAssignment materialize_roles(const AdversaryPlan& plan,
                                 std::size_t num_nodes);

}  // namespace ppo::adversary
