// Runtime behaviour of the Byzantine roles in an AdversaryPlan. The
// engine sits at the *service* send seam (OverlayService /
// ShardedOverlayService), keeping OverlayNode protocol-pure: just
// before a shuffle request/response leaves an attacker, the service
// asks the engine to rewrite (pollute / replay / eclipse) or suppress
// (defect) the outgoing set, and feeds delivered sets back in so
// replayers can harvest values to re-inject.
//
// Determinism contract: every mutable piece of engine state (RNG
// stream, replay memory, counters) is keyed by the acting node and is
// only touched from that node's own events, so on the sharded backend
// each shard touches disjoint state and trajectories are bit-identical
// for every K. The engine never draws from a service RNG: all streams
// derive from the plan seed, so a zero-attacker plan (engine not even
// constructed) is bit-identical to the unwrapped baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "adversary/plan.hpp"
#include "ckpt/io.hpp"
#include "common/rng.hpp"
#include "privacylink/pseudonym.hpp"
#include "sim/backend.hpp"

namespace ppo::adversary {

using privacylink::PseudonymRecord;
using privacylink::PseudonymValue;

/// The few overlay parameters the engine needs, passed as plain values
/// so ppo_adversary does not depend on ppo_overlay (which links back
/// to this library).
struct EngineConfig {
  std::size_t shuffle_length = 40;  // ℓ — forged sets fill up to this
  double pseudonym_lifetime = 90.0;
  std::size_t pseudonym_bits = 64;
};

struct OutgoingVerdict {
  /// Defector verdict: the service must swallow the message entirely
  /// (the transport never sees it).
  bool suppress = false;
  /// Freshly minted eclipse records the service must register to the
  /// sending attacker at the pseudonym service — through the same
  /// publication path as honest mints so sharded registration stays
  /// barrier-published, and tolerantly (try_register_minted) because
  /// adversarial values are aimed, not drawn from the full space.
  std::vector<PseudonymRecord> to_register;
};

class AdversaryEngine {
 public:
  AdversaryEngine(const AdversaryPlan& plan, std::size_t num_nodes,
                  EngineConfig config);

  bool active() const { return assignment_.attacker_count > 0; }
  const AdversaryPlan& plan() const { return plan_; }
  const RoleAssignment& assignment() const { return assignment_; }
  Role role_of(NodeId v) const { return assignment_.roles[v]; }
  NodeId victim_of(NodeId v) const { return assignment_.victim[v]; }

  /// Wired by the service: returns a node's sampler reference values.
  /// References are immutable after node construction, so eclipsers
  /// may probe victims across shards without synchronization.
  void set_reference_probe(
      std::function<std::vector<PseudonymValue>(NodeId)> probe);

  /// Aims `attacker`'s shuffle requests at a fixed target (services
  /// point polluters at their first trusted neighbour; the engine
  /// itself aims eclipsers at their victim).
  void set_request_redirect(NodeId attacker, NodeId target);

  /// Where `from`'s next shuffle request should really go.
  NodeId redirect_request_target(NodeId from, NodeId original) const;

  /// Shuffle-tick period multiplier for `v` (> 1 for polluters).
  double tick_rate_multiplier(NodeId v) const;

  /// Rewrites (or suppresses) an outgoing shuffle set. Runs in the
  /// sending node's event context. The composed set's own record rides
  /// last (compose_shuffle_set contract) and is preserved so honest
  /// nodes can still link back to the attacker.
  OutgoingVerdict transform_outgoing(NodeId from, sim::Time now,
                                     bool is_response,
                                     std::vector<PseudonymRecord>& set);

  /// Runs in the receiving node's event context on delivery: feeds
  /// replayer memory.
  void observe_received(NodeId to, const std::vector<PseudonymRecord>& set);

  struct Counters {
    std::uint64_t forged_injected = 0;
    std::uint64_t replays_injected = 0;
    std::uint64_t eclipse_records_injected = 0;
    std::uint64_t responses_suppressed = 0;
  };
  /// Summed over all nodes. Call between windows or at run end only.
  Counters total_counters() const;

  /// Checkpoint/restore: every per-node mutable state (RNG streams,
  /// replay memory, probe caches, counters) plus the redirect table.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  struct NodeState {
    Rng rng{0};
    std::vector<PseudonymRecord> memory;  // replayer ring buffer
    std::size_t memory_next = 0;          // ring write cursor
    std::size_t replay_cursor = 0;        // next record to re-inject
    std::vector<PseudonymValue> victim_refs;  // eclipser probe cache
    bool refs_probed = false;
    std::size_t eclipse_cursor = 0;       // next reference to aim at
    Counters counters;
  };

  PseudonymRecord forged_record(NodeState& st, sim::Time now) const;
  void fill_forged(NodeId from, sim::Time now,
                   std::vector<PseudonymRecord>& set, NodeState& st);
  void fill_replayed(NodeId from, sim::Time now,
                     std::vector<PseudonymRecord>& set, NodeState& st);
  void fill_eclipse(NodeId from, sim::Time now,
                    std::vector<PseudonymRecord>& set, NodeState& st,
                    std::vector<PseudonymRecord>& to_register);

  AdversaryPlan plan_;
  EngineConfig config_;
  RoleAssignment assignment_;
  std::vector<NodeState> states_;      // indexed by node, touched only
                                       // from that node's events
  std::vector<NodeId> redirect_;       // request redirect targets
  std::function<std::vector<PseudonymValue>(NodeId)> probe_;
};

}  // namespace ppo::adversary
