#include "adversary/plan.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ppo::adversary {

namespace {

// Fresh stream tag for role materialization. Must stay distinct from
// the fault-layer tags (0xFA017, 0xC0A5) and never be reused for a
// different purpose: changing it changes every adversarial trajectory.
constexpr std::uint64_t kRoleSeedTag = 0x401E5ull;

std::size_t role_count(double fraction, std::size_t n) {
  return static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(n)));
}

void check_fraction(double f, const char* what) {
  PPO_CHECK_MSG(f >= 0.0 && f <= 1.0, what);
}

}  // namespace

const char* role_name(Role role) {
  switch (role) {
    case Role::kHonest: return "honest";
    case Role::kCachePolluter: return "polluter";
    case Role::kEclipser: return "eclipser";
    case Role::kDropper: return "dropper";
    case Role::kReplayer: return "replayer";
  }
  return "?";
}

bool AdversaryPlan::enabled() const {
  return polluter_fraction > 0.0 || eclipser_fraction > 0.0 ||
         dropper_fraction > 0.0 || replayer_fraction > 0.0;
}

void AdversaryPlan::validate() const {
  check_fraction(polluter_fraction, "polluter_fraction must be in [0,1]");
  check_fraction(eclipser_fraction, "eclipser_fraction must be in [0,1]");
  check_fraction(dropper_fraction, "dropper_fraction must be in [0,1]");
  check_fraction(replayer_fraction, "replayer_fraction must be in [0,1]");
  PPO_CHECK_MSG(polluter_fraction + eclipser_fraction + dropper_fraction +
                        replayer_fraction <=
                    1.0 + 1e-9,
                "role fractions must sum to at most 1");
  PPO_CHECK_MSG(polluter_tick_multiplier >= 1.0,
                "polluter_tick_multiplier must be >= 1");
  PPO_CHECK_MSG(forged_lifetime_factor >= 0.5,
                "forged_lifetime_factor must be >= 0.5");
  PPO_CHECK_MSG(eclipse_offset >= 1, "eclipse_offset must be >= 1");
}

RoleAssignment materialize_roles(const AdversaryPlan& plan,
                                 std::size_t num_nodes) {
  plan.validate();
  RoleAssignment out;
  out.roles.assign(num_nodes, Role::kHonest);
  out.victim.assign(num_nodes, kNoVictim);
  if (!plan.enabled() || num_nodes == 0) return out;

  std::vector<NodeId> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  Rng rng(derive_seed(plan.seed, kRoleSeedTag));
  rng.shuffle(ids);

  const std::size_t polluters = role_count(plan.polluter_fraction, num_nodes);
  const std::size_t eclipsers = role_count(plan.eclipser_fraction, num_nodes);
  const std::size_t droppers = role_count(plan.dropper_fraction, num_nodes);
  const std::size_t replayers = role_count(plan.replayer_fraction, num_nodes);

  std::size_t next = 0;
  const auto take = [&](std::size_t count, Role role) {
    for (std::size_t i = 0; i < count && next < num_nodes; ++i, ++next)
      out.roles[ids[next]] = role;
  };
  take(polluters, Role::kCachePolluter);
  take(eclipsers, Role::kEclipser);
  take(droppers, Role::kDropper);
  take(replayers, Role::kReplayer);
  out.attacker_count = next;

  // Victims: the unshuffled tail of `ids` is exactly the honest set.
  if (next < num_nodes) {
    const std::size_t honest = num_nodes - next;
    for (NodeId v = 0; v < static_cast<NodeId>(num_nodes); ++v) {
      if (out.roles[v] != Role::kEclipser) continue;
      out.victim[v] = ids[next + static_cast<std::size_t>(
                                     rng.uniform_u64(honest))];
    }
  }
  return out;
}

}  // namespace ppo::adversary
