// Versioned, CRC-sealed checkpoint files (DESIGN.md §13).
//
// File layout (all little-endian):
//   magic   u32  'PPOC'
//   version u32  kVersion
//   crc     u32  CRC-32 over everything after the size field
//   size    u64  byte count of header + payload
//   header       backend kind, shard hint, graph fingerprint, config
//                hash, root seed, sim time
//   payload      opaque component state (services own the schema)
//
// Contract: load validates magic, version, declared size and CRC
// before a single payload byte is parsed; every failure mode maps to
// a distinct Status with a human-readable message — a rejected file
// is a diagnostic, never UB. Writes are atomic: tmp file in the same
// directory, fsync, rename.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.hpp"
#include "graph/csr.hpp"

namespace ppo::ckpt {

inline constexpr std::uint32_t kMagic = 0x434F5050u;  // "PPOC"
inline constexpr std::uint32_t kVersion = 1;

enum class Status {
  kOk,
  kIoError,         // cannot open/read/write the file
  kTruncated,       // shorter than its declared size
  kBadMagic,        // not a checkpoint file
  kBadVersion,      // a format this build does not speak
  kBadCrc,          // bit rot / partial write: checksum mismatch
  kGraphMismatch,   // snapshot of a different trust graph
  kConfigMismatch,  // same graph, different workload configuration
  kUnsupported,     // feature combination outside the checkpoint scope
};

const char* status_name(Status s);

/// Backend the snapshot was taken on. Serial and sharded checkpoints
/// are not interchangeable (different sequencing schemes); sharded
/// checkpoints restore at any shard count.
enum class BackendKind : std::uint8_t { kSerial = 0, kSharded = 1 };

struct Header {
  BackendKind backend = BackendKind::kSerial;
  std::uint32_t shards_hint = 0;        // K at save time (informational)
  std::uint64_t graph_fingerprint = 0;  // fingerprint_graph() of the trust graph
  std::uint64_t config_hash = 0;        // caller-defined workload identity
  std::uint64_t seed = 0;               // root seed of the run
  double sim_time = 0.0;                // virtual time of the snapshot
};

struct LoadResult {
  Status status = Status::kIoError;
  std::string message;
  Header header;
  std::string payload;
  bool ok() const { return status == Status::kOk; }
};

/// Atomically writes `header` + `payload` to `path` (tmp + fsync +
/// rename). Returns false and fills `error` on failure; a failed save
/// never leaves a partial file at `path`.
bool save_file(const std::string& path, const Header& header,
               std::string_view payload, std::string* error);

/// Reads and validates a checkpoint file. On any failure the result
/// carries the precise Status and message; payload is only filled on
/// kOk.
LoadResult load_file(const std::string& path);

/// Compatibility gate run after a structurally valid load: the
/// snapshot must describe the same graph and workload the caller
/// rebuilt. Returns kOk or the specific mismatch.
Status check_compat(const Header& header, BackendKind backend,
                    std::uint64_t graph_fingerprint,
                    std::uint64_t config_hash);

/// Order-independent FNV-1a fingerprint of a trust graph's exact
/// structure (node count + every directed adjacency slot), the
/// load-time identity check against resuming onto the wrong graph.
std::uint64_t fingerprint_graph(const graph::GraphView& g);

/// FNV-1a over a byte string, for config hashes.
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed = 0);

/// Checkpoint files in `dir` named by this module (ckpt-*.ppoc),
/// sorted oldest-first. Missing directory -> empty list.
std::vector<std::string> list_checkpoints(const std::string& dir);

/// Canonical file name for the `index`-th snapshot of a run.
std::string checkpoint_path(const std::string& dir, std::uint64_t index);

}  // namespace ppo::ckpt
