#include "ckpt/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace ppo::ckpt {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

void write_header(Writer& w, const Header& h) {
  w.u8(static_cast<std::uint8_t>(h.backend));
  w.u32(h.shards_hint);
  w.u64(h.graph_fingerprint);
  w.u64(h.config_hash);
  w.u64(h.seed);
  w.f64(h.sim_time);
}

Header read_header(Reader& r) {
  Header h;
  h.backend = static_cast<BackendKind>(r.u8());
  h.shards_hint = r.u32();
  h.graph_fingerprint = r.u64();
  h.config_hash = r.u64();
  h.seed = r.u64();
  h.sim_time = r.f64();
  return h;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320),
  // table built once on first use — no external dependency.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kIoError: return "io_error";
    case Status::kTruncated: return "truncated";
    case Status::kBadMagic: return "bad_magic";
    case Status::kBadVersion: return "bad_version";
    case Status::kBadCrc: return "bad_crc";
    case Status::kGraphMismatch: return "graph_mismatch";
    case Status::kConfigMismatch: return "config_mismatch";
    case Status::kUnsupported: return "unsupported";
  }
  return "unknown";
}

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = kFnvOffset ^ seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fingerprint_graph(const graph::GraphView& g) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, g.num_nodes());
  h = fnv_mix(h, g.num_edges());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    h = fnv_mix(h, v);
    for (const graph::NodeId u : g.neighbors(v)) h = fnv_mix(h, u);
  }
  return h;
}

bool save_file(const std::string& path, const Header& header,
               std::string_view payload, std::string* error) {
  Writer body;
  write_header(body, header);
  const std::string& head = body.buffer();

  Writer file;
  file.u32(kMagic);
  file.u32(kVersion);
  std::uint32_t crc = crc32(head.data(), head.size());
  crc = crc32(payload.data(), payload.size(), crc);
  file.u32(crc);
  file.u64(head.size() + payload.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out.write(file.buffer().data(),
              static_cast<std::streamsize>(file.buffer().size()));
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      if (error) *error = "short write to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  // fsync before rename: the rename must never expose a file whose
  // bytes are still in flight.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error)
      *error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

LoadResult load_file(const std::string& path) {
  LoadResult res;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    res.status = Status::kIoError;
    res.message = "cannot open " + path;
    return res;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    res.status = Status::kIoError;
    res.message = "read error on " + path;
    return res;
  }
  try {
    Reader r(bytes);
    if (r.remaining() < 20) {
      res.status = Status::kTruncated;
      res.message = path + ": shorter than the fixed preamble";
      return res;
    }
    if (r.u32() != kMagic) {
      res.status = Status::kBadMagic;
      res.message = path + ": not a checkpoint file";
      return res;
    }
    const std::uint32_t version = r.u32();
    if (version != kVersion) {
      res.status = Status::kBadVersion;
      res.message = path + ": format version " + std::to_string(version) +
                    ", this build speaks " + std::to_string(kVersion);
      return res;
    }
    const std::uint32_t want_crc = r.u32();
    const std::uint64_t declared = r.u64();
    if (declared > r.remaining()) {
      res.status = Status::kTruncated;
      res.message = path + ": declares " + std::to_string(declared) +
                    " bytes, " + std::to_string(r.remaining()) + " present";
      return res;
    }
    const char* body = bytes.data() + (bytes.size() - r.remaining());
    const std::uint32_t got_crc =
        crc32(body, static_cast<std::size_t>(declared));
    if (got_crc != want_crc) {
      res.status = Status::kBadCrc;
      res.message = path + ": checksum mismatch (file corrupt)";
      return res;
    }
    const std::size_t before_header = r.remaining();
    res.header = read_header(r);
    if (declared < before_header - r.remaining()) {
      res.status = Status::kTruncated;
      res.message = path + ": declared size smaller than the header";
      return res;
    }
    // Only the CRC-sealed span belongs to the payload — bytes past the
    // declared size (e.g. junk appended after the fact) are excluded,
    // and the payload parser's final done() check stays meaningful.
    const std::size_t header_bytes = before_header - r.remaining();
    res.payload.assign(bytes, bytes.size() - r.remaining(),
                       static_cast<std::size_t>(declared) - header_bytes);
    res.status = Status::kOk;
  } catch (const ParseError& e) {
    res.status = Status::kTruncated;
    res.message = path + ": " + e.what();
  }
  return res;
}

Status check_compat(const Header& header, BackendKind backend,
                    std::uint64_t graph_fingerprint,
                    std::uint64_t config_hash) {
  if (header.graph_fingerprint != graph_fingerprint)
    return Status::kGraphMismatch;
  if (header.config_hash != config_hash) return Status::kConfigMismatch;
  if (header.backend != backend) return Status::kUnsupported;
  return Status::kOk;
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 10 && name.rfind("ckpt-", 0) == 0 &&
        name.substr(name.size() - 5) == ".ppoc")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof name, "ckpt-%08llu.ppoc",
                static_cast<unsigned long long>(index));
  return dir + "/" + name;
}

}  // namespace ppo::ckpt
