// Dependency-free binary serialization for checkpoints: a growable
// little-endian Writer, a bounds-checked Reader that throws
// ckpt::ParseError on any overrun or tag mismatch (the load path
// catches it and turns it into a clean Status), and the CRC-32
// (IEEE 802.3, reflected) used to seal every checkpoint file.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace ppo::ckpt {

/// CRC-32 over `data`, continuing from `crc` (pass 0 to start).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t crc = 0);

/// Thrown by Reader on truncation, overrun or a section-tag mismatch.
/// Never escapes the ckpt load entry points.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian byte sink. All integers are fixed-width;
/// doubles are raw IEEE-754 bits (bit-exactness is the whole point).
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    size(s.size());
    raw(s.data(), s.size());
  }

  void rng(const Rng& r) {
    for (std::uint64_t w : r.state()) u64(w);
  }

  void u64_vec(const std::vector<std::uint64_t>& v) {
    size(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  /// Section tag: a cheap structural guard so a version-skewed payload
  /// fails at the section boundary instead of misparsing silently.
  void tag(std::uint32_t t) { u32(t); }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte span. Every read
/// throws ParseError rather than reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[off_++]);
  }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  double f64() { return fixed<double>(); }
  bool b() { return u8() != 0; }

  std::size_t size() {
    const std::uint64_t v = u64();
    // A size can never exceed the bytes that remain: catching it here
    // turns a corrupt length into a diagnostic instead of a bad_alloc.
    if (v > remaining())
      throw ParseError("length field exceeds remaining payload");
    return static_cast<std::size_t>(v);
  }

  std::string str() {
    const std::size_t n = size();
    need(n);
    std::string out(data_.substr(off_, n));
    off_ += n;
    return out;
  }

  Rng rng() {
    std::array<std::uint64_t, 4> s;
    for (auto& w : s) w = u64();
    Rng r(0);
    r.set_state(s);
    return r;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::size_t n = size();
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(u64());
    return out;
  }

  void tag(std::uint32_t expected) {
    const std::uint32_t got = u32();
    if (got != expected)
      throw ParseError("section tag mismatch: expected " +
                       std::to_string(expected) + ", got " +
                       std::to_string(got));
  }

  std::size_t remaining() const { return data_.size() - off_; }
  bool done() const { return off_ == data_.size(); }

 private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (n > remaining()) throw ParseError("payload truncated mid-field");
  }

  std::string_view data_;
  std::size_t off_ = 0;
};

}  // namespace ppo::ckpt
