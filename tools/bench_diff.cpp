// Compares two BENCH_*.json reports (the figure benches' --json
// output) and flags wall-clock regressions.
//
//   bench_diff <baseline.json> <candidate.json> [--threshold 0.20]
//              [--strict-counters]
//
// Rolling-history mode takes ONE report plus `--history <file>`: the
// file is a JSONL ledger of compact per-commit snapshots ({commit,
// artefact, schema_version, wall_seconds, peak_rss_bytes,
// cell_seconds, warm_start}). Reports produced with --warm-start-dir
// carry a `warm_start` block (runs forked from warmup snapshots vs
// cold, and the wall seconds each side cost); ledger rows keep it, so
// the history window can report the measured warm-start speedup of a
// forked sweep against the fastest cold run on record.
// The candidate is compared against the fastest of
// the last N entries (`--last N`, default 10) for the same artefact —
// the fastest, so a slow baseline commit cannot mask a real
// regression — and its peak RSS against the leanest of the same
// window. `--append`
// records the candidate at the end of the ledger afterwards (tag it
// with `--commit <sha>`), keeping a per-commit trend CI can grow one
// run at a time:
//
//   bench_diff BENCH_fig3.json --history fig3.history.jsonl \
//              --last 10 --append --commit "$GITHUB_SHA"
//
// Compares the envelope's total `wall_seconds`, the `peak_rss_bytes`
// memory footprint (when both reports carry one) and, when both
// reports carry sweep telemetry, the per-cell seconds. Also diffs every
// ProtocolHealth rollup found anywhere in the two documents
// (recognized by its requests_sent/messages_sent counters, keyed by
// JSON path) and the envelope's `metrics` registry block — advisory by
// default, since counter drift usually means the workload changed, not
// that it regressed. `--strict-counters` turns any counter difference
// into a failure, which is how CI pins exact determinism of a fixed
// seed. Exit code: 0 = within threshold (or candidate faster), 1 =
// regression beyond threshold, 2 = usage/parse error. Reports from
// different artefacts or schema versions diff with a warning — the
// numbers may not be comparable.
//
// Intended for CI: run the reduced-scale bench, then diff against the
// committed baseline (e.g. BENCH_fig3.json) so >20% slowdowns surface
// in the job log before they land.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runner/json.hpp"

namespace {

using ppo::runner::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << path << ": " << e.what() << "\n";
    std::exit(2);
  }
}

double ratio_change(double baseline, double candidate) {
  if (baseline <= 0.0) return 0.0;
  return (candidate - baseline) / baseline;
}

std::string percent(double change) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * change);
  return buf;
}

/// Pulls the per-cell telemetry seconds out of a report, if present
/// (the figure payload lives under "figure", telemetry under
/// "figure.telemetry").
std::vector<double> cell_seconds(const Json& doc) {
  std::vector<double> out;
  if (!doc.contains("figure")) return out;
  const Json& fig = doc.at("figure");
  if (!fig.is_object() || !fig.contains("telemetry")) return out;
  const Json& telemetry = fig.at("telemetry");
  if (!telemetry.is_object() || !telemetry.contains("cell_seconds")) return out;
  const Json& cells = telemetry.at("cell_seconds");
  for (std::size_t i = 0; i < cells.size(); ++i)
    out.push_back(cells.at(i).as_double());
  return out;
}

std::string field_or(const Json& doc, const char* key,
                     const std::string& fallback) {
  if (doc.contains(key) && doc.at(key).is_string())
    return doc.at(key).as_string();
  return fallback;
}

/// A ProtocolHealth rollup is any object carrying both flagship
/// counters — that shape is stable across every bench that embeds one.
bool looks_like_health(const Json& value) {
  return value.is_object() && value.contains("requests_sent") &&
         value.contains("messages_sent");
}

/// Collects every health rollup in the document keyed by its JSON
/// path (e.g. "figure.health[2]"), with the entry's own "name"/"alpha"
/// discriminator appended so paths stay meaningful when arrays are
/// reordered between schema versions.
void collect_health(const Json& value, const std::string& path,
                    std::map<std::string, const Json*>& out) {
  if (looks_like_health(value)) {
    std::string key = path;
    if (value.contains("name") && value.at("name").is_string())
      key += "(" + value.at("name").as_string() + ")";
    else if (value.contains("alpha") && value.at("alpha").is_number())
      key += "(alpha=" + std::to_string(value.at("alpha").as_double()) + ")";
    out.emplace(key, &value);
    return;
  }
  if (value.is_object()) {
    for (const auto& [k, v] : value.members())
      collect_health(v, path.empty() ? k : path + "." + k, out);
  } else if (value.is_array()) {
    for (std::size_t i = 0; i < value.size(); ++i)
      collect_health(value.at(i), path + "[" + std::to_string(i) + "]", out);
  }
}

/// Diffs the numeric members two health rollups share. Returns the
/// number of differing counters (rates are reported but not counted —
/// they are derived values).
std::size_t diff_health(const std::string& key, const Json& base,
                        const Json& cand) {
  std::size_t changed = 0;
  for (const auto& [name, bval] : base.members()) {
    if (!bval.is_number() || !cand.contains(name)) continue;
    const Json& cval = cand.at(name);
    if (!cval.is_number()) continue;
    const double b = bval.as_double();
    const double c = cval.as_double();
    if (b == c) continue;
    const bool rate = name.find("_rate") != std::string::npos;
    std::cout << "  health " << key << "." << name << ": " << b << " -> "
              << c;
    if (b > 0.0) std::cout << " (" << percent(ratio_change(b, c)) << ")";
    std::cout << (rate ? " [derived]" : "") << "\n";
    if (!rate) ++changed;
  }
  return changed;
}

/// Diffs one section ("counters" or "gauges") of two envelope
/// `metrics` registry blocks. Returns the number of differing or
/// missing entries.
std::size_t diff_metric_section(const Json& base, const Json& cand,
                                const char* section) {
  std::size_t changed = 0;
  const bool has_base = base.contains(section) && base.at(section).is_object();
  const bool has_cand = cand.contains(section) && cand.at(section).is_object();
  if (!has_base && !has_cand) return 0;
  if (has_base) {
    for (const auto& [key, bval] : base.at(section).members()) {
      if (!has_cand || !cand.at(section).contains(key)) {
        std::cout << "  metrics." << section << " " << key
                  << ": missing from candidate\n";
        ++changed;
        continue;
      }
      const Json& cval = cand.at(section).at(key);
      if (!bval.is_number() || !cval.is_number()) continue;
      const double b = bval.as_double();
      const double c = cval.as_double();
      if (b == c) continue;
      std::cout << "  metrics." << section << " " << key << ": " << b
                << " -> " << c;
      if (b > 0.0) std::cout << " (" << percent(ratio_change(b, c)) << ")";
      std::cout << "\n";
      ++changed;
    }
  }
  if (has_cand) {
    for (const auto& [key, cval] : cand.at(section).members()) {
      (void)cval;
      if (!has_base || !base.at(section).contains(key)) {
        std::cout << "  metrics." << section << " " << key
                  << ": new in candidate\n";
        ++changed;
      }
    }
  }
  return changed;
}

/// Diffs one nested-object section of two `metrics` blocks —
/// "histograms" / "streaming", whose cells are {count, mean, p50,
/// p95, ...} objects. Quantile and mean drift is advisory (they move
/// with machine load and bucket resolution); the `count` field is a
/// counter and contributes to the returned change total, which
/// --strict-counters turns into a failure.
std::size_t diff_quantile_section(const Json& base, const Json& cand,
                                  const char* section) {
  std::size_t count_changes = 0;
  const bool has_base = base.contains(section) && base.at(section).is_object();
  const bool has_cand = cand.contains(section) && cand.at(section).is_object();
  if (!has_base && !has_cand) return 0;
  if (has_base) {
    for (const auto& [key, bcell] : base.at(section).members()) {
      if (!has_cand || !cand.at(section).contains(key)) {
        std::cout << "  metrics." << section << " " << key
                  << ": missing from candidate\n";
        ++count_changes;
        continue;
      }
      const Json& ccell = cand.at(section).at(key);
      if (!bcell.is_object() || !ccell.is_object()) continue;
      for (const auto& [field, bval] : bcell.members()) {
        if (!bval.is_number() || !ccell.contains(field)) continue;
        const Json& cval = ccell.at(field);
        if (!cval.is_number()) continue;
        const double b = bval.as_double();
        const double c = cval.as_double();
        if (b == c) continue;
        const bool is_count = field == "count";
        std::cout << "  metrics." << section << " " << key << "." << field
                  << ": " << b << " -> " << c;
        if (b > 0.0) std::cout << " (" << percent(ratio_change(b, c)) << ")";
        std::cout << (is_count ? "" : " [quantile: advisory]") << "\n";
        if (is_count) ++count_changes;
      }
    }
  }
  if (has_cand) {
    for (const auto& [key, ccell] : cand.at(section).members()) {
      (void)ccell;
      if (!has_base || !base.at(section).contains(key)) {
        std::cout << "  metrics." << section << " " << key
                  << ": new in candidate\n";
        ++count_changes;
      }
    }
  }
  return count_changes;
}

/// The candidate's streaming/histogram quantile summaries in ledger
/// form: family -> {count, p50, p95, p99, p999}. Rows carry them so a
/// history window can show latency drift next to wall time.
Json quantiles_of(const Json& doc) {
  Json out = Json::object();
  if (!doc.contains("metrics") || !doc.at("metrics").is_object()) return out;
  const Json& metrics = doc.at("metrics");
  for (const char* section : {"streaming", "histograms"}) {
    if (!metrics.contains(section) || !metrics.at(section).is_object())
      continue;
    for (const auto& [key, cell] : metrics.at(section).members()) {
      if (!cell.is_object()) continue;
      Json row = Json::object();
      for (const char* field : {"count", "p50", "p95", "p99", "p999"})
        if (cell.contains(field) && cell.at(field).is_number())
          row[field] = cell.at(field).as_double();
      out[key] = std::move(row);
    }
  }
  return out;
}

/// Numeric field access tolerant of absence (returns 0.0).
double number_or_zero(const Json& doc, const char* key) {
  if (doc.contains(key) && doc.at(key).is_number())
    return doc.at(key).as_double();
  return 0.0;
}

/// Compact per-commit snapshot of a report for the history ledger.
Json snapshot_of(const Json& doc, const std::string& commit) {
  Json snap = Json::object();
  snap["commit"] = commit;
  snap["artefact"] = field_or(doc, "artefact", "?");
  if (doc.contains("schema_version"))
    snap["schema_version"] = doc.at("schema_version").as_int();
  snap["wall_seconds"] = doc.contains("wall_seconds")
                             ? doc.at("wall_seconds").as_double()
                             : 0.0;
  if (doc.contains("peak_rss_bytes"))
    snap["peak_rss_bytes"] = doc.at("peak_rss_bytes").as_double();
  snap["cell_seconds"] = Json::array_of(cell_seconds(doc));
  // Warm-start accounting rides along verbatim so the history window
  // can compute forked-vs-cold speedup across commits.
  if (doc.contains("warm_start") && doc.at("warm_start").is_object()) {
    Json warm = Json::object();
    for (const char* field :
         {"warm_runs", "cold_runs", "warm_seconds", "cold_seconds"})
      warm[field] = number_or_zero(doc.at("warm_start"), field);
    snap["warm_start"] = std::move(warm);
  }
  Json quantiles = quantiles_of(doc);
  if (!quantiles.members().empty()) snap["quantiles"] = std::move(quantiles);
  return snap;
}

/// Warm-start runs recorded in a report/ledger entry (0 when the run
/// was cold or predates warm-start accounting).
double warm_runs_of(const Json& doc) {
  if (!doc.contains("warm_start") || !doc.at("warm_start").is_object())
    return 0.0;
  return number_or_zero(doc.at("warm_start"), "warm_runs");
}

std::vector<Json> load_history(const std::string& path) {
  std::vector<Json> entries;
  std::ifstream in(path);
  if (!in) return entries;  // no ledger yet: empty history is fine
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      entries.push_back(Json::parse(line));
    } catch (const std::exception& e) {
      std::cerr << "bench_diff: " << path << ":" << lineno << ": " << e.what()
                << "\n";
      std::exit(2);
    }
  }
  return entries;
}

/// Rolling-history mode: candidate vs the fastest of the last N
/// same-artefact ledger entries, optional append. Returns the exit
/// code.
int run_history_mode(const Json& candidate, const std::string& history_path,
                     std::size_t last_n, bool append,
                     const std::string& commit, double threshold) {
  const std::string artefact = field_or(candidate, "artefact", "?");
  const double cand_wall = candidate.contains("wall_seconds")
                               ? candidate.at("wall_seconds").as_double()
                               : 0.0;

  std::vector<Json> entries = load_history(history_path);
  std::vector<const Json*> window;
  for (const Json& entry : entries) {
    if (field_or(entry, "artefact", "?") != artefact) continue;
    window.push_back(&entry);
  }
  if (window.size() > last_n)
    window.erase(window.begin(),
                 window.begin() + static_cast<std::ptrdiff_t>(
                                      window.size() - last_n));

  bool regression = false;
  std::cout << artefact << ": candidate wall_seconds " << cand_wall << ", "
            << window.size() << " history entr"
            << (window.size() == 1 ? "y" : "ies") << " (last " << last_n
            << ")\n";
  const Json* best = nullptr;
  for (const Json* entry : window) {
    const double wall = entry->contains("wall_seconds")
                            ? entry->at("wall_seconds").as_double()
                            : 0.0;
    std::cout << "  " << field_or(*entry, "commit", "(untagged)") << ": "
              << wall << " s (" << percent(ratio_change(wall, cand_wall))
              << " vs candidate)";
    if (warm_runs_of(*entry) > 0.0)
      std::cout << " [warm-start: "
                << static_cast<std::uint64_t>(warm_runs_of(*entry))
                << " forked runs]";
    std::cout << "\n";
    if (wall <= 0.0) continue;
    if (best == nullptr || wall < best->at("wall_seconds").as_double())
      best = entry;
  }
  if (best != nullptr) {
    const double best_wall = best->at("wall_seconds").as_double();
    const double change = ratio_change(best_wall, cand_wall);
    std::cout << "  fastest of window: "
              << field_or(*best, "commit", "(untagged)") << " at " << best_wall
              << " s; candidate " << percent(change) << "\n";
    if (change > threshold) {
      std::cout << "  REGRESSION: wall time up more than "
                << percent(threshold) << " vs fastest recent run\n";
      if (warm_runs_of(*best) > 0.0 && warm_runs_of(candidate) <= 0.0)
        std::cout << "  note: fastest window entry was warm-started; a cold "
                     "candidate pays the full warmup\n";
      regression = true;
    }
  } else {
    std::cout << "  (no comparable history — nothing to diff against)\n";
  }

  // Warm-start speedup, advisory: a candidate whose sweep forked its
  // cells from warmup snapshots, measured against the fastest fully
  // cold run in the window. The wall-time gate above is unaffected.
  const double cand_warm_runs = warm_runs_of(candidate);
  if (cand_warm_runs > 0.0 && cand_wall > 0.0) {
    const Json& ws = candidate.at("warm_start");
    std::cout << "  warm-start: "
              << static_cast<std::uint64_t>(cand_warm_runs) << " forked + "
              << static_cast<std::uint64_t>(number_or_zero(ws, "cold_runs"))
              << " cold runs, restore wall "
              << number_or_zero(ws, "warm_seconds") << " s\n";
    const Json* cold = nullptr;
    for (const Json* entry : window) {
      if (warm_runs_of(*entry) > 0.0) continue;
      const double wall = number_or_zero(*entry, "wall_seconds");
      if (wall <= 0.0) continue;
      if (cold == nullptr || wall < number_or_zero(*cold, "wall_seconds"))
        cold = entry;
    }
    if (cold != nullptr) {
      const double cold_wall = number_or_zero(*cold, "wall_seconds");
      std::cout << "  warm-start speedup vs fastest cold run ("
                << field_or(*cold, "commit", "(untagged)") << " at "
                << cold_wall << " s): " << cold_wall / cand_wall << "x\n";
    } else {
      std::cout << "  (no cold history entry to measure warm-start speedup "
                   "against)\n";
    }
  }

  // Latency-quantile drift vs the fastest window entry, advisory:
  // wall-clock quantiles move with machine load, so they inform, not
  // gate.
  if (best != nullptr && best->contains("quantiles") &&
      best->at("quantiles").is_object()) {
    const Json cand_q = quantiles_of(candidate);
    for (const auto& [family, brow] : best->at("quantiles").members()) {
      if (!cand_q.contains(family) || !brow.is_object()) continue;
      const Json& crow = cand_q.at(family);
      for (const char* field : {"p50", "p95", "p99", "p999"}) {
        if (!brow.contains(field) || !crow.contains(field)) continue;
        const double b = brow.at(field).as_double();
        const double c = crow.at(field).as_double();
        if (b == c) continue;
        std::cout << "  quantile " << family << "." << field << ": " << b
                  << " -> " << c << " (" << percent(ratio_change(b, c))
                  << ", advisory)\n";
      }
    }
  }

  // Memory trend: candidate peak RSS vs the leanest recent run.
  const double cand_rss = number_or_zero(candidate, "peak_rss_bytes");
  if (cand_rss > 0.0) {
    const Json* leanest = nullptr;
    for (const Json* entry : window) {
      const double rss = number_or_zero(*entry, "peak_rss_bytes");
      if (rss <= 0.0) continue;
      if (leanest == nullptr ||
          rss < number_or_zero(*leanest, "peak_rss_bytes"))
        leanest = entry;
    }
    if (leanest != nullptr) {
      const double best_rss = number_or_zero(*leanest, "peak_rss_bytes");
      const double change = ratio_change(best_rss, cand_rss);
      std::cout << "  leanest of window: "
                << field_or(*leanest, "commit", "(untagged)") << " at "
                << best_rss << " peak RSS bytes; candidate " << cand_rss
                << " (" << percent(change) << ")\n";
      if (change > threshold) {
        std::cout << "  REGRESSION: peak RSS up more than "
                  << percent(threshold) << " vs leanest recent run\n";
        regression = true;
      }
    }
  }

  if (append) {
    std::ofstream out(history_path, std::ios::app);
    if (!out) {
      std::cerr << "bench_diff: cannot append to " << history_path << "\n";
      return 2;
    }
    out << snapshot_of(candidate, commit).dump() << "\n";
    if (!out) {
      std::cerr << "bench_diff: write to " << history_path << " failed\n";
      return 2;
    }
    std::cout << "  appended snapshot"
              << (commit.empty() ? "" : " for commit " + commit) << " to "
              << history_path << "\n";
  }

  std::cout << (regression ? "RESULT: regression beyond threshold\n"
                           : "RESULT: within threshold\n");
  return regression ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.20;
  bool strict_counters = false;
  std::string history_path;
  std::size_t last_n = 10;
  bool append = false;
  std::string commit;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      threshold = std::stod(value_of("--threshold"));
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(12));
    } else if (arg == "--strict-counters") {
      strict_counters = true;
    } else if (arg == "--history") {
      history_path = value_of("--history");
    } else if (arg == "--last") {
      last_n = static_cast<std::size_t>(std::stoul(value_of("--last")));
    } else if (arg == "--append") {
      append = true;
    } else if (arg == "--commit") {
      commit = value_of("--commit");
    } else {
      paths.push_back(arg);
    }
  }
  if (!history_path.empty()) {
    if (paths.size() != 1 || last_n == 0) {
      std::cerr << "usage: bench_diff <candidate.json> --history <file>"
                   " [--last N] [--append] [--commit SHA]"
                   " [--threshold 0.20]\n";
      return 2;
    }
    return run_history_mode(load(paths[0]), history_path, last_n, append,
                            commit, threshold);
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bench_diff <baseline.json> <candidate.json>"
                 " [--threshold 0.20] [--strict-counters]\n"
                 "       bench_diff <candidate.json> --history <file>"
                 " [--last N] [--append] [--commit SHA]\n";
    return 2;
  }

  const Json baseline = load(paths[0]);
  const Json candidate = load(paths[1]);

  const std::string base_artefact = field_or(baseline, "artefact", "?");
  const std::string cand_artefact = field_or(candidate, "artefact", "?");
  if (base_artefact != cand_artefact)
    std::cerr << "bench_diff: WARNING: comparing different artefacts ('"
              << base_artefact << "' vs '" << cand_artefact << "')\n";
  if (baseline.contains("schema_version") &&
      candidate.contains("schema_version") &&
      baseline.at("schema_version").as_int() !=
          candidate.at("schema_version").as_int())
    std::cerr << "bench_diff: WARNING: schema versions differ ("
              << baseline.at("schema_version").as_int() << " vs "
              << candidate.at("schema_version").as_int() << ")\n";

  bool regression = false;

  const double base_wall = baseline.contains("wall_seconds")
                               ? baseline.at("wall_seconds").as_double()
                               : 0.0;
  const double cand_wall = candidate.contains("wall_seconds")
                               ? candidate.at("wall_seconds").as_double()
                               : 0.0;
  const double wall_change = ratio_change(base_wall, cand_wall);
  std::cout << base_artefact << ": wall_seconds " << base_wall << " -> "
            << cand_wall << " (" << percent(wall_change) << ")\n";
  if (wall_change > threshold) {
    std::cout << "  REGRESSION: total wall time up more than "
              << percent(threshold) << "\n";
    regression = true;
  }

  const double base_rss = number_or_zero(baseline, "peak_rss_bytes");
  const double cand_rss = number_or_zero(candidate, "peak_rss_bytes");
  if (base_rss > 0.0 && cand_rss > 0.0) {
    const double rss_change = ratio_change(base_rss, cand_rss);
    std::cout << "  peak_rss_bytes " << base_rss << " -> " << cand_rss << " ("
              << percent(rss_change) << ")\n";
    if (rss_change > threshold) {
      std::cout << "  REGRESSION: peak RSS up more than " << percent(threshold)
                << "\n";
      regression = true;
    }
  }

  const std::vector<double> base_cells = cell_seconds(baseline);
  const std::vector<double> cand_cells = cell_seconds(candidate);
  if (!base_cells.empty() && base_cells.size() == cand_cells.size()) {
    for (std::size_t i = 0; i < base_cells.size(); ++i) {
      const double change = ratio_change(base_cells[i], cand_cells[i]);
      if (change > threshold) {
        std::cout << "  REGRESSION: cell " << i << " " << base_cells[i]
                  << " s -> " << cand_cells[i] << " s ("
                  << percent(change) << ")\n";
        regression = true;
      }
    }
  } else if (base_cells.size() != cand_cells.size()) {
    std::cout << "  (cell telemetry not comparable: " << base_cells.size()
              << " vs " << cand_cells.size() << " cells)\n";
  }

  // Health rollups anywhere in the documents, matched by JSON path.
  std::map<std::string, const Json*> base_health, cand_health;
  collect_health(baseline, "", base_health);
  collect_health(candidate, "", cand_health);
  std::size_t counter_changes = 0;
  for (const auto& [key, base_entry] : base_health) {
    const auto it = cand_health.find(key);
    if (it == cand_health.end()) {
      std::cout << "  health " << key << ": missing from candidate\n";
      ++counter_changes;
      continue;
    }
    counter_changes += diff_health(key, *base_entry, *it->second);
  }
  for (const auto& [key, entry] : cand_health) {
    (void)entry;
    if (base_health.find(key) == base_health.end()) {
      std::cout << "  health " << key << ": new in candidate\n";
      ++counter_changes;
    }
  }

  // Envelope metrics registry block (schema v3).
  const bool base_has_metrics =
      baseline.contains("metrics") && baseline.at("metrics").is_object();
  const bool cand_has_metrics =
      candidate.contains("metrics") && candidate.at("metrics").is_object();
  if (base_has_metrics || cand_has_metrics) {
    static const Json kEmpty = Json::object();
    const Json& bm = base_has_metrics ? baseline.at("metrics") : kEmpty;
    const Json& cm = cand_has_metrics ? candidate.at("metrics") : kEmpty;
    counter_changes += diff_metric_section(bm, cm, "counters");
    diff_metric_section(bm, cm, "gauges");  // derived values: advisory only
    // Histogram/streaming quantiles: the `count` fields are counters
    // (strict-gated); the quantiles themselves are advisory.
    counter_changes += diff_quantile_section(bm, cm, "histograms");
    counter_changes += diff_quantile_section(bm, cm, "streaming");
  }

  if (counter_changes > 0) {
    std::cout << "  " << counter_changes
              << " counter difference(s) — workload changed"
              << (strict_counters ? "" : " (advisory; --strict-counters to fail)")
              << "\n";
    if (strict_counters) regression = true;
  }

  std::cout << (regression ? "RESULT: regression beyond threshold\n"
                           : "RESULT: within threshold\n");
  return regression ? 1 : 0;
}
