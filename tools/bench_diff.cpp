// Compares two BENCH_*.json reports (the figure benches' --json
// output) and flags wall-clock regressions.
//
//   bench_diff <baseline.json> <candidate.json> [--threshold 0.20]
//
// Compares the envelope's total `wall_seconds` and, when both reports
// carry sweep telemetry, the per-cell seconds. Exit code: 0 = within
// threshold (or candidate faster), 1 = regression beyond threshold,
// 2 = usage/parse error. Reports from different artefacts or schema
// versions diff with a warning — the numbers may not be comparable.
//
// Intended for CI: run the reduced-scale bench, then diff against the
// committed baseline (e.g. BENCH_fig3.json) so >20% slowdowns surface
// in the job log before they land.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/json.hpp"

namespace {

using ppo::runner::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_diff: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << path << ": " << e.what() << "\n";
    std::exit(2);
  }
}

double ratio_change(double baseline, double candidate) {
  if (baseline <= 0.0) return 0.0;
  return (candidate - baseline) / baseline;
}

std::string percent(double change) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * change);
  return buf;
}

/// Pulls the per-cell telemetry seconds out of a report, if present
/// (the figure payload lives under "figure", telemetry under
/// "figure.telemetry").
std::vector<double> cell_seconds(const Json& doc) {
  std::vector<double> out;
  if (!doc.contains("figure")) return out;
  const Json& fig = doc.at("figure");
  if (!fig.is_object() || !fig.contains("telemetry")) return out;
  const Json& telemetry = fig.at("telemetry");
  if (!telemetry.is_object() || !telemetry.contains("cell_seconds")) return out;
  const Json& cells = telemetry.at("cell_seconds");
  for (std::size_t i = 0; i < cells.size(); ++i)
    out.push_back(cells.at(i).as_double());
  return out;
}

std::string field_or(const Json& doc, const char* key,
                     const std::string& fallback) {
  if (doc.contains(key) && doc.at(key).is_string())
    return doc.at(key).as_string();
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: --threshold needs a value\n";
        return 2;
      }
      threshold = std::stod(argv[++i]);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::stod(arg.substr(12));
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "usage: bench_diff <baseline.json> <candidate.json>"
                 " [--threshold 0.20]\n";
    return 2;
  }

  const Json baseline = load(paths[0]);
  const Json candidate = load(paths[1]);

  const std::string base_artefact = field_or(baseline, "artefact", "?");
  const std::string cand_artefact = field_or(candidate, "artefact", "?");
  if (base_artefact != cand_artefact)
    std::cerr << "bench_diff: WARNING: comparing different artefacts ('"
              << base_artefact << "' vs '" << cand_artefact << "')\n";
  if (baseline.contains("schema_version") &&
      candidate.contains("schema_version") &&
      baseline.at("schema_version").as_int() !=
          candidate.at("schema_version").as_int())
    std::cerr << "bench_diff: WARNING: schema versions differ ("
              << baseline.at("schema_version").as_int() << " vs "
              << candidate.at("schema_version").as_int() << ")\n";

  bool regression = false;

  const double base_wall = baseline.contains("wall_seconds")
                               ? baseline.at("wall_seconds").as_double()
                               : 0.0;
  const double cand_wall = candidate.contains("wall_seconds")
                               ? candidate.at("wall_seconds").as_double()
                               : 0.0;
  const double wall_change = ratio_change(base_wall, cand_wall);
  std::cout << base_artefact << ": wall_seconds " << base_wall << " -> "
            << cand_wall << " (" << percent(wall_change) << ")\n";
  if (wall_change > threshold) {
    std::cout << "  REGRESSION: total wall time up more than "
              << percent(threshold) << "\n";
    regression = true;
  }

  const std::vector<double> base_cells = cell_seconds(baseline);
  const std::vector<double> cand_cells = cell_seconds(candidate);
  if (!base_cells.empty() && base_cells.size() == cand_cells.size()) {
    for (std::size_t i = 0; i < base_cells.size(); ++i) {
      const double change = ratio_change(base_cells[i], cand_cells[i]);
      if (change > threshold) {
        std::cout << "  REGRESSION: cell " << i << " " << base_cells[i]
                  << " s -> " << cand_cells[i] << " s ("
                  << percent(change) << ")\n";
        regression = true;
      }
    }
  } else if (base_cells.size() != cand_cells.size()) {
    std::cout << "  (cell telemetry not comparable: " << base_cells.size()
              << " vs " << cand_cells.size() << " cells)\n";
  }

  std::cout << (regression ? "RESULT: regression beyond threshold\n"
                           : "RESULT: within threshold\n");
  return regression ? 1 : 0;
}
