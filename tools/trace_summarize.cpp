// Summarizes a .trace.jsonl artefact (the JSONL export of the sim
// tracer, see src/obs) without opening a browser:
//
//   trace_summarize <run.trace.jsonl> [--top 10]
//
// Prints four views:
//   - record counts per category and per event name (top N),
//   - a per-shard load table (records, executed events from the
//     "window_events" counters, drained mailbox messages),
//   - shuffle-exchange latency percentiles, overall and for the
//     busiest nodes, matched from the begin/end span records,
//   - a flamegraph-style self-time rollup over ALL span kinds
//     (exchange, route_walk, dht_lookup, ...): per span name, total
//     sim-time and SELF sim-time — total minus the portions covered
//     by spans nested inside it on the same origin track — so the
//     span kind that actually dominates a run's sim-time reads off
//     one table instead of a browser timeline.
//
// Exit code: 0 on success, 2 on usage/parse errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "runner/json.hpp"

namespace {

using ppo::runner::Json;

struct ShardLoad {
  std::uint64_t records = 0;
  double window_events = 0.0;    // sum of "window_events" counters
  double mailbox_drained = 0.0;  // sum of "mailbox_drained" counters
};

struct NodeLatency {
  std::vector<double> latencies;
};

/// A completed begin/end span pair on one origin track.
struct Span {
  std::string name;  // "cat/name"
  std::uint64_t origin = 0;
  double t0 = 0.0;
  double t1 = 0.0;
};

struct SelfTimeRow {
  std::uint64_t count = 0;
  double total = 0.0;
  double self = 0.0;
};

/// Flamegraph-style rollup: per span name, total duration and SELF
/// duration (total minus the time covered by spans nested inside it
/// on the same origin track). Spans are async and may overlap
/// partially; only the overlapping portion is attributed to the
/// enclosing span's children.
std::map<std::string, SelfTimeRow> self_time_rollup(std::vector<Span> spans) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     if (a.origin != b.origin) return a.origin < b.origin;
                     if (a.t0 != b.t0) return a.t0 < b.t0;
                     return a.t1 > b.t1;  // longer (outer) span first
                   });
  std::map<std::string, SelfTimeRow> rows;
  // Per-track stack of (end time, pointer to the row's self slot).
  std::vector<std::pair<double, std::string>> stack;
  std::uint64_t track = ~std::uint64_t{0};
  std::vector<double> covered;  // child time of stack[i]
  const auto pop_one = [&] {
    rows[stack.back().second].self -= covered.back();
    stack.pop_back();
    covered.pop_back();
  };
  for (const Span& s : spans) {
    if (s.origin != track) {
      while (!stack.empty()) pop_one();
      track = s.origin;
    }
    while (!stack.empty() && stack.back().first <= s.t0) pop_one();
    const double d = s.t1 - s.t0;
    SelfTimeRow& row = rows[s.name];
    ++row.count;
    row.total += d;
    row.self += d;
    if (!stack.empty()) {
      // Attribute the nested (overlapping) portion to the parent's
      // children; clip for partial overlaps.
      covered.back() += std::min(s.t1, stack.back().first) - s.t0;
    }
    stack.emplace_back(s.t1, s.name);
    covered.push_back(0.0);
  }
  while (!stack.empty()) pop_one();
  return rows;
}

std::string fmt(double v, int decimals = 3) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) {
        std::cerr << "trace_summarize: --top needs a value\n";
        return 2;
      }
      top = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg.rfind("--top=", 0) == 0) {
      top = static_cast<std::size_t>(std::stoul(arg.substr(6)));
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: trace_summarize <run.trace.jsonl> [--top N]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: trace_summarize <run.trace.jsonl> [--top N]\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_summarize: cannot read " << path << "\n";
    return 2;
  }

  std::uint64_t total = 0;
  double t_min = 0.0, t_max = 0.0;
  std::map<std::string, std::uint64_t> by_category;
  std::map<std::string, std::uint64_t> by_name;  // "cat/name"
  std::map<std::uint64_t, ShardLoad> shards;
  // Open exchange spans keyed by span id; completed latencies per node.
  std::map<std::uint64_t, double> open_spans;
  std::map<std::uint64_t, NodeLatency> nodes;
  std::vector<double> all_latencies;
  // Every span kind, for the self-time rollup: open spans keyed by
  // (cat/name, id) — ids are unique per kind, not globally.
  std::map<std::pair<std::string, std::uint64_t>, std::pair<double, std::uint64_t>>
      open_generic;  // -> (begin t, origin)
  std::vector<Span> completed_spans;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Json rec;
    try {
      rec = Json::parse(line);
    } catch (const std::exception& e) {
      std::cerr << "trace_summarize: " << path << ":" << line_no << ": "
                << e.what() << "\n";
      return 2;
    }
    const double t = rec.contains("t") ? rec.at("t").as_double() : 0.0;
    if (total == 0) t_min = t_max = t;
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
    ++total;

    const std::string cat =
        rec.contains("cat") ? rec.at("cat").as_string() : "?";
    const std::string name =
        rec.contains("name") ? rec.at("name").as_string() : "?";
    ++by_category[cat];
    ++by_name[cat + "/" + name];

    const std::uint64_t shard =
        rec.contains("shard") ? rec.at("shard").as_uint() : 0;
    ShardLoad& load = shards[shard];
    ++load.records;
    if (rec.contains("value")) {
      if (name == "window_events")
        load.window_events += rec.at("value").as_double();
      else if (name == "mailbox_drained")
        load.mailbox_drained += rec.at("value").as_double();
    }

    // Spans: "b" opens, the matching-id "e" closes. Aborted
    // exchanges also emit an "e", so every open span terminates.
    if (rec.contains("ph") && rec.contains("id")) {
      const std::string ph = rec.at("ph").as_string();
      const std::uint64_t id = rec.at("id").as_uint();
      if (name == "exchange") {
        if (ph == "b") {
          open_spans[id] = t;
        } else if (ph == "e") {
          const auto it = open_spans.find(id);
          if (it != open_spans.end()) {
            const double latency = t - it->second;
            open_spans.erase(it);
            all_latencies.push_back(latency);
            // Span id encodes the initiating node in the high 32 bits.
            nodes[id >> 32].latencies.push_back(latency);
          }
        }
      }
      const std::uint64_t origin =
          rec.contains("origin") ? rec.at("origin").as_uint() : ~std::uint64_t{0};
      const auto key = std::make_pair(cat + "/" + name, id);
      if (ph == "b") {
        open_generic[key] = {t, origin};
      } else if (ph == "e") {
        const auto it = open_generic.find(key);
        if (it != open_generic.end()) {
          completed_spans.push_back(Span{it->first.first, it->second.second,
                                         it->second.first, t});
          open_generic.erase(it);
        }
      }
    }
  }

  std::cout << path << ": " << total << " records, sim-time [" << fmt(t_min)
            << ", " << fmt(t_max) << "]\n\n";
  if (total == 0) return 0;

  // --- categories / names ------------------------------------------
  ppo::TextTable cats({"category", "records", "share"});
  {
    std::vector<std::pair<std::string, std::uint64_t>> sorted(
        by_category.begin(), by_category.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    for (const auto& [cat, count] : sorted)
      cats.add_row({cat, std::to_string(count),
                    fmt(100.0 * static_cast<double>(count) /
                            static_cast<double>(total), 1) + "%"});
  }
  std::cout << "# records per category\n";
  cats.print(std::cout);

  ppo::TextTable names({"event", "records"});
  {
    std::vector<std::pair<std::string, std::uint64_t>> sorted(
        by_name.begin(), by_name.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    for (std::size_t i = 0; i < sorted.size() && i < top; ++i)
      names.add_row({sorted[i].first, std::to_string(sorted[i].second)});
  }
  std::cout << "\n# top events\n";
  names.print(std::cout);

  // --- per-shard load ----------------------------------------------
  if (shards.size() > 1 || shards.begin()->first != 0) {
    ppo::TextTable shard_table(
        {"shard", "records", "window_events", "mailbox_drained"});
    for (const auto& [shard, load] : shards)
      shard_table.add_row({std::to_string(shard),
                           std::to_string(load.records),
                           fmt(load.window_events, 0),
                           fmt(load.mailbox_drained, 0)});
    std::cout << "\n# per-shard load\n";
    shard_table.print(std::cout);
  }

  // --- exchange latency --------------------------------------------
  if (!all_latencies.empty()) {
    std::cout << "\n# shuffle-exchange latency (sim-time, "
              << all_latencies.size() << " completed spans, "
              << open_spans.size() << " still open)\n";
    ppo::TextTable overall({"p50", "p90", "p99", "max"});
    overall.add_row({fmt(ppo::percentile(all_latencies, 0.50)),
                     fmt(ppo::percentile(all_latencies, 0.90)),
                     fmt(ppo::percentile(all_latencies, 0.99)),
                     fmt(*std::max_element(all_latencies.begin(),
                                           all_latencies.end()))});
    overall.print(std::cout);

    std::vector<std::pair<std::uint64_t, const NodeLatency*>> busiest;
    for (const auto& [node, lat] : nodes) busiest.emplace_back(node, &lat);
    std::stable_sort(busiest.begin(), busiest.end(),
                     [](const auto& a, const auto& b) {
                       return a.second->latencies.size() >
                              b.second->latencies.size();
                     });
    ppo::TextTable per_node({"node", "exchanges", "p50", "p90", "max"});
    for (std::size_t i = 0; i < busiest.size() && i < top; ++i) {
      const auto& lat = busiest[i].second->latencies;
      per_node.add_row({std::to_string(busiest[i].first),
                        std::to_string(lat.size()),
                        fmt(ppo::percentile(lat, 0.50)),
                        fmt(ppo::percentile(lat, 0.90)),
                        fmt(*std::max_element(lat.begin(), lat.end()))});
    }
    std::cout << "\n# busiest nodes by completed exchanges\n";
    per_node.print(std::cout);
  }

  // --- flamegraph-style self-time rollup ---------------------------
  if (!completed_spans.empty()) {
    const auto rollup = self_time_rollup(std::move(completed_spans));
    double grand_self = 0.0;
    for (const auto& [_, row] : rollup) grand_self += row.self;
    std::vector<std::pair<std::string, SelfTimeRow>> sorted(rollup.begin(),
                                                            rollup.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.self > b.second.self;
                     });
    ppo::TextTable flame(
        {"span", "count", "total_simtime", "self_simtime", "self_share"});
    for (std::size_t i = 0; i < sorted.size() && i < top; ++i) {
      const SelfTimeRow& row = sorted[i].second;
      flame.add_row({sorted[i].first, std::to_string(row.count),
                     fmt(row.total), fmt(row.self),
                     fmt(grand_self > 0.0 ? 100.0 * row.self / grand_self : 0.0,
                         1) + "%"});
    }
    std::cout << "\n# self-time rollup (sim-time; self = total minus "
                 "nested spans on the same origin track)\n";
    flame.print(std::cout);
  }
  return 0;
}
