// ppo_runner pool + sweep engine: task execution, bounded-queue
// backpressure, drain-on-shutdown with in-flight tasks, exception
// capture/propagation, and the jobs-independence (parallel == serial)
// determinism contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace ppo::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTaskOnce) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4, 2);  // tiny queue: submit must apply backpressure
    for (int i = 0; i < 200; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(counter.load(), 200);
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsInFlightAndQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i)
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        completed.fetch_add(1);
      });
    // Destructor runs with most tasks still queued or in flight.
  }
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, DrainRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(
      {
        try {
          pool.drain();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a failed task and keeps accepting work.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, AutoSizingUsesAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_GE(pool.queue_capacity(), 2u);
}

TEST(CellSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(cell_seed(42, 0), cell_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ull, 1ull, 42ull})
    for (std::uint64_t index = 0; index < 64; ++index)
      seen.insert(cell_seed(root, index));
  EXPECT_EQ(seen.size(), 3u * 64u);  // no collisions across roots/cells
}

// A cheap but seed-sensitive cell function: any scheduling-dependent
// seeding or result placement would show up immediately.
double synthetic_cell(const CellInfo& cell) {
  double acc = 0.0;
  std::uint64_t x = cell.seed;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    acc += std::sin(static_cast<double>(x % 10'000));
  }
  return acc;
}

TEST(Sweep, GridResultsAreIdenticalForAnyJobCount) {
  SweepOptions serial;
  serial.jobs = 1;
  serial.root_seed = 7;
  SweepOptions parallel = serial;
  parallel.jobs = 8;

  const auto a = run_grid(64, serial, synthetic_cell);
  const auto b = run_grid(64, parallel, synthetic_cell);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i)
    EXPECT_EQ(a.cells[i], b.cells[i]) << "cell " << i;  // bit-identical
  EXPECT_EQ(a.telemetry.jobs, 1u);
  EXPECT_EQ(b.telemetry.jobs, 8u);
}

TEST(Sweep, CellsSeeTheirIndexSeedAndCount) {
  SweepOptions opt;
  opt.jobs = 4;
  opt.root_seed = 99;
  const auto grid = run_grid(10, opt, [](const CellInfo& cell) {
    EXPECT_EQ(cell.count, 10u);
    EXPECT_EQ(cell.seed, cell_seed(99, cell.index));
    return cell.index;
  });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(grid.cells[i], i);
}

TEST(Sweep, TelemetryCoversEveryCell) {
  SweepOptions opt;
  opt.jobs = 2;
  const auto grid = run_grid(5, opt, synthetic_cell);
  EXPECT_EQ(grid.telemetry.cells, 5u);
  ASSERT_EQ(grid.telemetry.cell_seconds.size(), 5u);
  for (const double s : grid.telemetry.cell_seconds) EXPECT_GE(s, 0.0);
  EXPECT_GT(grid.telemetry.wall_seconds, 0.0);
}

TEST(Sweep, LowestIndexExceptionWinsDeterministically) {
  SweepOptions opt;
  opt.jobs = 8;
  const auto throwing = [](const CellInfo& cell) -> int {
    if (cell.index == 3) throw std::runtime_error("cell 3 failed");
    if (cell.index == 11) throw std::runtime_error("cell 11 failed");
    return 0;
  };
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      run_grid(16, opt, throwing);
      FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell 3 failed");
    }
  }
}

TEST(Sweep, ProgressReportingCountsCells) {
  std::ostringstream progress;
  SweepOptions opt;
  opt.jobs = 2;
  opt.progress = true;
  opt.progress_stream = &progress;
  opt.label = "unit-sweep";
  run_grid(4, opt, synthetic_cell);
  const std::string text = progress.str();
  EXPECT_NE(text.find("unit-sweep: "), std::string::npos);
  EXPECT_NE(text.find("4/4 cells done"), std::string::npos);
  EXPECT_NE(text.find("ETA"), std::string::npos);
}

TEST(Sweep, ReplicatedMergesInReplicaOrder) {
  SweepOptions serial;
  serial.jobs = 1;
  serial.root_seed = 5;
  SweepOptions parallel = serial;
  parallel.jobs = 8;

  const auto a = run_replicated(32, serial, synthetic_cell);
  const auto b = run_replicated(32, parallel, synthetic_cell);
  EXPECT_EQ(a.stats.count(), 32u);
  EXPECT_EQ(a.stats.mean(), b.stats.mean());      // bit-identical
  EXPECT_EQ(a.stats.stddev(), b.stats.stddev());
  EXPECT_EQ(a.stats.min(), b.stats.min());
  EXPECT_EQ(a.stats.max(), b.stats.max());
}

TEST(Sweep, EmptyGridIsANoop) {
  SweepOptions opt;
  const auto grid = run_grid(0, opt, synthetic_cell);
  EXPECT_TRUE(grid.cells.empty());
  EXPECT_EQ(grid.telemetry.cells, 0u);
}

}  // namespace
}  // namespace ppo::runner
