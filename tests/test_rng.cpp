// Determinism and statistical sanity of the RNG layer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ppo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(0), CheckError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  for (double mean : {0.5, 3.0, 30.0}) {
    RunningStats stats;
    for (int i = 0; i < 40000; ++i) stats.add(rng.exponential(mean));
    EXPECT_NEAR(stats.mean(), mean, mean * 0.03);
  }
}

TEST(Rng, ParetoMeanMatches) {
  Rng rng(17);
  const double shape = 3.0, scale = 2.0;
  RunningStats stats;
  for (int i = 0; i < 60000; ++i) {
    const double v = rng.pareto(shape, scale);
    ASSERT_GE(v, scale);
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), scale * shape / (shape - 1.0), 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.015);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(31);
  std::vector<int> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const auto picked = rng.sample(v, 10);
  EXPECT_EQ(picked.size(), 10u);
  const std::set<int> distinct(picked.begin(), picked.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (int x : picked) EXPECT_TRUE(x >= 0 && x < 50);
}

TEST(Rng, SampleLargerThanInputReturnsAll) {
  Rng rng(37);
  const std::vector<int> v{1, 2, 3};
  auto picked = rng.sample(v, 10);
  std::sort(picked.begin(), picked.end());
  EXPECT_EQ(picked, v);
}

TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(41);
  std::vector<int> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  std::vector<std::size_t> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    for (int x : rng.sample(v, 5)) ++counts[static_cast<std::size_t>(x)];
  // Each element appears with prob 1/4 per trial; chi-square against
  // uniform should stay far below the 0.001 critical value (~43.8 for
  // 19 dof); use a generous bound.
  EXPECT_LT(chi_square_uniform(counts), 60.0);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(43);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child1.next_u64() == child2.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Splitmix64, KnownSequence) {
  // Reference values for seed 0 from the public splitmix64 test code.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454Full);
}

}  // namespace
}  // namespace ppo
