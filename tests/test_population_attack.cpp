// §III-E empirics at test scale: the population estimator (E-4) and
// the colluding-observer timing attack setup (E-2, via the cache
// injection instrumentation).
#include <gtest/gtest.h>

#include "churn/churn_model.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::overlay {
namespace {

TEST(PopulationEstimate, ConvergesToGroupSizeInSmallSystem) {
  sim::Simulator sim;
  Rng grng(1);
  const graph::Graph trust = graph::barabasi_albert(60, 2, grng);
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);
  OverlayServiceOptions options;
  options.params.population_estimation = true;
  options.params.target_links = 15;
  options.params.cache_size = 80;
  options.params.shuffle_length = 10;
  OverlayService service(sim, trust, model, options, Rng(2));
  service.start();
  sim.run_until(120.0);

  // "If the number of nodes in the system is small, then all nodes
  // will eventually see all pseudonyms before they expire."
  std::size_t accurate = 0;
  for (graph::NodeId v = 0; v < 60; ++v) {
    const std::size_t est = service.node(v).estimated_population();
    EXPECT_LE(est, 62u);  // at most one stale duplicate in flight
    accurate += (est >= 55);
  }
  EXPECT_GT(accurate, 50u);
}

TEST(PopulationEstimate, DisabledByDefault) {
  sim::Simulator sim;
  Rng grng(3);
  const graph::Graph trust = graph::barabasi_albert(30, 2, grng);
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);
  OverlayService service(sim, trust, model, {}, Rng(4));
  service.start();
  sim.run_until(50.0);
  // Only the node's own pseudonym is counted.
  EXPECT_LE(service.node(0).estimated_population(), 1u);
}

TEST(TimingAttack, MarkerRelayObservableButUnreliable) {
  // The §III-E-2 relay n -> a -> b -> o: plant a marker at a, check
  // whether a's neighbor b and then b's neighbor o see it shortly
  // after. Over a converged overlay this happens sometimes but far
  // from always — the paper's "unlikely to occur" argument.
  sim::Simulator sim;
  Rng grng(5);
  const graph::Graph trust = graph::barabasi_albert(80, 3, grng);
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);
  OverlayService service(sim, trust, model, {}, Rng(6));
  service.start();
  sim.run_until(60.0);

  Rng rng(7);
  int b_reached = 0, detected = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const auto a = static_cast<graph::NodeId>(rng.uniform_u64(80));
    const auto a_nbrs = trust.neighbors(a);
    const auto b = a_nbrs[rng.uniform_u64(a_nbrs.size())];
    const auto marker = service.mint_pseudonym(a, 20.0);
    service.node(a).inject_cache_record(marker);
    sim.run_until(sim.now() + 2.0);
    if (!service.node(b).cache().contains(marker.value)) continue;
    ++b_reached;
    sim.run_until(sim.now() + 2.0);
    for (const auto o : trust.neighbors(b)) {
      if (o == a) continue;
      if (service.node(o).cache().contains(marker.value)) {
        ++detected;
        break;
      }
    }
  }
  // The relay chain must be possible but not the common case.
  EXPECT_LT(detected, trials * 3 / 4);
  EXPECT_LE(detected, b_reached);
}

}  // namespace
}  // namespace ppo::overlay
