// Random-walk pseudonym routing (§I's routing-layer option).
#include <gtest/gtest.h>

#include "churn/churn_model.hpp"
#include "graph/generators.hpp"
#include "routing/random_walk.hpp"
#include "sim/simulator.hpp"

namespace ppo::routing {
namespace {

struct Fixture {
  sim::Simulator sim;
  graph::Graph trust;
  churn::ExponentialChurn model;
  overlay::OverlayService service;

  explicit Fixture(std::size_t n, double alpha = 1.0, std::uint64_t seed = 3)
      : trust([&] {
          Rng g(seed);
          return graph::barabasi_albert(n, 2, g);
        }()),
        model(churn::ExponentialChurn::from_availability(alpha, 30.0)),
        service(sim, trust, model,
                {.params = {.cache_size = 60,
                            .shuffle_length = 8,
                            .target_links = 12}},
                Rng(seed + 1)) {
    service.start();
  }

  privacylink::PseudonymValue pseudonym_of(graph::NodeId v) {
    const auto own = service.node(v).own_pseudonym();
    EXPECT_TRUE(own.has_value());
    return own ? own->value : 0;
  }
};

TEST(RandomWalk, DeliversOnConvergedOverlay) {
  Fixture fx(60);
  fx.sim.run_until(50.0);
  Rng rng(7);
  std::size_t delivered = 0;
  for (graph::NodeId target = 1; target <= 20; ++target) {
    const auto result = route_to_pseudonym(
        fx.service, 0, fx.pseudonym_of(target), {.ttl = 32, .walkers = 2},
        rng);
    delivered += result.delivered;
    if (result.delivered) {
      EXPECT_LE(result.hops, 33u);
      EXPECT_GT(result.latency, 0.0);
    }
  }
  // Each pseudonym is held by ~S_avg=10 of 60 nodes: short walks
  // nearly always find a holder.
  EXPECT_GE(delivered, 18u);
}

TEST(RandomWalk, SelfDeliveryIsZeroHops) {
  Fixture fx(30);
  fx.sim.run_until(20.0);
  Rng rng(9);
  const auto result = route_to_pseudonym(
      fx.service, 5, fx.pseudonym_of(5), {.ttl = 8}, rng);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.hops, 0u);
  EXPECT_EQ(result.messages, 0u);
}

TEST(RandomWalk, TtlBoundsCost) {
  Fixture fx(60);
  fx.sim.run_until(40.0);
  Rng rng(11);
  WalkOptions options;
  options.ttl = 3;
  options.walkers = 4;
  const auto result =
      route_to_pseudonym(fx.service, 0, fx.pseudonym_of(40), options, rng);
  // Each walker takes at most ttl steps + 1 delivery hop.
  EXPECT_LE(result.messages, 4u * (3u + 1u));
}

TEST(RandomWalk, MoreWalkersRaiseSuccess) {
  Fixture fx(80, 1.0, 13);
  fx.sim.run_until(50.0);
  Rng r1(21), r2(21);
  std::size_t one = 0, many = 0;
  for (graph::NodeId target = 1; target <= 25; ++target) {
    one += route_to_pseudonym(fx.service, 0, fx.pseudonym_of(target),
                              {.ttl = 2, .walkers = 1}, r1)
               .delivered;
    many += route_to_pseudonym(fx.service, 0, fx.pseudonym_of(target),
                               {.ttl = 2, .walkers = 8}, r2)
                .delivered;
  }
  EXPECT_GE(many, one);
  EXPECT_GT(many, 12u);  // 8 walkers x 2 hops usually find a holder
}

TEST(RandomWalk, OfflineOwnerCannotBeReached) {
  Fixture fx(40);
  fx.sim.run_until(30.0);
  const auto target = fx.pseudonym_of(7);
  fx.service.churn_driver().fail_permanently(7);
  Rng rng(15);
  const auto result =
      route_to_pseudonym(fx.service, 0, target, {.ttl = 32}, rng);
  EXPECT_FALSE(result.delivered);
}

TEST(RandomWalk, UnknownPseudonymNeverDelivers) {
  Fixture fx(30);
  fx.sim.run_until(20.0);
  Rng rng(17);
  const auto result =
      route_to_pseudonym(fx.service, 0, 0xDEAD'BEEF'0000'1111ull,
                         {.ttl = 16, .walkers = 4}, rng);
  EXPECT_FALSE(result.delivered);
}

TEST(RandomWalk, ArgumentValidation) {
  Fixture fx(20);
  fx.sim.run_until(5.0);
  Rng rng(19);
  EXPECT_THROW(route_to_pseudonym(fx.service, 99, 1, {}, rng), CheckError);
  EXPECT_THROW(
      route_to_pseudonym(fx.service, 0, 1, {.ttl = 0}, rng), CheckError);
}

}  // namespace
}  // namespace ppo::routing
