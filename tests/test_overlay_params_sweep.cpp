// Parameterized protocol-invariant sweeps across the paper's tunables
// (cache size C, shuffle length l, target links): the §III guarantees
// must hold at every setting.
#include <gtest/gtest.h>

#include <tuple>

#include "churn/churn_model.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::overlay {
namespace {

using ParamTuple = std::tuple<std::size_t, std::size_t, std::size_t>;

class ProtocolParamSweep : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(ProtocolParamSweep, InvariantsAcrossTunables) {
  const auto [cache_size, shuffle_length, target_links] = GetParam();
  sim::Simulator sim;
  Rng grng(7);
  const graph::Graph trust = graph::barabasi_albert(50, 2, grng);
  const auto model = churn::ExponentialChurn::from_availability(0.7, 30.0);

  OverlayParams params;
  params.cache_size = cache_size;
  params.shuffle_length = shuffle_length;
  params.target_links = target_links;
  OverlayService service(sim, trust, model, {.params = params}, Rng(9));
  service.start();
  sim.run_until(80.0);

  graph::Graph snapshot = service.overlay_snapshot();
  EXPECT_GE(snapshot.num_edges(), trust.num_edges());
  for (graph::NodeId v = 0; v < 50; ++v) {
    const auto& node = service.node(v);
    // Cache bounded by C.
    EXPECT_LE(node.cache().size(), cache_size);
    // Out-degree bounded by trust + slots.
    EXPECT_LE(node.out_degree(), node.trust_degree() + node.slot_capacity());
    // Slot budget follows the §III-D formula.
    EXPECT_EQ(node.slot_capacity(),
              target_links > node.trust_degree()
                  ? target_links - node.trust_degree()
                  : 0u);
    // Pseudonym links point at live registrations only.
    for (const auto value : node.pseudonym_links())
      EXPECT_TRUE(service.pseudonym_service().alive(value, sim.now()));
  }
  // The protocol actually exchanged data at every setting.
  EXPECT_GT(service.total_counters().shuffles_completed, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Tunables, ProtocolParamSweep,
    ::testing::Values(ParamTuple{10, 2, 4},     // tiny everything
                      ParamTuple{40, 5, 8},     // small
                      ParamTuple{400, 40, 50},  // Table I defaults
                      ParamTuple{30, 20, 12},   // l close to cache size
                      ParamTuple{60, 8, 100},   // target above population
                      ParamTuple{5, 6, 10}));   // l above cache size

class PseudonymWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PseudonymWidthSweep, NarrowValueSpacesStillWork) {
  // Small p makes values dense (ties possible, collisions frequent);
  // the §III-D tie-break and minting retry must keep things sound.
  const unsigned bits = GetParam();
  sim::Simulator sim;
  Rng grng(11);
  const graph::Graph trust = graph::barabasi_albert(30, 2, grng);
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);
  OverlayParams params;
  params.cache_size = 40;
  params.shuffle_length = 6;
  params.target_links = 8;
  params.pseudonym_bits = bits;
  OverlayService service(sim, trust, model, {.params = params}, Rng(13));
  service.start();
  sim.run_until(40.0);

  graph::Graph snapshot = service.overlay_snapshot();
  EXPECT_GT(snapshot.num_edges(), trust.num_edges());
  EXPECT_TRUE(graph::is_connected(snapshot));
}

INSTANTIATE_TEST_SUITE_P(Widths, PseudonymWidthSweep,
                         ::testing::Values(16u, 24u, 32u, 64u));

}  // namespace
}  // namespace ppo::overlay
