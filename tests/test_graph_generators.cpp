// Generator properties: edge counts, connectivity, degree shapes,
// clustering — parameterized sweeps over generator settings.
#include <gtest/gtest.h>

#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/socialgen.hpp"

namespace ppo::graph {
namespace {

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(100, 250, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
}

TEST(ErdosRenyiGnm, RejectsImpossibleEdgeCount) {
  Rng rng(1);
  EXPECT_THROW(erdos_renyi_gnm(4, 7, rng), CheckError);
}

TEST(ErdosRenyiGnm, DenseGraphIsConnected) {
  Rng rng(2);
  // Average degree 50 on 1000 nodes: connected with overwhelming prob.
  const Graph g = erdos_renyi_gnm(1000, 25000, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyiGnp, EdgeCountNearExpectation) {
  Rng rng(3);
  const std::size_t n = 400;
  const double p = 0.05;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(ErdosRenyiGnp, EdgeCases) {
  Rng rng(4);
  EXPECT_EQ(erdos_renyi_gnp(50, 0.0, rng).num_edges(), 0u);
  const Graph full = erdos_renyi_gnp(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45u);
}

class BaGeneratorTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaGeneratorTest, EdgeCountAndConnectivity) {
  const std::size_t m = GetParam();
  Rng rng(5 + m);
  const std::size_t n = 500;
  const Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Each of the n - m - 1 arrivals adds ~m edges; the seed adds m.
  const double expected = static_cast<double>(m * (n - m - 1) + m);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.02);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(AttachmentSweep, BaGeneratorTest,
                         ::testing::Values(1u, 2u, 5u, 9u));

TEST(BarabasiAlbert, HasHeavyTail) {
  Rng rng(7);
  const Graph g = barabasi_albert(3000, 4, rng);
  const auto h = degree_histogram(g);
  // Power-law-ish: the max degree should far exceed the mean.
  EXPECT_GT(static_cast<double>(h.max_value()), 6.0 * h.mean());
}

TEST(HolmeKim, TriadsRaiseClustering) {
  Rng rng1(11), rng2(11);
  const Graph ba = barabasi_albert(1500, 5, rng1);
  const Graph hk = holme_kim(1500, 5, 0.8, rng2);
  EXPECT_GT(average_clustering(hk), 2.0 * average_clustering(ba));
  EXPECT_TRUE(is_connected(hk));
}

class WattsStrogatzTest
    : public ::testing::TestWithParam<double> {};

TEST_P(WattsStrogatzTest, DegreePreservedOnAverage) {
  const double beta = GetParam();
  Rng rng(13);
  const std::size_t n = 400, k = 3;
  const Graph g = watts_strogatz(n, k, beta, rng);
  EXPECT_EQ(g.num_edges(), n * k);  // rewiring preserves edge count
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, WattsStrogatzTest,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

TEST(WattsStrogatz, ZeroBetaIsLattice) {
  Rng rng(17);
  const Graph g = watts_strogatz(20, 2, 0.0, rng);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(StructuredGraphs, Shapes) {
  EXPECT_EQ(ring(6).num_edges(), 6u);
  EXPECT_EQ(path_graph(6).num_edges(), 5u);
  EXPECT_EQ(complete(6).num_edges(), 15u);
  EXPECT_EQ(star(6).num_edges(), 6u);
  EXPECT_EQ(star(6).degree(0), 6u);
}

TEST(SyntheticSocialGraph, MatchesCrawlStatistics) {
  // The Facebook crawl has mean degree ~18.7, heavy-tailed degrees
  // and high clustering; verify the substitute reproduces those
  // features at reduced scale.
  SocialGraphOptions opts;
  opts.num_nodes = 12'000;
  Rng rng(19);
  const Graph g = synthetic_social_graph(opts, rng);
  EXPECT_TRUE(is_connected(g));
  // Triad closure adds ~triad_fraction on top of the stub edges.
  EXPECT_NEAR(g.average_degree(), 18.7 * 1.25, 4.0);
  EXPECT_GT(average_clustering(g), 0.1);
  const auto h = degree_histogram(g);
  EXPECT_GT(static_cast<double>(h.max_value()), 5.0 * h.mean());
}

TEST(SyntheticSocialGraph, HasCommunityStructure) {
  // Nodes share far more edges inside their sub-community block than
  // a degree-matched random graph would (~sub_size/n of all edges).
  SocialGraphOptions opts;
  opts.num_nodes = 12'000;
  Rng rng(23);
  const Graph g = synthetic_social_graph(opts, rng);
  std::size_t internal = 0;
  for (const auto& [u, v] : g.edges())
    internal += (u / opts.sub_community_size == v / opts.sub_community_size);
  const double internal_fraction =
      static_cast<double>(internal) / static_cast<double>(g.num_edges());
  EXPECT_GT(internal_fraction, 0.5);
}

TEST(SyntheticSocialGraph, RejectsUnderSizedBase) {
  SocialGraphOptions opts;
  opts.num_nodes = 3000;  // < 2 communities of 5000
  Rng rng(29);
  EXPECT_THROW(synthetic_social_graph(opts, rng), CheckError);
}

TEST(HolmeKimSocialGraph, LegacyModelStillAvailable) {
  Rng rng(31);
  const Graph g = holme_kim_social_graph(2000, 5, 0.6, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_NEAR(g.average_degree(), 10.0, 1.0);
}

TEST(Clustering, TriangleIsFullyClustered) {
  const Graph g = complete(3);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
  EXPECT_DOUBLE_EQ(transitivity(g), 1.0);
}

TEST(Clustering, StarHasNone) {
  const Graph g = star(5);
  EXPECT_DOUBLE_EQ(average_clustering(g), 0.0);
  EXPECT_DOUBLE_EQ(transitivity(g), 0.0);
}

TEST(Clustering, RequiresFinalizedGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(local_clustering(g, 0), CheckError);
}

}  // namespace
}  // namespace ppo::graph
