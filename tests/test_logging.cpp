// Logging satellite: level parsing (incl. the new trace level), lazy
// evaluation of disabled sites, and kTrace routing into the tracer via
// the trace-log sink.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace ppo {
namespace {

std::vector<std::string>& sink_messages() {
  static std::vector<std::string> messages;
  return messages;
}

void capture_sink(const std::string& message) {
  sink_messages().push_back(message);
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override {
    set_log_level(previous_);
    set_trace_log_sink(nullptr);
    sink_messages().clear();
  }

 private:
  LogLevel previous_;
};

TEST_F(LoggingTest, ParsesAllLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kOff);
}

TEST_F(LoggingTest, TraceOrdersBelowDebug) {
  EXPECT_LT(static_cast<int>(LogLevel::kTrace),
            static_cast<int>(LogLevel::kDebug));
}

TEST_F(LoggingTest, DisabledSitesDoNotEvaluateTheStream) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 1;
  };
  PPO_LOG_TRACE << "x=" << expensive();
  PPO_LOG_INFO << "x=" << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, TraceSinkReceivesMessagesRegardlessOfThreshold) {
  set_log_level(LogLevel::kOff);  // stderr would discard everything
  set_trace_log_sink(&capture_sink);
  PPO_LOG_TRACE << "routed " << 42;
  // Higher levels are NOT routed to the sink.
  set_log_level(LogLevel::kError);
  PPO_LOG_ERROR << "stderr only";
  ASSERT_EQ(sink_messages().size(), 1u);
  EXPECT_EQ(sink_messages()[0], "routed 42");
}

TEST_F(LoggingTest, InstalledTracerCapturesTraceLogsAsRecords) {
  set_log_level(LogLevel::kOff);
  obs::Tracer tracer;
  obs::install_tracer(&tracer,
                      static_cast<std::uint32_t>(obs::TraceCategory::kLog));
  set_sim_time_context(3.25);
  PPO_LOG_TRACE << "inside the simulation";
  clear_sim_time_context();
  obs::uninstall_tracer();

  const auto records = tracer.merged();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].category, obs::TraceCategory::kLog);
  EXPECT_EQ(records[0].time, 3.25);
  EXPECT_EQ(records[0].origin, obs::kExternalOrigin);
  EXPECT_EQ(records[0].text, "inside the simulation");
  // Uninstalling removed the sink again.
  EXPECT_FALSE(trace_log_routed());
}

}  // namespace
}  // namespace ppo
