// Simulator stress: ordering against a sorted reference under large
// random schedules, and heavy self-rescheduling workloads.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace ppo::sim {
namespace {

TEST(SimulatorStress, TenThousandRandomEventsRunInOrder) {
  Simulator sim;
  Rng rng(1);
  std::vector<double> scheduled;
  std::vector<double> observed;
  for (int i = 0; i < 10'000; ++i) {
    const double t = rng.uniform_double(0.0, 1000.0);
    scheduled.push_back(t);
    sim.schedule_at(t, [&observed, &sim] { observed.push_back(sim.now()); });
  }
  sim.run_all();
  ASSERT_EQ(observed.size(), scheduled.size());
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  std::sort(scheduled.begin(), scheduled.end());
  EXPECT_EQ(observed, scheduled);
}

TEST(SimulatorStress, CascadingReschedulesStayStable) {
  Simulator sim;
  Rng rng(2);
  std::uint64_t fired = 0;
  // 100 self-perpetuating chains with random inter-arrival times.
  std::function<void()> chain = [&] {
    ++fired;
    if (sim.now() < 500.0)
      sim.schedule_after(rng.uniform_double(0.1, 2.0), chain);
  };
  for (int i = 0; i < 100; ++i) sim.schedule_at(0.0, chain);
  sim.run_all();
  // ~100 chains x ~500 periods / ~1.05 mean step.
  EXPECT_GT(fired, 30'000u);
  EXPECT_DOUBLE_EQ(sim.pending(), 0u);
}

TEST(SimulatorStress, InterleavedRunUntilWindows) {
  Simulator sim;
  Rng rng(3);
  std::vector<double> times;
  for (int i = 0; i < 5'000; ++i) {
    const double t = rng.uniform_double(0.0, 100.0);
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  std::size_t total = 0;
  for (double window = 10.0; window <= 100.0; window += 10.0)
    total += sim.run_until(window);
  EXPECT_EQ(total, 5'000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

}  // namespace
}  // namespace ppo::sim
