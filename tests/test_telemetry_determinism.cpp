// The telemetry plane's hard contract: a fixed-horizon service-mode
// run produces a bit-identical trajectory fingerprint with telemetry
// fully on (HTTP exposition + JSONL sampling + shard profiling) or
// fully off — on the serial backend and for every sharded K. The
// plane only reads simulation state; these tests are what pins that.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "runner/json.hpp"
#include "telemetry/service_mode.hpp"

namespace {

using namespace ppo;

telemetry::ServiceModeOptions base_options(std::size_t shards) {
  telemetry::ServiceModeOptions opt;
  opt.nodes = 300;
  opt.alpha = 0.6;
  opt.seed = 7;
  opt.shards = shards;
  opt.horizon = 5.0;
  opt.slice = 1.0;
  // All-arms workload so every instrumentation seam is live: link
  // faults, a defended mixed adversary and a passive observer.
  opt.loss = 0.05;
  opt.adversary_fraction = 0.1;
  opt.adversary_attack = "mixed";
  opt.defended = true;
  opt.observer_coverage = 0.2;
  return opt;
}

telemetry::ServiceModeOptions with_telemetry(
    telemetry::ServiceModeOptions opt, const std::string& jsonl) {
  opt.port = 0;  // ephemeral: exercises the real server lifecycle
  opt.telemetry_out = jsonl;
  opt.sample_interval_seconds = 0.005;
  opt.profile = opt.shards > 0;
  return opt;
}

void expect_identical(const telemetry::ServiceModeReport& off,
                      const telemetry::ServiceModeReport& on) {
  EXPECT_EQ(off.fingerprint, on.fingerprint);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.overlay_edges, on.overlay_edges);
  EXPECT_EQ(off.online, on.online);
  EXPECT_EQ(off.health.requests_sent, on.health.requests_sent);
  EXPECT_EQ(off.health.messages_delivered, on.health.messages_delivered);
  EXPECT_EQ(off.health.exchanges_completed, on.health.exchanges_completed);
  EXPECT_TRUE(off.horizon_reached);
  EXPECT_TRUE(on.horizon_reached);
}

TEST(ServiceModeDeterminism, TelemetryOnEqualsOffSerial) {
  const auto off = telemetry::run_service_mode(base_options(0));
  const std::string jsonl =
      testing::TempDir() + "/ppo_service_serial.jsonl";
  const auto on =
      telemetry::run_service_mode(with_telemetry(base_options(0), jsonl));
  expect_identical(off, on);
  EXPECT_GT(on.port, 0);
  EXPECT_GE(on.samples_taken, 1u);
  std::remove(jsonl.c_str());
}

TEST(ServiceModeDeterminism, TelemetryOnEqualsOffK1) {
  const auto off = telemetry::run_service_mode(base_options(1));
  const std::string jsonl = testing::TempDir() + "/ppo_service_k1.jsonl";
  const auto on =
      telemetry::run_service_mode(with_telemetry(base_options(1), jsonl));
  expect_identical(off, on);
  std::remove(jsonl.c_str());
}

TEST(ServiceModeDeterminism, TelemetryOnEqualsOffK4AndK4EqualsK1) {
  const auto off1 = telemetry::run_service_mode(base_options(1));
  const auto off4 = telemetry::run_service_mode(base_options(4));
  const std::string jsonl = testing::TempDir() + "/ppo_service_k4.jsonl";
  const auto on4 =
      telemetry::run_service_mode(with_telemetry(base_options(4), jsonl));
  // Sharded K-invariance holds with the plane attached: K=4 + full
  // telemetry matches both K=4 and K=1 without it.
  expect_identical(off4, on4);
  expect_identical(off1, on4);

  // The JSONL time-series came out well-formed and the final sample's
  // counters carry the run's protocol totals.
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.is_open());
  std::string line, last;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    last = line;
    ++rows;
  }
  ASSERT_GE(rows, 1u);
  const runner::Json row = runner::Json::parse(last);
  EXPECT_EQ(
      static_cast<std::uint64_t>(row.at("counters").at("sim_events").as_int()),
      on4.events);
  std::remove(jsonl.c_str());
}

TEST(ServiceModeDeterminism, RerunIsBitIdentical) {
  // Same options, fresh process state: the fingerprint is a pure
  // function of (options, seed).
  const auto a = telemetry::run_service_mode(base_options(2));
  const auto b = telemetry::run_service_mode(base_options(2));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events, b.events);
}

TEST(ServiceModeDeterminism, FinalSnapshotCarriesStreamingQuantiles) {
  const std::string jsonl = testing::TempDir() + "/ppo_service_snap.jsonl";
  const auto report =
      telemetry::run_service_mode(with_telemetry(base_options(2), jsonl));
  // The shuffle-latency seam fed the live registry during the run.
  const auto it =
      report.metrics.streaming.find("overlay_exchange_latency_seconds");
  ASSERT_NE(it, report.metrics.streaming.end());
  EXPECT_GT(it->second.count, 0u);
  EXPECT_GT(it->second.p95(), 0.0);
  // Slice-boundary counters aggregated to the run totals.
  EXPECT_EQ(report.metrics.counters.at("sim_events"), report.events);
  EXPECT_EQ(report.metrics.counters.at("protocol_requests_sent"),
            report.health.requests_sent);
  std::remove(jsonl.c_str());
}

}  // namespace
