// Full-system integration: the overlay service on small trust graphs
// under churn. Asserts the paper's core claims at reduced scale.
#include <gtest/gtest.h>

#include "churn/churn_model.hpp"
#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::overlay {
namespace {

OverlayParams test_params() {
  OverlayParams p;
  p.cache_size = 60;
  p.shuffle_length = 8;
  p.target_links = 12;
  p.pseudonym_lifetime = 90.0;
  return p;
}

/// Ring trust graph by default: sparse and high-diameter, good for
/// observing the overlay's improvement at full availability. Churn
/// tests pass a social-like (power-law) trust graph instead — gossip
/// diffusion on a pure ring is pathologically slow (diameter n/2),
/// far below the small-world graphs the paper evaluates on.
struct Fixture {
  sim::Simulator sim;
  graph::Graph trust;
  churn::ExponentialChurn model;
  OverlayService service;

  Fixture(std::size_t n, double alpha, OverlayParams params = test_params(),
          std::uint64_t seed = 7, bool social_graph = false)
      : trust(social_graph ? [&] {
          Rng grng(seed ^ 0x50C1A1);
          return graph::barabasi_albert(n, 2, grng);
        }()
                           : graph::ring(n)),
        model(churn::ExponentialChurn::from_availability(alpha, 30.0)),
        service(sim, trust, model, {.params = params, .transport = {}},
                Rng(seed)) {}
};

TEST(OverlayService, BuildsOneNodePerVertex) {
  Fixture fx(20, 1.0);
  EXPECT_EQ(fx.service.num_nodes(), 20u);
  EXPECT_EQ(fx.service.node(3).trust_degree(), 2u);
}

TEST(OverlayService, SnapshotStartsAsTrustGraph) {
  Fixture fx(20, 1.0);
  fx.service.start();
  const graph::Graph snapshot = fx.service.overlay_snapshot();
  EXPECT_EQ(snapshot.num_edges(), 20u);  // ring edges only, no gossip yet
}

TEST(OverlayService, GossipAddsPseudonymLinks) {
  Fixture fx(30, 1.0);
  fx.service.start();
  fx.sim.run_until(50.0);
  const graph::Graph snapshot = fx.service.overlay_snapshot();
  EXPECT_GT(snapshot.num_edges(), 100u);  // far beyond the 30 ring edges
  // Degree cap: out-degree <= max(target, trust degree).
  for (graph::NodeId v = 0; v < 30; ++v)
    EXPECT_LE(fx.service.node(v).out_degree(), 12u);
}

TEST(OverlayService, OverlayShortensPaths) {
  Fixture fx(64, 1.0);
  fx.service.start();
  fx.sim.run_until(60.0);
  graph::Graph snapshot = fx.service.overlay_snapshot();
  Rng rng(1);
  const double overlay_apl = graph::average_path_length(snapshot, rng);
  Rng rng2(1);
  const double ring_apl = graph::average_path_length(fx.trust, rng2);
  EXPECT_LT(overlay_apl, ring_apl / 3.0);  // ring APL ~16, overlay ~2
}

TEST(OverlayService, OverlaySurvivesChurnThatPartitionsTrustGraph) {
  Fixture fx(80, 0.5, test_params(), /*seed=*/7, /*social_graph=*/true);
  fx.service.start();
  fx.sim.run_until(200.0);

  // A sparse power-law graph with half its nodes offline sheds a
  // large fraction of the online population...
  const double trust_disc =
      graph::fraction_disconnected(fx.trust, fx.service.online_mask());
  EXPECT_GT(trust_disc, 0.15);

  // ...the maintained overlay keeps (almost) everyone attached.
  graph::Graph snapshot = fx.service.overlay_snapshot();
  const double overlay_disc =
      graph::fraction_disconnected(snapshot, fx.service.online_mask());
  EXPECT_LT(overlay_disc, trust_disc / 2.0);
  EXPECT_LT(overlay_disc, 0.11);
}

TEST(OverlayService, StateSurvivesOfflinePeriods) {
  Fixture fx(40, 0.75);
  fx.service.start();
  fx.sim.run_until(200.0);
  // Every node that was ever online holds links; none exceeds its cap,
  // and cached pseudonyms are all live & resolvable.
  for (graph::NodeId v = 0; v < 40; ++v) {
    const auto& node = fx.service.node(v);
    for (const PseudonymValue value : node.pseudonym_links()) {
      EXPECT_TRUE(
          fx.service.pseudonym_service().alive(value, fx.sim.now()));
    }
  }
}

TEST(OverlayService, PermanentDepartureLinksDissolveAfterTtl) {
  OverlayParams p = test_params();
  p.pseudonym_lifetime = 40.0;
  Fixture fx(30, 1.0, p);
  fx.service.start();
  fx.sim.run_until(30.0);

  // Kill node 5 permanently; after <= lifetime, nobody links to it.
  fx.service.churn_driver().fail_permanently(5);
  fx.sim.run_until(30.0 + 41.0);

  graph::Graph snapshot = fx.service.overlay_snapshot();
  // Node 5's only remaining edges are its (static) trust edges.
  EXPECT_EQ(graph::masked_degree(snapshot, 5, {}), 2u);
}

TEST(OverlayService, MessageBudgetMatchesPaper) {
  // §V-A: network-wide average is ~2 messages per node per period
  // (one request + one response) at full availability.
  Fixture fx(50, 1.0);
  fx.service.start();
  fx.sim.run_until(100.0);
  const auto totals = fx.service.total_counters();
  const double per_tick =
      static_cast<double>(totals.messages_sent()) /
      static_cast<double>(totals.online_ticks);
  EXPECT_NEAR(per_tick, 2.0, 0.1);
}

TEST(OverlayService, ReplacementsStopWithoutExpiry) {
  OverlayParams p = test_params();
  p.pseudonym_lifetime = 1e12;  // r = infinity
  Fixture fx(40, 1.0, p);
  fx.service.start();
  fx.sim.run_until(300.0);
  const auto early = fx.service.total_replacements();
  fx.sim.run_until(400.0);
  const auto late = fx.service.total_replacements();
  // Late-phase replacement rate collapses once samples converge
  // (paper Fig. 9, r = infinite).
  const auto delta = late.replacements() - early.replacements();
  EXPECT_LT(delta, early.replacements() / 10 + 40);
  EXPECT_EQ(late.refills_after_expiry, 0u);
}

TEST(OverlayService, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    Fixture fx(30, 0.5, test_params(), seed);
    fx.service.start();
    fx.sim.run_until(80.0);
    graph::Graph snapshot = fx.service.overlay_snapshot();
    return snapshot.edges();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(OverlayService, NaiveSamplingAblationRuns) {
  OverlayParams p = test_params();
  p.naive_sampling = true;
  Fixture fx(40, 1.0, p);
  fx.service.start();
  fx.sim.run_until(60.0);
  graph::Graph snapshot = fx.service.overlay_snapshot();
  EXPECT_GT(snapshot.num_edges(), 40u);
}

TEST(OverlayService, RejectsTinyGraphs) {
  sim::Simulator sim;
  graph::Graph g(1);
  const auto model = churn::ExponentialChurn::from_availability(1.0, 30.0);
  EXPECT_THROW(OverlayService(sim, g, model, {}, Rng(1)), CheckError);
}

class AvailabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(AvailabilitySweep, InvariantsHoldUnderChurn) {
  const double alpha = GetParam();
  Fixture fx(50, alpha);
  fx.service.start();
  fx.sim.run_until(120.0);

  graph::Graph snapshot = fx.service.overlay_snapshot();
  EXPECT_FALSE(snapshot.has_edge(0, 0));
  for (graph::NodeId v = 0; v < 50; ++v) {
    const auto& node = fx.service.node(v);
    // Out-degree never exceeds trust degree + slot capacity.
    EXPECT_LE(node.out_degree(),
              node.trust_degree() + node.slot_capacity());
    // Pseudonym links only point at live pseudonyms of other nodes.
    for (const PseudonymValue value : node.pseudonym_links())
      EXPECT_TRUE(fx.service.pseudonym_service().alive(value, fx.sim.now()));
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AvailabilitySweep,
                         ::testing::Values(0.125, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace ppo::overlay
