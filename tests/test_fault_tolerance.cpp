// Fault-tolerance integration tests: the hardened overlay protocol
// under injected faults. Pins the acceptance properties of the
// robustness extension — zero-fault runs are bit-identical to
// fault-free ones, the fault sweep is jobs-invariant and repeatable,
// retry/backoff buys back graceful degradation under loss, the
// pseudonym service survives blackouts, and the overlay over the mix
// network recovers from relay crash/revive cycles.
#include <gtest/gtest.h>

#include <iostream>

#include "churn/churn_model.hpp"
#include "experiments/figure_json.hpp"
#include "experiments/figures.hpp"
#include "fault/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "graph/generators.hpp"
#include "overlay/service.hpp"
#include "privacylink/mix_transport.hpp"

namespace ppo::experiments {
namespace {

overlay::OverlayParams small_params() {
  overlay::OverlayParams p;
  p.cache_size = 60;
  p.shuffle_length = 8;
  p.target_links = 12;
  p.pseudonym_lifetime = 30.0;  // r = 1: links need continuous upkeep
  return p;
}

/// A sparse, high-diameter trust graph whose online-induced subgraph
/// shatters under churn — connectivity then genuinely depends on the
/// overlay's pseudonym links staying fresh, which is exactly what
/// message loss attacks.
OverlayScenario ring_scenario(std::uint64_t seed) {
  OverlayScenario s;
  s.params = small_params();
  s.churn.alpha = 0.5;
  s.window.warmup = 150.0;
  s.window.measure = 50.0;
  s.window.sample_every = 10.0;
  s.window.apl_sources = 16;
  s.seed = seed;
  return s;
}

fault::FaultPlan loss_plan(double loss, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.drop_probability = loss;
  plan.seed = seed;
  return plan;
}

void enable_retries(overlay::OverlayParams& p, std::size_t retries) {
  p.shuffle_timeout = 0.25;  // >> the transport's 0.05 max latency
  p.shuffle_max_retries = retries;
  p.shuffle_retry_backoff = 2.0;
}

void expect_same_run(const OverlayRunResult& a, const OverlayRunResult& b) {
  EXPECT_EQ(a.stats.frac_disconnected.mean(), b.stats.frac_disconnected.mean());
  EXPECT_EQ(a.stats.norm_apl.mean(), b.stats.norm_apl.mean());
  EXPECT_EQ(a.stats.online_fraction.mean(), b.stats.online_fraction.mean());
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.replacements, b.replacements);
  EXPECT_EQ(a.health.requests_sent, b.health.requests_sent);
  EXPECT_EQ(a.health.messages_sent, b.health.messages_sent);
  EXPECT_EQ(a.health.messages_delivered, b.health.messages_delivered);
}

/// Acceptance: a FaultyTransport with nothing to inject is a true
/// no-op — the simulation trajectory matches the unwrapped run
/// exactly, whether the plan is absent, inert, or enabled but idle.
TEST(FaultTolerance, ZeroFaultPlanIsBitIdenticalToBaseline) {
  const graph::Graph ring = graph::ring(48);
  const OverlayScenario base = ring_scenario(5);

  const auto bare = run_overlay(ring, base);

  OverlayScenario inert = base;
  inert.faults = fault::FaultPlan{};  // enabled() == false: no wrap
  const auto with_inert = run_overlay(ring, inert);
  expect_same_run(bare, with_inert);

  OverlayScenario idle = base;
  fault::FaultPlan far_future;
  far_future.link_outages.push_back({1e9, 1e9 + 1.0});
  idle.faults = far_future;  // enabled() == true: wraps, never fires
  const auto with_idle = run_overlay(ring, idle);
  expect_same_run(bare, with_idle);
  EXPECT_EQ(with_idle.health.messages_dropped, bare.health.messages_dropped);
}

/// Acceptance: at 10% loss and alpha = 0.5, the retry machinery keeps
/// the disconnected fraction within 2x of the lossless run, while the
/// same loss without retries measurably degrades the protocol.
TEST(FaultTolerance, RetryKeepsConnectivityUnderModerateLoss) {
  const graph::Graph ring = graph::ring(64);
  const OverlayScenario base = ring_scenario(7);

  const auto lossless = run_overlay(ring, base);

  OverlayScenario retry = base;
  retry.faults = loss_plan(0.1, 0xFA11);
  enable_retries(retry.params, 2);
  const auto with_retry = run_overlay(ring, retry);

  OverlayScenario no_retry = base;
  no_retry.faults = loss_plan(0.1, 0xFA11);  // identical loss pattern
  enable_retries(no_retry.params, 0);
  const auto without_retry = run_overlay(ring, no_retry);

  const double base_frac = lossless.stats.frac_disconnected.mean();
  const double retry_frac = with_retry.stats.frac_disconnected.mean();
  const double noretry_frac = without_retry.stats.frac_disconnected.mean();
  std::cerr << "frac_disconnected lossless=" << base_frac
            << " retry=" << retry_frac << " no-retry=" << noretry_frac
            << "\n";
  std::cerr << "completion lossless=" << lossless.health.completion_rate()
            << " retry=" << with_retry.health.completion_rate()
            << " no-retry=" << without_retry.health.completion_rate()
            << "\n";

  // Graceful degradation: retries hold the line...
  EXPECT_LE(retry_frac, std::max(2.0 * base_frac, 0.02));
  // ...and recover most of the lost exchanges,
  EXPECT_GT(with_retry.health.completion_rate(),
            without_retry.health.completion_rate() + 0.05);
  EXPECT_GT(with_retry.health.request_retries, 0u);
  EXPECT_GT(with_retry.health.request_timeouts, 0u);
  // while the unhardened protocol visibly suffers.
  EXPECT_EQ(without_retry.health.request_retries, 0u);
  EXPECT_GE(noretry_frac, retry_frac);
  EXPECT_GT(without_retry.health.exchanges_aborted,
            lossless.health.exchanges_aborted);
}

TEST(FaultTolerance, TimeoutsAreScopedToTheirExchange) {
  // At full availability with zero faults every response arrives well
  // inside the timeout, so every armed timer must find its exchange
  // already completed and stay silent: no timeout may abort an
  // exchange that got its response, and the hardened protocol
  // completes exactly as many exchanges as the unhardened one.
  // (Under churn this does NOT hold — requests to offline nodes are
  // dropped by the transport and legitimately time out.)
  const graph::Graph ring = graph::ring(48);
  OverlayScenario plain = ring_scenario(11);
  plain.churn.alpha = 1.0;
  OverlayScenario hardened = plain;
  enable_retries(hardened.params, 2);

  const auto a = run_overlay(ring, plain);
  const auto b = run_overlay(ring, hardened);
  EXPECT_EQ(b.health.request_retries, 0u);
  EXPECT_EQ(b.health.request_timeouts, 0u);
  EXPECT_EQ(a.health.exchanges_completed, b.health.exchanges_completed);
  EXPECT_EQ(a.health.requests_sent, b.health.requests_sent);
}

TEST(FaultTolerance, SweepIsJobsInvariantAndRepeatable) {
  WorkbenchOptions opts;
  opts.seed = 17;
  opts.social.num_nodes = 3000;
  opts.social.sub_community_size = 50;
  opts.social.community_size = 500;
  opts.trust_nodes = 120;

  FigureScale scale;
  scale.window.warmup = 40.0;
  scale.window.measure = 20.0;
  scale.window.sample_every = 10.0;
  scale.window.apl_sources = 8;
  scale.alphas = {0.5, 1.0};
  scale.seed = 3;

  FaultToleranceSpec spec;
  spec.loss_rates = {0.2};

  const auto run = [&](std::size_t jobs) {
    Workbench bench(opts);
    FigureScale s = scale;
    s.jobs = jobs;
    return fault_tolerance_sweep(bench, s, spec);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  const auto repeat = run(8);

  const auto expect_identical = [](const FaultFigure& a,
                                   const FaultFigure& b) {
    ASSERT_EQ(a.connectivity.size(), b.connectivity.size());
    for (std::size_t j = 0; j < a.connectivity.size(); ++j) {
      EXPECT_EQ(a.connectivity[j].name, b.connectivity[j].name);
      EXPECT_EQ(a.connectivity[j].values, b.connectivity[j].values);
      EXPECT_EQ(a.napl[j].values, b.napl[j].values);
      EXPECT_EQ(a.completion[j].values, b.completion[j].values);
      EXPECT_EQ(a.health[j].requests_sent, b.health[j].requests_sent);
      EXPECT_EQ(a.health[j].messages_dropped, b.health[j].messages_dropped);
    }
  };
  expect_identical(serial, parallel);
  expect_identical(parallel, repeat);
  EXPECT_EQ(serial.connectivity[0].name, "lossless");
  EXPECT_EQ(serial.connectivity[1].name, "retry-loss0.20");
  EXPECT_EQ(serial.connectivity[2].name, "no-retry-loss0.20");
}

TEST(FaultTolerance, FaultFigureJsonCarriesHealthBlock) {
  WorkbenchOptions opts;
  opts.seed = 17;
  opts.social.num_nodes = 3000;
  opts.social.sub_community_size = 50;
  opts.social.community_size = 500;
  opts.trust_nodes = 100;

  FigureScale scale;
  scale.window.warmup = 30.0;
  scale.window.measure = 10.0;
  scale.window.sample_every = 10.0;
  scale.window.apl_sources = 8;
  scale.alphas = {0.75};
  scale.seed = 3;
  scale.jobs = 2;

  FaultToleranceSpec spec;
  spec.loss_rates = {0.1};

  Workbench bench(opts);
  const auto fig = fault_tolerance_sweep(bench, scale, spec);
  const runner::Json j = to_json(fig);
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("connectivity").size(), 3u);
  EXPECT_EQ(j.at("completion").size(), 3u);
  ASSERT_EQ(j.at("health").size(), 3u);
  EXPECT_EQ(j.at("health").at(0).at("name").as_string(), "lossless");
  EXPECT_GT(j.at("health").at(1).at("request_retries").as_uint(), 0u);
  EXPECT_GT(j.at("health").at(2).at("request_timeouts").as_uint(), 0u);
  EXPECT_EQ(j.at("health").at(2).at("request_retries").as_uint(), 0u);
  EXPECT_GT(j.at("health").at(0).at("completion_rate").as_double(), 0.0);
  // The document survives a dump/parse round trip unchanged.
  EXPECT_EQ(runner::Json::parse(j.dump(2)), j);
}

TEST(FaultTolerance, PseudonymBlackoutDegradesGracefully) {
  // A blackout spanning the whole measurement window: pseudonym-link
  // shuffles cannot resolve their targets, so request traffic drops,
  // but the protocol keeps running and the run completes normally.
  const graph::Graph ring = graph::ring(48);
  const OverlayScenario base = ring_scenario(13);

  OverlayScenario dark = base;
  dark.service_faults.pseudonym_blackouts.push_back(
      {base.window.warmup, base.window.warmup + base.window.measure + 1.0});

  const auto normal = run_overlay(ring, base);
  const auto blacked_out = run_overlay(ring, dark);
  EXPECT_LT(blacked_out.health.requests_sent, normal.health.requests_sent);
  EXPECT_GT(blacked_out.health.exchanges_completed, 0u);
}

/// Satellite: the overlay over the full mix-network stack recovers
/// after relays crash and revive. While too few relays are alive to
/// build circuits, sends fail gracefully (counted, not fatal); once
/// revived, shuffle exchanges resume.
TEST(FaultTolerance, MixRelayCrashReviveRecovery) {
  sim::Simulator sim;
  const graph::Graph trust = graph::ring(12);
  churn::ExponentialChurn model(
      churn::ExponentialChurn::from_availability(0.999, 30.0));

  overlay::OverlayServiceOptions options;
  options.params = small_params();
  options.use_mix_network = true;
  options.mix.num_relays = 4;
  options.mix_transport.circuit_hops = 3;
  overlay::OverlayService service(sim, trust, model, options, Rng(3));

  fault::ServiceFaults faults;
  faults.relay_crashes.push_back({0, 10.0, 20.0});
  faults.relay_crashes.push_back({1, 10.0, 20.0});
  fault::FaultInjector::Hooks hooks;
  hooks.mix = service.mutable_mix_network();
  fault::FaultInjector injector(sim, faults, hooks);
  injector.arm();
  service.start();

  const auto* mix_transport =
      dynamic_cast<const privacylink::MixTransport*>(&service.transport());
  ASSERT_NE(mix_transport, nullptr);

  sim.run_until(10.5);
  const std::uint64_t completed_before =
      service.total_counters().shuffles_completed;
  EXPECT_GT(completed_before, 0u);
  EXPECT_EQ(service.mix_network()->live_relay_count(), 2u);

  sim.run_until(20.0);
  // Two live relays cannot form 3-hop circuits: every send in the
  // outage window was counted and lost instead of aborting the run.
  EXPECT_GT(mix_transport->circuit_failures(), 0u);
  const std::uint64_t completed_during =
      service.total_counters().shuffles_completed;

  sim.run_until(40.0);
  EXPECT_EQ(service.mix_network()->live_relay_count(), 4u);
  EXPECT_GT(service.total_counters().shuffles_completed, completed_during);
  EXPECT_EQ(injector.counters().relays_crashed, 2u);
  EXPECT_EQ(injector.counters().relays_revived, 2u);
}

}  // namespace
}  // namespace ppo::experiments
