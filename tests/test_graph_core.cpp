// Graph data-structure invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"
#include "common/check.hpp"

namespace ppo::graph {
namespace {

TEST(Graph, StartsEmpty) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AddNodesReturnsFirstId) {
  Graph g;
  EXPECT_EQ(g.add_nodes(3), 0u);
  EXPECT_EQ(g.add_nodes(2), 3u);
  EXPECT_EQ(g.num_nodes(), 5u);
}

TEST(Graph, AddEdgeIsUndirected) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, OutOfRangeEndpointThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), CheckError);
  EXPECT_THROW((void)g.has_edge(9, 0), CheckError);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, FinalizeSortsNeighbors) {
  Graph g(5);
  g.add_edge(0, 4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, EdgesListsEachOnce) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, AverageDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(4, 5);

  const Graph sub = g.induced_subgraph({0, 1, 2});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // (0,1) and (1,2); (2,3)/(3,0) cut
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.induced_subgraph({0, 0}), CheckError);
}

TEST(NodeMask, EmptyIncludesEverything) {
  const NodeMask mask;
  EXPECT_TRUE(mask.contains(0));
  EXPECT_TRUE(mask.contains(99));
  EXPECT_EQ(mask.count(5), 5u);
}

TEST(NodeMask, SetAndCount) {
  NodeMask mask(4, false);
  mask.set(1, true);
  mask.set(3, true);
  EXPECT_FALSE(mask.contains(0));
  EXPECT_TRUE(mask.contains(1));
  EXPECT_EQ(mask.count(4), 2u);
}

}  // namespace
}  // namespace ppo::graph
