// Randomized backing-store equivalence: every graph algorithm ported
// to GraphView must answer identically on the adjacency-list Graph,
// the immutable CsrGraph, and the incremental CsrBuilder built from
// the same edge set — and the streaming union-find connectivity must
// match the batch component decomposition on live overlay edge lists
// across churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "graph/articulation.hpp"
#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/csr.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/paths.hpp"
#include "graph/sampling.hpp"
#include "graph/spectral.hpp"
#include "metrics/streaming_connectivity.hpp"
#include "overlay/service.hpp"
#include "sim/simulator.hpp"

namespace ppo::graph {
namespace {

/// Random simple undirected edge list (possibly disconnected — the
/// interesting case for components/masks).
std::vector<std::pair<NodeId, NodeId>> random_edges(std::size_t n,
                                                    std::size_t target,
                                                    Rng& rng) {
  CsrBuilder dedup(n);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t attempts = 0;
  while (edges.size() < target && attempts < 20 * target) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.uniform_u64(n));
    const NodeId v = static_cast<NodeId>(rng.uniform_u64(n));
    if (dedup.add_edge(u, v)) edges.emplace_back(u, v);
  }
  return edges;
}

/// The three backings under test, built from one edge list.
struct Backings {
  Graph adjacency;  // finalized adjacency lists (sorted, not CSR)
  CsrGraph csr;
  CsrBuilder builder;

  explicit Backings(std::size_t n,
                    const std::vector<std::pair<NodeId, NodeId>>& edges)
      : adjacency(n), builder(n) {
    for (const auto& [u, v] : edges) {
      EXPECT_TRUE(adjacency.add_edge(u, v)) << u << "-" << v;
      EXPECT_TRUE(builder.add_edge(u, v));
    }
    adjacency.finalize();
    EXPECT_EQ(adjacency.csr(), nullptr);  // genuinely the adjacency path
    csr.assign_from_edges(n, edges);
  }
};

NodeMask random_mask(std::size_t n, double keep, Rng& rng) {
  NodeMask mask(n, false);
  for (NodeId v = 0; v < n; ++v) mask.set(v, rng.uniform_double() < keep);
  return mask;
}

std::string edge_list_text(GraphView g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(CsrEquivalence, AllPortedAlgorithmsAgreeAcrossBackings) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    const std::size_t n = 60 + rng.uniform_u64(40);
    const auto edges = random_edges(n, 3 * n / 2, rng);
    Backings b(n, edges);
    const GraphView views[] = {b.adjacency, b.csr, b.builder};
    const GraphView& ref = views[0];
    const NodeMask mask = random_mask(n, 0.7, rng);

    const auto ref_comps = connected_components(ref, mask);
    const auto ref_points = articulation_points(ref);
    const auto ref_hist = degree_histogram(ref, mask).bins();
    const auto ref_edge_lines = sorted_lines(edge_list_text(ref));

    for (const GraphView& view : views) {
      EXPECT_EQ(view.num_nodes(), n);
      EXPECT_EQ(view.num_edges(), edges.size());
      EXPECT_DOUBLE_EQ(view.average_degree(), ref.average_degree());

      // components.hpp
      const auto comps = connected_components(view, mask);
      EXPECT_EQ(comps.component_of, ref_comps.component_of);
      EXPECT_EQ(comps.largest_size(), ref_comps.largest_size());
      EXPECT_DOUBLE_EQ(fraction_disconnected(view, mask),
                       fraction_disconnected(ref, mask));
      EXPECT_EQ(is_connected(view), is_connected(ref));

      // degree.hpp
      EXPECT_EQ(degree_histogram(view, mask).bins(), ref_hist);
      for (NodeId v = 0; v < n; v += 7)
        EXPECT_EQ(masked_degree(view, v, mask), masked_degree(ref, v, mask));

      // paths.hpp — the sampling RNG is re-seeded per backing, so
      // identical draws must give identical doubles.
      EXPECT_EQ(bfs_distances(view, 0, mask), bfs_distances(ref, 0, mask));
      Rng apl_a(seed ^ 0xA91), apl_b(seed ^ 0xA91);
      EXPECT_DOUBLE_EQ(average_path_length(view, apl_a, mask, 16),
                       average_path_length(ref, apl_b, mask, 16));
      Rng dia_a(seed ^ 0xD1A), dia_b(seed ^ 0xD1A);
      EXPECT_EQ(diameter_estimate(view, dia_a, mask, 8),
                diameter_estimate(ref, dia_b, mask, 8));

      // articulation.hpp
      EXPECT_EQ(articulation_points(view), ref_points);
      EXPECT_DOUBLE_EQ(cut_vertex_fraction(view), cut_vertex_fraction(ref));

      // clustering.hpp (needs a fast edge probe on every backing)
      ASSERT_TRUE(view.has_fast_edge_probe());
      EXPECT_DOUBLE_EQ(average_clustering(view), average_clustering(ref));
      EXPECT_DOUBLE_EQ(transitivity(view), transitivity(ref));
      for (NodeId v = 0; v < n; v += 11)
        EXPECT_DOUBLE_EQ(local_clustering(view, v), local_clustering(ref, v));

      // spectral.hpp — power iteration sums neighbor contributions
      // in slice order; the builder's insertion-ordered slices land
      // within fp tolerance of the sorted backings, not bit-equal.
      Rng spec_a(seed ^ 0x5EC), spec_b(seed ^ 0x5EC);
      EXPECT_NEAR(spectral_gap(view, spec_a, 60),
                  spectral_gap(ref, spec_b, 60), 1e-9);

      // io.hpp — line order follows slice order; the edge SET must
      // match exactly across all backings.
      EXPECT_EQ(sorted_lines(edge_list_text(view)), ref_edge_lines);

      // has_edge on the probed backings
      for (const auto& [u, v] : edges) {
        EXPECT_TRUE(view.has_edge(u, v));
        EXPECT_TRUE(view.has_edge(v, u));
      }
    }

    // sampling.hpp — invitation sampling draws neighbors BY INDEX, so
    // identical seeds give identical samples only on backings with the
    // same neighbor order: the finalized adjacency Graph and CsrGraph
    // both sort; the builder keeps insertion order by contract and is
    // compared through its sorted build().
    InvitationSampleOptions opts;
    opts.target_size = n / 3;
    Rng samp_a(seed ^ 0x5A3), samp_b(seed ^ 0x5A3), samp_c(seed ^ 0x5A3);
    const Graph sample_adj = invitation_sample(b.adjacency, opts, samp_a);
    const Graph sample_csr = invitation_sample(b.csr, opts, samp_b);
    const CsrGraph built = b.builder.build();
    const Graph sample_built = invitation_sample(built, opts, samp_c);
    EXPECT_EQ(sample_adj.edges(), sample_csr.edges());
    EXPECT_EQ(sample_adj.edges(), sample_built.edges());
  }
}

/// Unsorted CSR slices (the measurement scratch path) must agree with
/// the sorted build on everything that does not probe membership.
TEST(CsrEquivalence, UnsortedAssignMatchesSortedForIterationMetrics) {
  Rng rng(99);
  const std::size_t n = 80;
  const auto edges = random_edges(n, 2 * n, rng);
  CsrGraph sorted, unsorted;
  sorted.assign_from_edges(n, edges, /*sort_neighbors=*/true);
  unsorted.assign_from_edges(n, edges, /*sort_neighbors=*/false);
  EXPECT_TRUE(sorted.sorted_neighbors());
  EXPECT_FALSE(unsorted.sorted_neighbors());
  const NodeMask mask = random_mask(n, 0.6, rng);
  EXPECT_EQ(connected_components(sorted, mask).component_of,
            connected_components(unsorted, mask).component_of);
  EXPECT_EQ(degree_histogram(sorted, mask).bins(),
            degree_histogram(unsorted, mask).bins());
  Rng apl_a(3), apl_b(3);
  EXPECT_DOUBLE_EQ(average_path_length(sorted, apl_a, mask, 12),
                   average_path_length(unsorted, apl_b, mask, 12));
}

/// Streaming union-find == batch component decomposition, sampled
/// across a churning overlay run (the Figure 8 measurement path).
TEST(CsrEquivalence, StreamingConnectivityMatchesBatchAcrossChurn) {
  sim::Simulator sim;
  Rng grng(5 ^ 0x50C1A1);
  const Graph trust = barabasi_albert(64, 2, grng);
  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(0.5, 30.0);
  overlay::OverlayParams params;
  params.cache_size = 30;
  params.shuffle_length = 6;
  params.target_links = 8;
  params.pseudonym_lifetime = 60.0;
  overlay::OverlayService service(sim, trust, model,
                                  {.params = params, .transport = {}}, Rng(5));
  service.start();

  metrics::StreamingConnectivity streaming;
  CsrGraph scratch;
  for (double t = 5.0; t <= 60.0; t += 5.0) {
    sim.run_until(t);
    const auto edges = service.overlay_edges();
    const double from_stream = streaming.fraction_disconnected(
        trust.num_nodes(), edges, service.online_mask());
    scratch.assign_from_edges(trust.num_nodes(), edges,
                              /*sort_neighbors=*/false);
    const double from_batch =
        fraction_disconnected(scratch, service.online_mask());
    EXPECT_DOUBLE_EQ(from_stream, from_batch) << "t=" << t;
  }
}

/// The memoized edge view must equal the from-scratch snapshot at
/// every sample, including after expiries and slot churn invalidate
/// cached slices.
TEST(CsrEquivalence, OverlayEdgeViewMatchesSnapshotAcrossChurn) {
  sim::Simulator sim;
  Rng grng(11 ^ 0x50C1A1);
  const Graph trust = barabasi_albert(48, 2, grng);
  const churn::ExponentialChurn model =
      churn::ExponentialChurn::from_availability(0.6, 20.0);
  overlay::OverlayParams params;
  params.cache_size = 24;
  params.shuffle_length = 5;
  params.target_links = 8;
  params.pseudonym_lifetime = 15.0;  // short TTL: exercise expiry paths
  overlay::OverlayService service(sim, trust, model,
                                  {.params = params, .transport = {}},
                                  Rng(11));
  service.start();

  for (double t = 3.0; t <= 45.0; t += 3.0) {
    sim.run_until(t);
    const auto edges = service.overlay_edges();
    const std::vector<std::pair<NodeId, NodeId>> from_view(edges.begin(),
                                                           edges.end());
    // overlay_snapshot() resolves through the mutating registry path
    // and rebuilds from scratch — the ground truth the view memoizes.
    const auto from_snapshot = service.overlay_snapshot().edges();
    EXPECT_EQ(from_view, from_snapshot) << "t=" << t;
  }
  EXPECT_GT(service.edge_view().slices_reused(), 0u);
}

}  // namespace
}  // namespace ppo::graph
